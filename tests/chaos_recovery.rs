//! The generative crash-consistency property: kill the campaign at
//! *every* write boundary (and under random host-fault schedules),
//! resume it, and the final report is byte-identical to an
//! uninterrupted run — at any thread count.
//!
//! The sweep works in three movements:
//!
//! 1. A clean reference run on the real filesystem pins the expected
//!    report bytes.
//! 2. A chaos-quiet probe run counts the IO operations of one
//!    uninterrupted campaign — the number of distinct kill boundaries.
//! 3. For each boundary `k`, a fresh campaign runs under
//!    [`ChaosConfig::kill_after_ops`]`= k` (the op at the boundary
//!    lands *torn*: a prefix is durable, like `SIGKILL` mid-`write`),
//!    then resumes on the real filesystem at a rotating thread count.
//!    The recovered report must match the reference byte for byte.

use std::path::PathBuf;
use std::sync::Arc;

use redsim_campaign::{
    run_campaign, CampaignError, CampaignOptions, CampaignOutcome, CampaignSpec, Scenario,
};
use redsim_core::{ExecMode, FaultConfig, ForwardingPolicy};
use redsim_util::io::{ChaosConfig, ChaosIo, RealIo};
use redsim_workloads::Workload;

fn spec() -> CampaignSpec {
    CampaignSpec {
        scenarios: vec![Scenario {
            name: "die-irb/irb".to_owned(),
            mode: ExecMode::DieIrb,
            faults: FaultConfig {
                irb_rate: 0.05,
                seed: 13,
                ..FaultConfig::none()
            },
            forwarding: ForwardingPolicy::PrimaryToBoth,
        }],
        workloads: vec![Workload::Gzip],
        seeds: 2,
        quick: true,
        watchdog: Some(5_000_000),
        metrics_window: Some(4096),
    }
}

fn opts(dir: &str) -> CampaignOptions {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("killsweep-{}-{dir}", std::process::id()));
    CampaignOptions::new(base.join("c.progress.jsonl"), base.join("c.report.json"))
}

fn report_of(outcome: CampaignOutcome) -> String {
    match outcome {
        CampaignOutcome::Complete(r) => r.report,
        CampaignOutcome::Interrupted { completed, total } => {
            panic!("expected completion, interrupted at {completed}/{total}")
        }
    }
}

#[test]
fn a_kill_at_every_write_boundary_resumes_to_the_identical_report() {
    let spec = spec();
    let reference = report_of(run_campaign(&spec, &opts("ref")).expect("reference run"));

    // Probe: count the write boundaries of one uninterrupted run.
    let probe = ChaosIo::new(Arc::new(RealIo), ChaosConfig::quiet(0));
    let mut o = opts("probe");
    o.io = Arc::new(probe.clone());
    assert_eq!(
        report_of(run_campaign(&spec, &o).expect("quiet chaos is a clean run")),
        reference
    );
    let boundaries = probe.ops();
    assert!(boundaries >= 8, "campaign does real IO: {boundaries} ops");

    for k in 0..boundaries {
        let dir = format!("kill-{k}");
        let mut o = opts(&dir);
        o.io = Arc::new(ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                kill_after_ops: Some(k),
                ..ChaosConfig::quiet(0)
            },
        ));
        match run_campaign(&spec, &o) {
            Err(CampaignError::Io(_)) => {}
            Ok(_) => panic!("kill at op {k} of {boundaries} did not surface"),
            Err(e) => panic!("kill at op {k} produced the wrong error: {e}"),
        }

        // Recover on the real filesystem, rotating the thread count so
        // the sweep also exercises re-parallelised resumes.
        let mut o = opts(&dir);
        o.resume = true;
        o.threads = 1 + (k as usize % 4);
        let recovered = report_of(run_campaign(&spec, &o).expect("resume after kill"));
        assert_eq!(
            recovered, reference,
            "kill at op {k} changed the recovered report"
        );
        assert_eq!(
            std::fs::read_to_string(&o.report_path).expect("report on disk"),
            reference
        );
    }
}

#[test]
fn random_fault_schedules_always_recover_to_the_identical_report() {
    // Every fault family at once — EINTR, short writes, torn ENOSPC,
    // failed fsyncs. Each failed run leaves a manifest whose only legal
    // defect is a torn tail; resuming under a fresh schedule must
    // converge to the reference bytes.
    let spec = spec();
    let reference = report_of(run_campaign(&spec, &opts("rand-ref")).expect("reference run"));

    let o_base = opts("rand");
    let mut recovered = None;
    for round in 0..40u64 {
        let mut o = opts("rand");
        o.resume = round > 0;
        o.threads = 1 + (round as usize % 3);
        o.io = Arc::new(ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig::uniform(0x5eed + round, 0.08),
        ));
        match run_campaign(&spec, &o) {
            Ok(outcome) => {
                recovered = Some(report_of(outcome));
                break;
            }
            Err(CampaignError::Io(_)) => {} // expected: resume next round
            Err(e) => panic!("round {round}: unexpected error {e}"),
        }
    }
    let recovered = recovered.expect("40 rounds never converged");
    assert_eq!(recovered, reference);
    assert_eq!(
        std::fs::read_to_string(&o_base.report_path).expect("report on disk"),
        reference
    );
}
