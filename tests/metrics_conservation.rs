//! Generative metrics-conservation invariants: the windowed time series
//! is an exact partition of the run. Summing every window's counters
//! must reproduce the final [`SimStats`] counter for counter, the
//! windows must tile the cycle axis without gaps or overlaps, and
//! attaching the collector must not perturb the simulation — on both
//! scheduling engines, in every execution mode, with and without fault
//! injection, and across a watchdog cut.
//!
//! Program generation mirrors `stall_attribution.rs` (straight-line
//! code with forward-only branches from a fixed-seed generator, so
//! everything terminates and failing cases replay exactly).

use redsim::core::{
    ExecMode, FaultConfig, Instrumentation, MachineConfig, MetricsCollector, NullTracer,
    SchedEngine, SimStats, Simulator, WindowCounters, WindowSample, REUSE_CLASSES,
};
use redsim::isa::{Inst, IntReg, Opcode, Program, ProgramBuilder};
use redsim_util::Rng;

#[derive(Debug, Clone)]
enum Gen {
    AluRrr(u8, u8, u8, u8),
    AluRri(u8, u8, u8, i16),
    Li(u8, i32),
    MulDiv(u8, u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    Branch(u8, u8, u8, u8),
}

const RRR_OPS: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Slt,
];
const RRI_OPS: [Opcode; 4] = [Opcode::Addi, Opcode::Andi, Opcode::Ori, Opcode::Xori];
const MD_OPS: [Opcode; 4] = [Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem];
const BR_OPS: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bgeu];

fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 20)
}

fn gen_step(rng: &mut Rng) -> Gen {
    match rng.index(7) {
        0 => Gen::AluRrr(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        1 => Gen::AluRri(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_i16()),
        2 => Gen::Li(rng.any_u8(), rng.any_i32()),
        3 => Gen::MulDiv(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        4 => Gen::Load(rng.any_u8(), rng.next_u64() as u16),
        5 => Gen::Store(rng.any_u8(), rng.next_u64() as u16),
        _ => Gen::Branch(
            rng.any_u8(),
            rng.any_u8(),
            rng.any_u8(),
            rng.range_u64(1, 12) as u8,
        ),
    }
}

fn gen_program(rng: &mut Rng, lo: u64, hi: u64) -> Program {
    let steps: Vec<Gen> = (0..rng.range_u64(lo, hi)).map(|_| gen_step(rng)).collect();
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(2048);
    let base = IntReg::new(28);
    b = b.inst(Inst::li(base, buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 77 - 100));
    }
    for (idx, g) in steps.iter().enumerate() {
        let inst = match g {
            Gen::AluRrr(o, a, x, y) => Inst::rrr(
                RRR_OPS[*o as usize % RRR_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::AluRri(o, a, x, i) => Inst::rri(
                RRI_OPS[*o as usize % RRI_OPS.len()],
                reg(*a),
                reg(*x),
                i32::from(*i),
            ),
            Gen::Li(a, i) => Inst::li(reg(*a), *i),
            Gen::MulDiv(o, a, x, y) => Inst::rrr(
                MD_OPS[*o as usize % MD_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::Load(a, off) => {
                Inst::load_int(Opcode::Ld, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Store(a, off) => {
                Inst::store_int(Opcode::Sd, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Branch(o, a, x, skip) => {
                let remaining = steps.len() - idx - 1;
                let skip = (*skip as usize).min(remaining) as i32;
                Inst::branch(
                    BR_OPS[*o as usize % BR_OPS.len()],
                    reg(*a),
                    reg(*x),
                    (skip + 1) * 8,
                )
            }
        };
        b = b.inst(inst);
    }
    b.inst(Inst::halt()).build()
}

const ALL_MODES: [ExecMode; 5] = [
    ExecMode::Sie,
    ExecMode::Die,
    ExecMode::DieIrb,
    ExecMode::SieIrb,
    ExecMode::DieCluster,
];

const BOTH_ENGINES: [SchedEngine; 2] = [SchedEngine::EventDriven, SchedEngine::ScanReference];

/// A deliberately small window so short generated programs still span
/// several windows plus a final partial one.
const WINDOW: u64 = 64;

fn run_windowed(
    program: &Program,
    engine: SchedEngine,
    mode: ExecMode,
    faults: FaultConfig,
    watchdog: Option<u64>,
) -> (SimStats, Vec<WindowSample>) {
    let mut cfg = MachineConfig::tiny();
    cfg.engine = engine;
    let mut sim = Simulator::new(cfg, mode)
        .try_with_faults(faults)
        .expect("valid fault configuration");
    if let Some(w) = watchdog {
        sim = sim.with_watchdog(w);
    }
    let mut collector = MetricsCollector::new(WINDOW);
    let mut tracer = NullTracer;
    let stats = sim
        .run_program_instrumented(
            program,
            Instrumentation {
                tracer: &mut tracer,
                metrics: &mut collector,
                profiler: None,
            },
        )
        .expect("run completes");
    (stats, collector.into_samples())
}

/// The slice of the final stats a window series can be checked against:
/// every field of [`WindowCounters`] has an exact cumulative mirror.
fn counters_of(s: &SimStats) -> WindowCounters {
    let mut attr_lookups = [0u64; REUSE_CLASSES];
    let mut attr_hits = [0u64; REUSE_CLASSES];
    let mut attr_passes = [0u64; REUSE_CLASSES];
    if let Some(a) = &s.attribution {
        for (i, c) in a.classes.iter().enumerate() {
            attr_lookups[i] = c.lookups;
            attr_hits[i] = c.hits;
            attr_passes[i] = c.passes;
        }
    }
    WindowCounters {
        committed_insts: s.committed_insts,
        committed_copies: s.committed_copies,
        active_commit_cycles: s.active_commit_cycles,
        stalls: s.stalls,
        fu_issues: s.fu_issues,
        fu_bypasses: s.fu_bypasses,
        int_alu_busy_cycles: s.int_alu_busy_cycles,
        ruu_occupancy_sum: s.ruu_occupancy_sum,
        irb_lookups: s.irb.buffer.lookups,
        irb_pc_hits: s.irb.buffer.pc_hits,
        irb_victim_hits: s.irb.buffer.victim_hits,
        irb_inserts: s.irb.buffer.inserts,
        irb_conflict_evictions: s.irb.buffer.conflict_evictions,
        irb_reuse_passed: s.irb.reuse_passed,
        irb_reuse_failed: s.irb.reuse_failed,
        irb_lookups_port_starved: s.irb.lookups_port_starved,
        irb_inserts_port_starved: s.irb.inserts_port_starved,
        attr_lookups,
        attr_hits,
        attr_passes,
    }
}

/// Asserts the series is an exact partition: contiguous half-open
/// windows starting at cycle 0 and ending at `stats.cycles`, whose
/// counters sum to the final totals.
fn assert_conserves(stats: &SimStats, windows: &[WindowSample], ctx: &str) {
    assert!(!windows.is_empty(), "{ctx}: a real run produces windows");
    let mut expected_start = 0u64;
    let mut sum = WindowCounters::default();
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index, i as u64, "{ctx}: window indices are dense");
        assert_eq!(
            w.start_cycle, expected_start,
            "{ctx}: window {i} starts where its predecessor ended"
        );
        assert!(
            w.end_cycle > w.start_cycle,
            "{ctx}: window {i} is non-empty"
        );
        assert!(
            w.cycles() <= WINDOW,
            "{ctx}: window {i} spans at most the configured width"
        );
        expected_start = w.end_cycle;
        sum.add(&w.counters);
    }
    assert_eq!(
        expected_start, stats.cycles,
        "{ctx}: the last window closes at the final cycle"
    );
    assert_eq!(
        sum,
        counters_of(stats),
        "{ctx}: window sums must reproduce the final stats counters"
    );
}

#[test]
fn window_sums_match_final_stats_in_every_mode_on_both_engines() {
    let mut rng = Rng::new(0x3E7_0001);
    for case in 0..10u64 {
        let program = gen_program(&mut rng, 5, 120);
        for engine in BOTH_ENGINES {
            for mode in ALL_MODES {
                let ctx = format!("case {case} {engine:?} {mode:?}");
                let (stats, windows) =
                    run_windowed(&program, engine, mode, FaultConfig::none(), None);
                assert_conserves(&stats, &windows, &ctx);
            }
        }
    }
}

#[test]
fn collecting_metrics_is_observationally_pure() {
    // A metrics-enabled run must produce the exact stats of a bare run:
    // the collector only ever reads counter deltas at window edges.
    let mut rng = Rng::new(0x3E7_0002);
    for case in 0..6u64 {
        let program = gen_program(&mut rng, 20, 120);
        for engine in BOTH_ENGINES {
            for mode in ALL_MODES {
                let mut cfg = MachineConfig::tiny();
                cfg.engine = engine;
                let bare = Simulator::new(cfg, mode)
                    .run_program(&program)
                    .expect("bare run");
                let (windowed, _) = run_windowed(&program, engine, mode, FaultConfig::none(), None);
                assert_eq!(
                    bare, windowed,
                    "case {case} {engine:?} {mode:?}: metrics changed the stats"
                );
            }
        }
    }
}

#[test]
fn engines_emit_identical_window_series() {
    // The windows read pipeline state the engines keep bit-identical,
    // so the series — not just the totals — must match sample for
    // sample.
    let mut rng = Rng::new(0x3E7_0003);
    for case in 0..6u64 {
        let program = gen_program(&mut rng, 10, 120);
        for mode in ALL_MODES {
            let (_, ev) = run_windowed(
                &program,
                SchedEngine::EventDriven,
                mode,
                FaultConfig::none(),
                None,
            );
            let (_, sc) = run_windowed(
                &program,
                SchedEngine::ScanReference,
                mode,
                FaultConfig::none(),
                None,
            );
            assert_eq!(ev, sc, "case {case} {mode:?}");
        }
    }
}

#[test]
fn conservation_survives_fault_injection_and_rewinds() {
    let mut rng = Rng::new(0x3E7_0004);
    let faults = FaultConfig {
        fu_rate: 0.02,
        forward_rate: 0.01,
        irb_rate: 0.005,
        seed: 0xFA19,
    };
    let mut mismatches = 0u64;
    for case in 0..6u64 {
        let program = gen_program(&mut rng, 20, 120);
        for engine in BOTH_ENGINES {
            for mode in [ExecMode::Die, ExecMode::DieIrb, ExecMode::DieCluster] {
                let ctx = format!("case {case} {engine:?} {mode:?}");
                let (stats, windows) = run_windowed(&program, engine, mode, faults, None);
                assert_conserves(&stats, &windows, &ctx);
                mismatches += stats.pair_mismatches;
            }
        }
    }
    assert!(mismatches > 0, "the fault rates must provoke mismatches");
}

#[test]
fn a_watchdog_cut_still_flushes_an_exact_partial_window() {
    // A watchdog-cut run stops mid-window; the post-loop flush must
    // still close the series exactly at the cut cycle.
    let mut rng = Rng::new(0x3E7_0005);
    let faults = FaultConfig {
        fu_rate: 1.0,
        seed: 3,
        ..FaultConfig::none()
    };
    let program = gen_program(&mut rng, 40, 120);
    for engine in BOTH_ENGINES {
        let (stats, windows) = run_windowed(&program, engine, ExecMode::Die, faults, Some(3_000));
        assert!(
            stats.watchdog_fired,
            "{engine:?}: fu_rate 1.0 must livelock"
        );
        assert_conserves(&stats, &windows, &format!("{engine:?} watchdog"));
    }
}
