//! Generative equivalence: the event-driven scheduling core against the
//! retained full-window scan reference.
//!
//! The event-driven engine (per-stream ready queues + completion
//! calendar) is a pure host-side optimization — it must produce
//! *bit-identical* [`SimStats`] to the scan engine on every program, in
//! every execution mode, at every window size, with and without fault
//! injection. These tests draw random programs from a fixed-seed
//! [`redsim_util::Rng`] (same generator shape as `random_programs.rs`:
//! straight-line code with forward-only branches, so everything
//! terminates) and diff the two engines' complete statistics structs.
//!
//! A failing case replays exactly under `cargo test`.

use redsim::core::{ExecMode, FaultConfig, MachineConfig, SchedEngine, SimStats, Simulator};
use redsim::isa::{Inst, IntReg, Opcode, Program, ProgramBuilder};
use redsim_util::Rng;

#[derive(Debug, Clone)]
enum Gen {
    AluRrr(u8, u8, u8, u8),
    AluRri(u8, u8, u8, i16),
    Li(u8, i32),
    MulDiv(u8, u8, u8, u8),
    Fp(u8, u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    /// Forward branch skipping 1..=skip instructions.
    Branch(u8, u8, u8, u8),
}

const RRR_OPS: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Slt,
    Opcode::Sltu,
];
const RRI_OPS: [Opcode; 5] = [
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slti,
];
const MD_OPS: [Opcode; 4] = [Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem];
const FP_OPS: [Opcode; 4] = [Opcode::FaddD, Opcode::FsubD, Opcode::FmulD, Opcode::FminD];
const BR_OPS: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bgeu];

/// Work registers: avoid zero/ra/sp so the harness scaffolding stays
/// intact.
fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 20)
}

fn gen_step(rng: &mut Rng) -> Gen {
    match rng.index(8) {
        0 => Gen::AluRrr(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        1 => Gen::AluRri(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_i16()),
        2 => Gen::Li(rng.any_u8(), rng.any_i32()),
        3 => Gen::MulDiv(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        4 => Gen::Fp(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        5 => Gen::Load(rng.any_u8(), rng.next_u64() as u16),
        6 => Gen::Store(rng.any_u8(), rng.next_u64() as u16),
        _ => Gen::Branch(
            rng.any_u8(),
            rng.any_u8(),
            rng.any_u8(),
            rng.range_u64(1, 12) as u8,
        ),
    }
}

/// Generates and lowers one random program of `lo..hi` abstract steps.
fn gen_program(rng: &mut Rng, lo: u64, hi: u64) -> Program {
    let steps: Vec<Gen> = (0..rng.range_u64(lo, hi)).map(|_| gen_step(rng)).collect();
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(2048);
    let base = IntReg::new(28); // t3 holds the data buffer
    b = b.inst(Inst::li(base, buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 77 - 100));
        b = b.inst(Inst::cvt_int_to_fp(redsim::isa::FpReg::new(1 + i), reg(i)));
    }
    for (idx, g) in steps.iter().enumerate() {
        let inst = match g {
            Gen::AluRrr(o, a, x, y) => Inst::rrr(
                RRR_OPS[*o as usize % RRR_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::AluRri(o, a, x, i) => Inst::rri(
                RRI_OPS[*o as usize % RRI_OPS.len()],
                reg(*a),
                reg(*x),
                i32::from(*i),
            ),
            Gen::Li(a, i) => Inst::li(reg(*a), *i),
            Gen::MulDiv(o, a, x, y) => Inst::rrr(
                MD_OPS[*o as usize % MD_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::Fp(o, a, x, y) => {
                let f = |s: u8| redsim::isa::FpReg::new(1 + s % 8);
                Inst::fff(FP_OPS[*o as usize % FP_OPS.len()], f(*a), f(*x), f(*y))
            }
            Gen::Load(a, off) => {
                Inst::load_int(Opcode::Ld, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Store(a, off) => {
                Inst::store_int(Opcode::Sd, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Branch(o, a, x, skip) => {
                let remaining = steps.len() - idx - 1;
                let skip = (*skip as usize).min(remaining) as i32;
                Inst::branch(
                    BR_OPS[*o as usize % BR_OPS.len()],
                    reg(*a),
                    reg(*x),
                    (skip + 1) * 8,
                )
            }
        };
        b = b.inst(inst);
    }
    b.inst(Inst::halt()).build()
}

/// Runs `program` under both engines with otherwise-identical
/// configuration and returns the two stats structs.
fn both_engines(
    program: &Program,
    cfg: &MachineConfig,
    mode: ExecMode,
    faults: FaultConfig,
) -> (SimStats, SimStats) {
    let mut scan = cfg.clone();
    scan.engine = SchedEngine::ScanReference;
    let mut event = cfg.clone();
    event.engine = SchedEngine::EventDriven;
    let ev = Simulator::new(event, mode)
        .try_with_faults(faults)
        .expect("valid fault configuration")
        .run_program(program)
        .expect("event-driven run");
    let sc = Simulator::new(scan, mode)
        .try_with_faults(faults)
        .expect("valid fault configuration")
        .run_program(program)
        .expect("scan-reference run");
    (ev, sc)
}

const ALL_MODES: [ExecMode; 5] = [
    ExecMode::Sie,
    ExecMode::Die,
    ExecMode::DieIrb,
    ExecMode::SieIrb,
    ExecMode::DieCluster,
];

#[test]
fn engines_agree_on_any_program_in_every_mode() {
    let mut rng = Rng::new(0xE0E_0001);
    let cfg = MachineConfig::tiny();
    for case in 0..16u64 {
        let program = gen_program(&mut rng, 5, 120);
        for mode in ALL_MODES {
            let (ev, sc) = both_engines(&program, &cfg, mode, FaultConfig::none());
            assert_eq!(ev, sc, "case {case} {mode:?}");
        }
    }
}

#[test]
fn engines_agree_at_paper_scale_windows() {
    // The full-size RUU (and its doubled variant) is where the scan
    // engine pays O(window) per cycle — and where an event-driven
    // bookkeeping slip (an entry left in a ready queue, a calendar slot
    // off by one) would most plausibly change scheduling order.
    let mut rng = Rng::new(0xE0E_0002);
    let base = MachineConfig::paper_baseline();
    let big = MachineConfig::paper_baseline().with_double_ruu();
    for case in 0..4u64 {
        let program = gen_program(&mut rng, 40, 160);
        for (name, cfg) in [("paper", &base), ("2xruu", &big)] {
            for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
                let (ev, sc) = both_engines(&program, cfg, mode, FaultConfig::none());
                assert_eq!(ev, sc, "case {case} {name} {mode:?}");
            }
        }
    }
}

#[test]
fn engines_agree_under_fault_injection() {
    // Faults add the recovery paths (pair mismatches, IRB strikes,
    // squash-free re-execution) to the schedule; the engines must still
    // walk them identically.
    let mut rng = Rng::new(0xE0E_0003);
    let cfg = MachineConfig::tiny();
    let faults = FaultConfig {
        fu_rate: 0.01,
        forward_rate: 0.005,
        irb_rate: 0.002,
        seed: 0xFA17,
    };
    for case in 0..8u64 {
        let program = gen_program(&mut rng, 20, 120);
        for mode in [ExecMode::Die, ExecMode::DieIrb, ExecMode::DieCluster] {
            let (ev, sc) = both_engines(&program, &cfg, mode, faults);
            assert_eq!(ev, sc, "case {case} {mode:?}");
        }
    }
}

#[test]
fn fault_lifecycle_is_conserved_and_identical_in_every_mode() {
    // The four-way lifecycle classification (detected / masked / silent
    // / hang) must account for every injected fault exactly once —
    // generatively, in all five execution modes, on both engines (the
    // full-struct equality already proves the engines' lifecycle blocks
    // bit-identical; the invariants below pin the classification
    // itself).
    let mut rng = Rng::new(0xE0E_0004);
    let cfg = MachineConfig::tiny();
    let faults = FaultConfig {
        fu_rate: 0.02,
        forward_rate: 0.01,
        irb_rate: 0.005,
        seed: 0xFA18,
    };
    for case in 0..8u64 {
        let program = gen_program(&mut rng, 20, 120);
        for mode in ALL_MODES {
            let (ev, sc) = both_engines(&program, &cfg, mode, faults);
            assert_eq!(ev, sc, "case {case} {mode:?}");
            let l = ev.fault_lifecycle;
            assert!(
                l.conservation_holds(),
                "case {case} {mode:?}: injected {} != {} detected + {} masked \
                 + {} silent + {} hung",
                l.injected,
                l.detected,
                l.masked,
                l.silent,
                l.hung
            );
            assert_eq!(
                l.injected,
                ev.faults.injected_fu + ev.faults.injected_forward + ev.faults.injected_irb,
                "case {case} {mode:?}: every legacy-counted strike has a lifecycle record"
            );
            // No watchdog is armed, so nothing may classify as a hang.
            assert_eq!(l.hung, 0, "case {case} {mode:?}");
        }
    }
}
