//! Timing-regression bands: each workload's IPC under each mode must
//! stay inside a generous band recorded from a verified build. These are
//! deliberately loose (the model may legitimately evolve) but catch
//! order-of-magnitude regressions — a broken scheduler, a cache model
//! that stops hitting, a reuse test that stops firing.

use redsim::core::{ExecMode, MachineConfig, Simulator};
use redsim::workloads::Workload;

/// (workload, SIE band, DIE-loss band in percent).
type Band = (Workload, (f64, f64), (f64, f64));

const BANDS: &[Band] = &[
    (Workload::Gzip, (1.0, 2.2), (10.0, 40.0)),
    (Workload::Vpr, (1.0, 2.2), (8.0, 40.0)),
    (Workload::Gcc, (0.3, 1.0), (2.0, 25.0)),
    (Workload::Mcf, (0.4, 1.2), (2.0, 25.0)),
    (Workload::Parser, (0.8, 1.9), (5.0, 30.0)),
    (Workload::Vortex, (0.5, 3.9), (20.0, 60.0)),
    (Workload::Bzip2, (2.2, 4.2), (25.0, 60.0)),
    (Workload::Twolf, (1.3, 3.9), (15.0, 55.0)),
    (Workload::Wupwise, (3.0, 5.5), (35.0, 60.0)),
    (Workload::Art, (3.0, 5.2), (35.0, 60.0)),
    (Workload::Equake, (2.2, 4.2), (25.0, 55.0)),
    (Workload::Ammp, (1.3, 2.8), (2.0, 20.0)),
];

#[test]
fn ipc_stays_in_recorded_bands() {
    let cfg = MachineConfig::paper_baseline();
    for &(w, (sie_lo, sie_hi), (loss_lo, loss_hi)) in BANDS {
        let program = w.program(w.tiny_params()).unwrap();
        let sie = Simulator::new(cfg.clone(), ExecMode::Sie)
            .run_program(&program)
            .unwrap();
        let die = Simulator::new(cfg.clone(), ExecMode::Die)
            .run_program(&program)
            .unwrap();
        let ipc = sie.ipc();
        assert!(
            (sie_lo..=sie_hi).contains(&ipc),
            "{w}: SIE IPC {ipc:.3} left its band [{sie_lo}, {sie_hi}]"
        );
        let loss = die.ipc_loss_vs(&sie);
        assert!(
            (loss_lo..=loss_hi).contains(&loss),
            "{w}: DIE loss {loss:.1}% left its band [{loss_lo}, {loss_hi}]"
        );
    }
}

#[test]
fn die_irb_lands_between_die_and_generous_sie_ceiling() {
    let cfg = MachineConfig::paper_baseline();
    for &(w, _, _) in BANDS {
        let program = w.program(w.tiny_params()).unwrap();
        let sie = Simulator::new(cfg.clone(), ExecMode::Sie)
            .run_program(&program)
            .unwrap();
        let die = Simulator::new(cfg.clone(), ExecMode::Die)
            .run_program(&program)
            .unwrap();
        let irb = Simulator::new(cfg.clone(), ExecMode::DieIrb)
            .run_program(&program)
            .unwrap();
        assert!(
            irb.ipc() >= die.ipc() * 0.97,
            "{w}: DIE-IRB {:.3} fell below DIE {:.3}",
            irb.ipc(),
            die.ipc()
        );
        assert!(
            irb.ipc() <= sie.ipc() * 1.10,
            "{w}: DIE-IRB {:.3} implausibly above SIE {:.3}",
            irb.ipc(),
            sie.ipc()
        );
    }
}
