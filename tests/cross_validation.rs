//! Cross-crate validation: the timing models must agree with the
//! functional emulator on *what* executes, for every workload and every
//! execution mode; only *when* may differ.

use redsim::core::{ExecMode, MachineConfig, Simulator};
use redsim::isa::emu::Emulator;
use redsim::workloads::Workload;

fn trace_len(w: Workload) -> u64 {
    let p = w.program(w.tiny_params()).unwrap();
    let mut e = Emulator::new(&p);
    e.run(200_000_000).unwrap()
}

#[test]
fn every_mode_commits_exactly_the_functional_instruction_count() {
    let cfg = MachineConfig::paper_baseline();
    for w in Workload::ALL {
        let n = trace_len(w);
        let program = w.program(w.tiny_params()).unwrap();
        for mode in [
            ExecMode::Sie,
            ExecMode::Die,
            ExecMode::DieIrb,
            ExecMode::SieIrb,
        ] {
            let stats = Simulator::new(cfg.clone(), mode)
                .run_program(&program)
                .unwrap_or_else(|e| panic!("{w}/{mode:?}: {e}"));
            assert_eq!(stats.committed_insts, n, "{w}/{mode:?}");
            let expect_copies = if mode.is_dual() { 2 * n } else { n };
            assert_eq!(stats.committed_copies, expect_copies, "{w}/{mode:?}");
        }
    }
}

#[test]
fn dual_modes_check_every_value_producing_pair_without_mismatches() {
    let cfg = MachineConfig::paper_baseline();
    for w in [Workload::Gzip, Workload::Mcf, Workload::Wupwise] {
        let program = w.program(w.tiny_params()).unwrap();
        for mode in [ExecMode::Die, ExecMode::DieIrb] {
            let stats = Simulator::new(cfg.clone(), mode)
                .run_program(&program)
                .unwrap();
            assert!(stats.pairs_checked > 0, "{w}/{mode:?}");
            assert_eq!(
                stats.pair_mismatches, 0,
                "{w}/{mode:?}: fault-free execution can never mismatch"
            );
        }
    }
}

#[test]
fn timing_is_sane_for_all_workloads() {
    let cfg = MachineConfig::paper_baseline();
    for w in Workload::ALL {
        let program = w.program(w.tiny_params()).unwrap();
        let stats = Simulator::new(cfg.clone(), ExecMode::Sie)
            .run_program(&program)
            .unwrap();
        let ipc = stats.ipc();
        assert!(
            ipc > 0.05 && ipc <= cfg.issue_width as f64,
            "{w}: implausible IPC {ipc}"
        );
        assert!(stats.cycles >= stats.committed_insts / cfg.fetch_width as u64);
    }
}

#[test]
fn fetch_and_commit_account_for_every_cycle_kind() {
    let cfg = MachineConfig::paper_baseline();
    let w = Workload::Gcc;
    let program = w.program(w.tiny_params()).unwrap();
    let stats = Simulator::new(cfg, ExecMode::Die)
        .run_program(&program)
        .unwrap();
    let stalls = stats.fetch_stalls_branch
        + stats.fetch_stalls_icache
        + stats.fetch_stalls_queue
        + stats.fetch_stalls_btb;
    assert!(stalls <= stats.cycles);
    assert!(stats.active_commit_cycles <= stats.cycles);
    assert!(stats.branches.cond_branches > 0);
}

#[test]
fn identical_trace_identical_stats_across_sources() {
    // Running from the emulator directly and from a captured trace must
    // produce bit-identical statistics.
    use redsim::core::VecSource;
    let w = Workload::Vpr;
    let program = w.program(w.tiny_params()).unwrap();
    let cfg = MachineConfig::paper_baseline();
    let direct = Simulator::new(cfg.clone(), ExecMode::DieIrb)
        .run_program(&program)
        .unwrap();
    let trace = Emulator::new(&program).run_trace(200_000_000).unwrap();
    let mut src = VecSource::new(trace);
    let replay = Simulator::new(cfg, ExecMode::DieIrb)
        .run_source(&mut src)
        .unwrap();
    assert_eq!(direct, replay);
}
