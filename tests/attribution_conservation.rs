//! Generative reuse-attribution conservation invariants: the
//! per-opcode-class counters, the hot-PC table and the per-loop
//! breakdown are three exact decompositions of the same IRB event
//! stream. Each must sum to the aggregate [`IrbSummary`] totals — on
//! both scheduling engines, in every execution mode, with and without
//! fault injection, and across a watchdog cut. Attribution itself must
//! be observationally pure: disabling it yields byte-identical stats,
//! and the windowed attribution series tiles the run and sums to the
//! final counters.
//!
//! Program generation composes bounded counted loops (backward `bne`
//! on a dedicated trip register, so everything terminates and the
//! backedge heuristic has real loop structure to attribute) with
//! straight-line prologue/interlude code that must land in the
//! `outside` bucket.

use redsim::core::{
    AttrCounters, ExecMode, FaultConfig, Instrumentation, MachineConfig, MetricsCollector,
    NullTracer, SchedEngine, SimStats, Simulator, WindowSample, REUSE_CLASSES,
};
use redsim::isa::{Inst, IntReg, Opcode, Program, ProgramBuilder};
use redsim_util::Rng;

const RRR_OPS: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Slt,
];
const MD_OPS: [Opcode; 4] = [Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem];

/// General-purpose pool, disjoint from the loop counter and the data
/// base pointer below.
fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 16)
}

/// The loop trip counter.
fn counter() -> IntReg {
    IntReg::new(27)
}

/// The data-space base pointer.
fn base() -> IntReg {
    IntReg::new(28)
}

fn body_inst(rng: &mut Rng) -> Inst {
    match rng.index(5) {
        0 => Inst::rrr(
            RRR_OPS[rng.index(RRR_OPS.len())],
            reg(rng.any_u8()),
            reg(rng.any_u8()),
            reg(rng.any_u8()),
        ),
        1 => Inst::rri(
            Opcode::Addi,
            reg(rng.any_u8()),
            reg(rng.any_u8()),
            i32::from(rng.any_i16()),
        ),
        2 => Inst::rrr(
            MD_OPS[rng.index(MD_OPS.len())],
            reg(rng.any_u8()),
            reg(rng.any_u8()),
            reg(rng.any_u8()),
        ),
        3 => Inst::load_int(
            Opcode::Ld,
            reg(rng.any_u8()),
            base(),
            i32::from(rng.next_u64() as u16 % 1024 / 8 * 8),
        ),
        _ => Inst::store_int(
            Opcode::Sd,
            reg(rng.any_u8()),
            base(),
            i32::from(rng.next_u64() as u16 % 1024 / 8 * 8),
        ),
    }
}

/// A program of 1–3 counted loops with random bodies, separated by
/// straight-line filler. Every loop's backedge is a backward `bne`
/// taken `trips - 1` times, so termination is structural.
fn gen_program(rng: &mut Rng) -> Program {
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(1024);
    b = b.inst(Inst::li(base(), buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 77 - 100));
    }
    for _ in 0..rng.range_u64(0, 8) {
        b = b.inst(body_inst(rng));
    }
    for _ in 0..rng.range_u64(1, 4) {
        let trips = rng.range_u64(2, 8) as i32;
        let body: Vec<Inst> = (0..rng.range_u64(1, 10)).map(|_| body_inst(rng)).collect();
        b = b.inst(Inst::li(counter(), trips));
        let body_len = body.len();
        for inst in body {
            b = b.inst(inst);
        }
        b = b.inst(Inst::rri(Opcode::Addi, counter(), counter(), -1));
        let back = -((body_len as i32 + 1) * 8);
        b = b.inst(Inst::branch(Opcode::Bne, counter(), IntReg::ZERO, back));
        for _ in 0..rng.range_u64(0, 5) {
            b = b.inst(body_inst(rng));
        }
    }
    b.inst(Inst::halt()).build()
}

const ALL_MODES: [ExecMode; 5] = [
    ExecMode::Sie,
    ExecMode::Die,
    ExecMode::DieIrb,
    ExecMode::SieIrb,
    ExecMode::DieCluster,
];

const BOTH_ENGINES: [SchedEngine; 2] = [SchedEngine::EventDriven, SchedEngine::ScanReference];

const WINDOW: u64 = 64;

fn run(
    program: &Program,
    engine: SchedEngine,
    mode: ExecMode,
    attribution: bool,
    faults: FaultConfig,
    watchdog: Option<u64>,
) -> SimStats {
    let mut cfg = MachineConfig::tiny();
    cfg.engine = engine;
    let mut sim = Simulator::new(cfg, mode)
        .try_with_faults(faults)
        .expect("valid fault configuration");
    if attribution {
        sim = sim.with_attribution();
    }
    if let Some(w) = watchdog {
        sim = sim.with_watchdog(w);
    }
    sim.run_program(program).expect("run completes")
}

/// The three decompositions — classes, PCs, loops — must each sum
/// exactly to the aggregate `IrbSummary` totals.
fn assert_attribution_conserves(stats: &SimStats, ctx: &str) {
    let a = stats
        .attribution
        .as_deref()
        .unwrap_or_else(|| panic!("{ctx}: attribution was requested"));
    let total = a.total();
    assert_eq!(
        total.lookups, stats.irb.buffer.lookups,
        "{ctx}: class lookups sum to the IRB's"
    );
    assert_eq!(
        total.hits,
        stats.irb.buffer.pc_hits + stats.irb.buffer.victim_hits,
        "{ctx}: class hits sum to the IRB's"
    );
    assert_eq!(
        total.passes, stats.irb.reuse_passed,
        "{ctx}: class passes sum to the IRB's"
    );
    assert_eq!(
        total.fails, stats.irb.reuse_failed,
        "{ctx}: class fails sum to the IRB's"
    );
    assert_eq!(
        a.pc_total(),
        total,
        "{ctx}: hot PCs + folded tail decompose the same events"
    );
    assert_eq!(
        a.loop_total(),
        total,
        "{ctx}: loops + folded + outside decompose the same events"
    );
}

#[test]
fn class_sums_match_irb_totals_in_every_mode_on_both_engines() {
    let mut rng = Rng::new(0xA77_0001);
    for case in 0..8u64 {
        let program = gen_program(&mut rng);
        for engine in BOTH_ENGINES {
            for mode in ALL_MODES {
                let ctx = format!("case {case} {engine:?} {mode:?}");
                let stats = run(&program, engine, mode, true, FaultConfig::none(), None);
                assert_attribution_conserves(&stats, &ctx);
                if !mode.has_irb() {
                    assert_eq!(
                        stats.attribution.as_deref().unwrap().total(),
                        AttrCounters::default(),
                        "{ctx}: an IRB-less mode attributes nothing"
                    );
                }
            }
        }
    }
}

#[test]
fn conservation_survives_fault_injection() {
    let mut rng = Rng::new(0xA77_0002);
    let faults = FaultConfig {
        fu_rate: 0.02,
        forward_rate: 0.01,
        irb_rate: 0.005,
        seed: 0xFA19,
    };
    for case in 0..5u64 {
        let program = gen_program(&mut rng);
        for engine in BOTH_ENGINES {
            for mode in [ExecMode::Die, ExecMode::DieIrb, ExecMode::DieCluster] {
                let ctx = format!("case {case} {engine:?} {mode:?} faults");
                let stats = run(&program, engine, mode, true, faults, None);
                assert_attribution_conserves(&stats, &ctx);
            }
        }
    }
}

#[test]
fn conservation_survives_a_watchdog_cut() {
    // fu_rate 1.0 livelocks the dual-stream compare, so the watchdog
    // cuts mid-run; the attribution collected up to the cut must still
    // decompose exactly.
    let mut rng = Rng::new(0xA77_0003);
    let faults = FaultConfig {
        fu_rate: 1.0,
        seed: 3,
        ..FaultConfig::none()
    };
    let program = gen_program(&mut rng);
    for engine in BOTH_ENGINES {
        for mode in [ExecMode::Die, ExecMode::DieIrb] {
            let ctx = format!("{engine:?} {mode:?} watchdog");
            let stats = run(&program, engine, mode, true, faults, Some(3_000));
            assert!(stats.watchdog_fired, "{ctx}: fu_rate 1.0 must livelock");
            assert_attribution_conserves(&stats, &ctx);
        }
    }
}

#[test]
fn engines_agree_on_attribution_bit_for_bit() {
    let mut rng = Rng::new(0xA77_0004);
    for case in 0..5u64 {
        let program = gen_program(&mut rng);
        for mode in ALL_MODES {
            let ev = run(
                &program,
                SchedEngine::EventDriven,
                mode,
                true,
                FaultConfig::none(),
                None,
            );
            let sc = run(
                &program,
                SchedEngine::ScanReference,
                mode,
                true,
                FaultConfig::none(),
                None,
            );
            assert_eq!(ev, sc, "case {case} {mode:?}");
        }
    }
}

#[test]
fn disabling_attribution_leaves_stats_byte_identical() {
    // Attribution is observationally pure: the only difference it may
    // make to SimStats is the presence of its own section.
    let mut rng = Rng::new(0xA77_0005);
    for case in 0..5u64 {
        let program = gen_program(&mut rng);
        for engine in BOTH_ENGINES {
            for mode in ALL_MODES {
                let ctx = format!("case {case} {engine:?} {mode:?}");
                let plain = run(&program, engine, mode, false, FaultConfig::none(), None);
                assert!(
                    plain.attribution.is_none(),
                    "{ctx}: attribution off leaves no section"
                );
                assert!(
                    !plain.to_json().to_string().contains("attribution"),
                    "{ctx}: attribution off leaves no JSON field"
                );
                let mut with = run(&program, engine, mode, true, FaultConfig::none(), None);
                with.attribution = None;
                assert_eq!(with, plain, "{ctx}: attribution perturbed the run");
            }
        }
    }
}

#[test]
fn windowed_attribution_series_tiles_the_run_and_sums_to_final_counters() {
    let mut rng = Rng::new(0xA77_0006);
    for case in 0..5u64 {
        let program = gen_program(&mut rng);
        for engine in BOTH_ENGINES {
            for mode in [ExecMode::SieIrb, ExecMode::DieIrb] {
                let ctx = format!("case {case} {engine:?} {mode:?}");
                let mut cfg = MachineConfig::tiny();
                cfg.engine = engine;
                let mut collector = MetricsCollector::new(WINDOW);
                let mut tracer = NullTracer;
                let stats = Simulator::new(cfg, mode)
                    .with_attribution()
                    .run_program_instrumented(
                        &program,
                        Instrumentation {
                            tracer: &mut tracer,
                            metrics: &mut collector,
                            profiler: None,
                        },
                    )
                    .expect("run completes");
                let windows: Vec<WindowSample> = collector.into_samples();
                let mut expected_start = 0u64;
                let mut lookups = [0u64; REUSE_CLASSES];
                let mut hits = [0u64; REUSE_CLASSES];
                let mut passes = [0u64; REUSE_CLASSES];
                for w in &windows {
                    assert_eq!(w.start_cycle, expected_start, "{ctx}: windows tile");
                    expected_start = w.end_cycle;
                    for i in 0..REUSE_CLASSES {
                        lookups[i] += w.counters.attr_lookups[i];
                        hits[i] += w.counters.attr_hits[i];
                        passes[i] += w.counters.attr_passes[i];
                    }
                }
                assert_eq!(
                    expected_start, stats.cycles,
                    "{ctx}: the series covers [0, cycles)"
                );
                let a = stats.attribution.as_deref().expect("attribution requested");
                for (i, c) in a.classes.iter().enumerate() {
                    assert_eq!(lookups[i], c.lookups, "{ctx}: class {i} lookups");
                    assert_eq!(hits[i], c.hits, "{ctx}: class {i} hits");
                    assert_eq!(passes[i], c.passes, "{ctx}: class {i} passes");
                }
            }
        }
    }
}

#[test]
fn counted_loops_are_attributed_to_their_backedge_heads() {
    // A deterministic two-loop program: everything the IRB sees inside
    // a loop must be charged to a loop head, and the prologue to the
    // `outside` bucket.
    let mut b = ProgramBuilder::new();
    b = b.inst(Inst::li(reg(0), 3)).inst(Inst::li(reg(1), 5));
    // Prologue work outside any loop.
    for _ in 0..4 {
        b = b.inst(Inst::rrr(Opcode::Add, reg(2), reg(0), reg(1)));
    }
    // loop: 40 trips of two adds.
    b = b.inst(Inst::li(counter(), 40));
    b = b
        .inst(Inst::rrr(Opcode::Add, reg(3), reg(0), reg(1)))
        .inst(Inst::rrr(Opcode::Xor, reg(4), reg(3), reg(1)))
        .inst(Inst::rri(Opcode::Addi, counter(), counter(), -1))
        .inst(Inst::branch(Opcode::Bne, counter(), IntReg::ZERO, -(3 * 8)));
    let program = b.inst(Inst::halt()).build();
    for engine in BOTH_ENGINES {
        let stats = run(
            &program,
            engine,
            ExecMode::SieIrb,
            true,
            FaultConfig::none(),
            None,
        );
        let ctx = format!("{engine:?}");
        assert_attribution_conserves(&stats, &ctx);
        let a = stats.attribution.as_deref().expect("attribution requested");
        assert!(
            stats.irb.buffer.lookups > 0,
            "{ctx}: the loop produces IRB traffic"
        );
        assert!(!a.loops.is_empty(), "{ctx}: the backedge forms a loop");
        let in_loops: u64 = a.loops.iter().map(|l| l.counters.lookups).sum();
        assert!(
            in_loops > 0,
            "{ctx}: loop-body lookups are charged to the loop head"
        );
        assert!(!a.hot_pcs.is_empty(), "{ctx}: hot PCs are populated");
    }
}
