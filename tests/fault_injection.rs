//! End-to-end fault-injection properties over real workloads (§3.4).

use redsim::core::{ExecMode, FaultConfig, ForwardingPolicy, MachineConfig, Simulator};
use redsim::workloads::Workload;

fn cfg() -> MachineConfig {
    MachineConfig::paper_baseline()
}

#[test]
fn die_detects_fu_faults_on_real_workloads_and_still_completes() {
    for w in [Workload::Gzip, Workload::Twolf] {
        let program = w.program(w.tiny_params()).unwrap();
        let clean = Simulator::new(cfg(), ExecMode::Die)
            .run_program(&program)
            .unwrap();
        let faulty = Simulator::new(cfg(), ExecMode::Die)
            .try_with_faults(FaultConfig {
                fu_rate: 1e-4,
                seed: 5,
                ..FaultConfig::none()
            })
            .expect("valid fault configuration")
            .run_program(&program)
            .unwrap();
        assert!(faulty.faults.injected_fu > 0, "{w}");
        assert_eq!(faulty.faults.detected, faulty.pair_mismatches, "{w}");
        assert!(faulty.faults.detected > 0, "{w}");
        assert_eq!(faulty.committed_insts, clean.committed_insts, "{w}");
        assert!(
            faulty.cycles >= clean.cycles,
            "{w}: recovery must cost cycles"
        );
    }
}

#[test]
fn fu_fault_coverage_is_complete_under_die() {
    // Independent single-bit strikes on the two copies essentially never
    // collide, so coverage should be total on these run lengths.
    let w = Workload::Vortex;
    let program = w.program(w.tiny_params()).unwrap();
    let s = Simulator::new(cfg(), ExecMode::Die)
        .try_with_faults(FaultConfig {
            fu_rate: 5e-4,
            seed: 23,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    assert!(s.faults.injected_fu > 10);
    assert_eq!(s.faults.escaped, 0);
    assert!((s.faults.coverage() - 1.0).abs() < 1e-9);
}

#[test]
fn unprotected_irb_is_covered_by_the_sphere_of_replication() {
    // §3.4: a particle strike on the IRB array produces a wrong reused
    // result for the duplicate, which the primary's ALU execution
    // exposes at commit. No ECC needed.
    let w = Workload::Parser; // high reuse: strikes actually get consumed
    let program = w.program(w.tiny_params()).unwrap();
    let s = Simulator::new(cfg(), ExecMode::DieIrb)
        .try_with_faults(FaultConfig {
            irb_rate: 0.05,
            seed: 31,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    assert!(s.faults.injected_irb > 0);
    assert!(
        s.faults.detected > 0,
        "corrupt reused results must be caught at commit"
    );
    assert_eq!(
        s.faults.escaped, 0,
        "IRB corruption cannot escape the pair check"
    );
}

#[test]
fn shared_forwarding_is_the_acknowledged_escape_path() {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let fc = FaultConfig {
        forward_rate: 2e-4,
        seed: 41,
        ..FaultConfig::none()
    };
    // Figure 6(c): shared forwarding -> common-mode corruption escapes.
    let shared = Simulator::new(cfg(), ExecMode::DieIrb)
        .try_with_faults(fc)
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    assert!(shared.faults.injected_forward > 0);
    assert!(shared.faults.escaped > 0);
    assert_eq!(shared.faults.detected, 0);
    // Figure 6(b): per-stream forwarding -> the same strikes are caught.
    let mut ps = cfg();
    ps.forwarding = ForwardingPolicy::PerStream;
    let split = Simulator::new(ps, ExecMode::Die)
        .try_with_faults(fc)
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    assert!(split.faults.injected_forward > 0);
    assert!(split.faults.detected > 0);
}

#[test]
fn sie_has_zero_detection_by_construction() {
    let w = Workload::Bzip2;
    let program = w.program(w.tiny_params()).unwrap();
    let s = Simulator::new(cfg(), ExecMode::Sie)
        .try_with_faults(FaultConfig {
            fu_rate: 1e-4,
            seed: 3,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    assert!(s.faults.injected_fu > 0);
    assert_eq!(s.faults.detected, 0);
    assert!(s.faults.silent_sie > 0);
    assert_eq!(s.pair_mismatches, 0);
}

#[test]
fn lifecycle_detection_carries_latency_and_recovery_cost() {
    // DIE functional-unit strikes: every vulnerable fault is detected,
    // each detection has a latency (inject -> commit-compare) binned
    // into the log2 histogram and a recovery cost of one pair re-fetch.
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let machine = cfg();
    let s = Simulator::new(machine.clone(), ExecMode::Die)
        .try_with_faults(FaultConfig {
            fu_rate: 2e-4,
            seed: 5,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    let l = s.fault_lifecycle;
    assert!(l.conservation_holds());
    assert!(l.detected > 0);
    assert_eq!(
        l.silent, 0,
        "DIE leaves no silent corruption from FU strikes"
    );
    assert_eq!(l.hung, 0);
    assert_eq!(
        l.detected, s.faults.detected,
        "lifecycle agrees with legacy"
    );
    assert_eq!(
        l.latency_histogram.iter().sum::<u64>(),
        l.detected,
        "every detection lands in exactly one latency bucket"
    );
    assert!(l.detection_latency_max > 0);
    assert!(l.mean_detection_latency() > 0.0);
    assert!(l.detection_latency_sum >= l.detection_latency_max);
    assert_eq!(
        l.refetch_penalty_sum,
        l.detected * machine.mispredict_penalty,
        "each detection costs one pair re-fetch"
    );
}

#[test]
fn lifecycle_classifies_sie_and_shared_bus_corruption_as_silent() {
    // SIE has no checker: vulnerable FU strikes terminate as silent
    // corruption, never detected.
    let w = Workload::Bzip2;
    let program = w.program(w.tiny_params()).unwrap();
    let s = Simulator::new(cfg(), ExecMode::Sie)
        .try_with_faults(FaultConfig {
            fu_rate: 1e-4,
            seed: 3,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    let l = s.fault_lifecycle;
    assert!(l.conservation_holds());
    assert_eq!(l.detected, 0);
    assert!(l.silent > 0);
    assert!((l.coverage() - 0.0).abs() < 1e-9);

    // Shared-bus strikes under primary-to-both forwarding are the §3.4
    // common-mode escape: both copies agree on the corrupt operand.
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let s = Simulator::new(cfg(), ExecMode::DieIrb)
        .try_with_faults(FaultConfig {
            forward_rate: 2e-4,
            seed: 41,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    let l = s.fault_lifecycle;
    assert!(l.conservation_holds());
    assert_eq!(l.detected, 0);
    assert!(l.silent > 0, "common-mode corruption is silent, not masked");
    assert!(l.avf() > 0.0);
}

#[test]
fn watchdog_classifies_a_detection_livelock_as_hang() {
    // fu_rate 1.0 corrupts every single result: the commit pair check
    // fails forever and DIE re-fetches the same pair endlessly. The
    // watchdog must contain the livelock and classify the still-pending
    // faults as hangs, conserving the total.
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let s = Simulator::new(cfg(), ExecMode::Die)
        .with_watchdog(20_000)
        .try_with_faults(FaultConfig {
            fu_rate: 1.0,
            seed: 7,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&program)
        .unwrap();
    assert!(s.watchdog_fired);
    let l = s.fault_lifecycle;
    assert!(l.conservation_holds());
    assert!(
        l.hung > 0,
        "pending faults at the deadline classify as hangs"
    );
    assert!(
        s.cycles <= 20_000 + 1,
        "the deadline actually bounds the run"
    );
}

#[test]
fn watchdog_is_inert_on_a_healthy_run() {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let clean = Simulator::new(cfg(), ExecMode::Die)
        .run_program(&program)
        .unwrap();
    let guarded = Simulator::new(cfg(), ExecMode::Die)
        .with_watchdog(clean.cycles + 1)
        .run_program(&program)
        .unwrap();
    assert!(!guarded.watchdog_fired);
    assert_eq!(clean, guarded, "an untripped watchdog changes nothing");
}

#[test]
fn fault_runs_are_deterministic_per_seed() {
    let w = Workload::Gcc;
    let program = w.program(w.tiny_params()).unwrap();
    let go = |seed| {
        Simulator::new(cfg(), ExecMode::DieIrb)
            .try_with_faults(FaultConfig {
                fu_rate: 1e-4,
                irb_rate: 0.01,
                forward_rate: 1e-5,
                seed,
            })
            .expect("valid fault configuration")
            .run_program(&program)
            .unwrap()
    };
    assert_eq!(go(9), go(9));
    assert_ne!(go(9).faults, go(10).faults);
}
