//! Generative stall-attribution invariants: every simulated cycle is
//! either productive (at least one commit) or attributed to exactly one
//! stall bucket, on both scheduling engines, in every execution mode,
//! with and without fault injection, and even when the watchdog cuts a
//! run short. The observability layer itself must be pure: tracing a
//! run cannot change its statistics.
//!
//! Program generation mirrors `engine_equivalence.rs` (straight-line
//! code with forward-only branches from a fixed-seed generator, so
//! everything terminates and failing cases replay exactly).

use redsim::core::{
    EventLog, ExecMode, FaultConfig, MachineConfig, SchedEngine, SimStats, Simulator, TraceEvent,
    Tracer,
};
use redsim::isa::{Inst, IntReg, Opcode, Program, ProgramBuilder};
use redsim_util::Rng;

#[derive(Debug, Clone)]
enum Gen {
    AluRrr(u8, u8, u8, u8),
    AluRri(u8, u8, u8, i16),
    Li(u8, i32),
    MulDiv(u8, u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    Branch(u8, u8, u8, u8),
}

const RRR_OPS: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Slt,
];
const RRI_OPS: [Opcode; 4] = [Opcode::Addi, Opcode::Andi, Opcode::Ori, Opcode::Xori];
const MD_OPS: [Opcode; 4] = [Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem];
const BR_OPS: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bgeu];

fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 20)
}

fn gen_step(rng: &mut Rng) -> Gen {
    match rng.index(7) {
        0 => Gen::AluRrr(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        1 => Gen::AluRri(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_i16()),
        2 => Gen::Li(rng.any_u8(), rng.any_i32()),
        3 => Gen::MulDiv(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        4 => Gen::Load(rng.any_u8(), rng.next_u64() as u16),
        5 => Gen::Store(rng.any_u8(), rng.next_u64() as u16),
        _ => Gen::Branch(
            rng.any_u8(),
            rng.any_u8(),
            rng.any_u8(),
            rng.range_u64(1, 12) as u8,
        ),
    }
}

fn gen_program(rng: &mut Rng, lo: u64, hi: u64) -> Program {
    let steps: Vec<Gen> = (0..rng.range_u64(lo, hi)).map(|_| gen_step(rng)).collect();
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(2048);
    let base = IntReg::new(28);
    b = b.inst(Inst::li(base, buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 77 - 100));
    }
    for (idx, g) in steps.iter().enumerate() {
        let inst = match g {
            Gen::AluRrr(o, a, x, y) => Inst::rrr(
                RRR_OPS[*o as usize % RRR_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::AluRri(o, a, x, i) => Inst::rri(
                RRI_OPS[*o as usize % RRI_OPS.len()],
                reg(*a),
                reg(*x),
                i32::from(*i),
            ),
            Gen::Li(a, i) => Inst::li(reg(*a), *i),
            Gen::MulDiv(o, a, x, y) => Inst::rrr(
                MD_OPS[*o as usize % MD_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::Load(a, off) => {
                Inst::load_int(Opcode::Ld, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Store(a, off) => {
                Inst::store_int(Opcode::Sd, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Branch(o, a, x, skip) => {
                let remaining = steps.len() - idx - 1;
                let skip = (*skip as usize).min(remaining) as i32;
                Inst::branch(
                    BR_OPS[*o as usize % BR_OPS.len()],
                    reg(*a),
                    reg(*x),
                    (skip + 1) * 8,
                )
            }
        };
        b = b.inst(inst);
    }
    b.inst(Inst::halt()).build()
}

const ALL_MODES: [ExecMode; 5] = [
    ExecMode::Sie,
    ExecMode::Die,
    ExecMode::DieIrb,
    ExecMode::SieIrb,
    ExecMode::DieCluster,
];

const BOTH_ENGINES: [SchedEngine; 2] = [SchedEngine::EventDriven, SchedEngine::ScanReference];

fn run_one(
    program: &Program,
    engine: SchedEngine,
    mode: ExecMode,
    faults: FaultConfig,
    watchdog: Option<u64>,
) -> SimStats {
    let mut cfg = MachineConfig::tiny();
    cfg.engine = engine;
    let mut sim = Simulator::new(cfg, mode)
        .try_with_faults(faults)
        .expect("valid fault configuration");
    if let Some(w) = watchdog {
        sim = sim.with_watchdog(w);
    }
    sim.run_program(program).expect("run completes")
}

fn assert_conserves(s: &SimStats, ctx: &str) {
    assert!(
        s.stall_conservation_holds(),
        "{ctx}: {} productive + {} attributed != {} cycles ({:?})",
        s.active_commit_cycles,
        s.stalls.total(),
        s.cycles,
        s.stalls
    );
}

#[test]
fn every_cycle_is_attributed_in_every_mode_on_both_engines() {
    let mut rng = Rng::new(0x57A_0001);
    for case in 0..12u64 {
        let program = gen_program(&mut rng, 5, 120);
        for engine in BOTH_ENGINES {
            for mode in ALL_MODES {
                let s = run_one(&program, engine, mode, FaultConfig::none(), None);
                assert_conserves(&s, &format!("case {case} {engine:?} {mode:?}"));
                assert!(s.active_commit_cycles > 0, "something committed");
            }
        }
    }
}

#[test]
fn attribution_survives_fault_injection_and_rewinds() {
    let mut rng = Rng::new(0x57A_0002);
    let faults = FaultConfig {
        fu_rate: 0.02,
        forward_rate: 0.01,
        irb_rate: 0.005,
        seed: 0xFA19,
    };
    let (mut mismatches, mut rewind_stalls) = (0u64, 0u64);
    for case in 0..8u64 {
        let program = gen_program(&mut rng, 20, 120);
        for engine in BOTH_ENGINES {
            for mode in [ExecMode::Die, ExecMode::DieIrb, ExecMode::DieCluster] {
                let s = run_one(&program, engine, mode, faults, None);
                assert_conserves(&s, &format!("case {case} {engine:?} {mode:?}"));
                mismatches += s.pair_mismatches;
                rewind_stalls += s.stalls.rewind;
            }
        }
    }
    // A single rewind cycle can still commit an older instruction and
    // count as productive, so the implication only holds in aggregate:
    // with this many mismatches some rewinds must surface as stalls.
    assert!(mismatches > 0, "the fault rates must provoke mismatches");
    assert!(
        rewind_stalls > 0,
        "{mismatches} mismatches produced no rewind-attributed stall cycles"
    );
}

#[test]
fn attribution_survives_a_watchdog_cut() {
    // A watchdog-cut run stops mid-flight; the partition must still be
    // exact because the accounting closes every cycle as it happens.
    let mut rng = Rng::new(0x57A_0003);
    let faults = FaultConfig {
        fu_rate: 1.0,
        seed: 3,
        ..FaultConfig::none()
    };
    let program = gen_program(&mut rng, 40, 120);
    for engine in BOTH_ENGINES {
        let s = run_one(&program, engine, ExecMode::Die, faults, Some(3_000));
        assert!(s.watchdog_fired, "{engine:?}: fu_rate 1.0 must livelock");
        assert_conserves(&s, &format!("{engine:?} watchdog"));
    }
}

#[test]
fn engines_attribute_stalls_identically() {
    // The stall counters derive purely from pipeline state the engines
    // already keep bit-identical, so the breakdowns must match too.
    let mut rng = Rng::new(0x57A_0004);
    for case in 0..8u64 {
        let program = gen_program(&mut rng, 10, 120);
        for mode in ALL_MODES {
            let ev = run_one(
                &program,
                SchedEngine::EventDriven,
                mode,
                FaultConfig::none(),
                None,
            );
            let sc = run_one(
                &program,
                SchedEngine::ScanReference,
                mode,
                FaultConfig::none(),
                None,
            );
            assert_eq!(ev.stalls, sc.stalls, "case {case} {mode:?}");
            assert_eq!(
                ev.active_commit_cycles, sc.active_commit_cycles,
                "case {case} {mode:?}"
            );
        }
    }
}

#[test]
fn tracing_is_observationally_pure_and_deterministic() {
    // Attaching a tracer must not perturb the simulation, and the event
    // stream for a fixed program must be reproducible run to run.
    let mut rng = Rng::new(0x57A_0005);
    let program = gen_program(&mut rng, 40, 120);
    for mode in ALL_MODES {
        let cfg = MachineConfig::tiny();
        let untraced = Simulator::new(cfg.clone(), mode)
            .run_program(&program)
            .expect("untraced run");
        let mut log_a = EventLog::new();
        let traced = Simulator::new(cfg.clone(), mode)
            .run_program_traced(&program, &mut log_a)
            .expect("traced run");
        assert_eq!(untraced, traced, "{mode:?}: tracing changed the stats");
        assert!(!log_a.is_empty(), "{mode:?}: a real run produces events");

        let mut log_b = EventLog::new();
        Simulator::new(cfg, mode)
            .run_program_traced(&program, &mut log_b)
            .expect("second traced run");
        assert_eq!(
            log_a.to_chrome_json().to_string(),
            log_b.to_chrome_json().to_string(),
            "{mode:?}: trace output must be deterministic"
        );
    }
}

#[test]
fn traced_commits_account_for_every_productive_cycle() {
    // Cross-check the counters against the event stream itself: the set
    // of distinct cycles carrying a commit event must equal
    // `active_commit_cycles`, tying the stall partition to the trace.
    struct CommitCycles {
        cycles: std::collections::BTreeSet<u64>,
    }
    impl Tracer for CommitCycles {
        fn record(&mut self, ev: TraceEvent) {
            if ev.kind.name() == "commit" {
                self.cycles.insert(ev.cycle);
            }
        }
    }
    let mut rng = Rng::new(0x57A_0006);
    let program = gen_program(&mut rng, 40, 120);
    for mode in ALL_MODES {
        let mut t = CommitCycles {
            cycles: std::collections::BTreeSet::new(),
        };
        let s = Simulator::new(MachineConfig::tiny(), mode)
            .run_program_traced(&program, &mut t)
            .expect("traced run");
        assert_eq!(
            t.cycles.len() as u64,
            s.active_commit_cycles,
            "{mode:?}: commit events disagree with the productive-cycle counter"
        );
        assert_conserves(&s, &format!("{mode:?} traced"));
    }
}
