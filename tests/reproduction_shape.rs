//! Shape tests for the paper's headline claims, run at tiny scale so the
//! suite stays fast. Magnitudes are looser than the figure binaries, but
//! the *orderings* the paper reports must hold.

use redsim::core::{ExecMode, MachineConfig, SimStats, Simulator};
use redsim::workloads::Workload;

fn run(w: Workload, mode: ExecMode, cfg: &MachineConfig) -> SimStats {
    let program = w.program(w.tiny_params()).unwrap();
    Simulator::new(cfg.clone(), mode)
        .run_program(&program)
        .unwrap()
}

/// Figure 2's premise: duplication costs IPC, substantially on average.
#[test]
fn die_loses_ipc_on_average() {
    let cfg = MachineConfig::paper_baseline();
    let mut losses = Vec::new();
    for w in Workload::ALL {
        let sie = run(w, ExecMode::Sie, &cfg);
        let die = run(w, ExecMode::Die, &cfg);
        losses.push(die.ipc_loss_vs(&sie));
    }
    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!(
        (10.0..45.0).contains(&mean),
        "mean DIE loss {mean:.1}% out of the paper's ballpark (paper: ~22%)"
    );
    assert!(
        losses.iter().all(|&l| l > -2.0),
        "duplication should never speed things up: {losses:?}"
    );
    assert!(
        losses.iter().any(|&l| l > 30.0),
        "some workloads must be hit hard: {losses:?}"
    );
    assert!(
        losses.iter().any(|&l| l < 15.0),
        "some workloads must barely notice: {losses:?}"
    );
}

/// Figure 2's conclusion: doubling ALUs is the most effective single
/// doubling, and doubling everything restores SIE-level IPC.
#[test]
fn resource_doublings_order_as_in_figure_2() {
    let base = MachineConfig::paper_baseline();
    let (mut l_alu, mut l_ruu, mut l_width, mut l_all) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for w in Workload::ALL {
        let sie = run(w, ExecMode::Sie, &base);
        let loss = |cfg: &MachineConfig| run(w, ExecMode::Die, cfg).ipc_loss_vs(&sie);
        l_alu.push(loss(&base.clone().with_double_alus()));
        l_ruu.push(loss(&base.clone().with_double_ruu()));
        l_width.push(loss(&base.clone().with_double_widths()));
        l_all.push(loss(
            &base
                .clone()
                .with_double_alus()
                .with_double_ruu()
                .with_double_widths(),
        ));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (alu, ruu, width, all) = (mean(&l_alu), mean(&l_ruu), mean(&l_width), mean(&l_all));
    assert!(
        alu < ruu && alu < width,
        "2xALU must be the best single doubling: alu={alu:.1} ruu={ruu:.1} width={width:.1}"
    );
    assert!(
        all < 6.0,
        "doubling everything must approach SIE (mean loss {all:.1}%)"
    );
}

/// The headline: DIE-IRB wins back a solid fraction of both the
/// ALU-limited loss and the overall loss.
#[test]
fn die_irb_recovers_a_meaningful_fraction_of_the_loss() {
    let base = MachineConfig::paper_baseline();
    let twoalu = base.clone().with_double_alus();
    let (mut alu_rec, mut overall_rec) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let sie = run(w, ExecMode::Sie, &base);
        let die = run(w, ExecMode::Die, &base);
        let irb = run(w, ExecMode::DieIrb, &base);
        let die2x = run(w, ExecMode::Die, &twoalu);
        let gain = irb.ipc() - die.ipc();
        let alu_gap = die2x.ipc() - die.ipc();
        let overall_gap = sie.ipc() - die.ipc();
        if alu_gap > 1e-6 {
            alu_rec.push(gain / alu_gap);
        }
        if overall_gap > 1e-6 {
            overall_rec.push(gain / overall_gap);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (a, o) = (mean(&alu_rec), mean(&overall_rec));
    assert!(
        a > 0.30,
        "mean ALU-gap recovery {a:.2} too low (paper: ~0.5)"
    );
    assert!(
        o > 0.12,
        "mean overall recovery {o:.2} too low (paper: ~0.23)"
    );
}

/// §3.1's premise, via the SIE-IRB ablation: the same buffer helps a
/// balanced SIE far less than it helps the overloaded DIE.
#[test]
fn irb_helps_die_more_than_sie() {
    let cfg = MachineConfig::paper_baseline();
    let (mut sie_gain, mut die_gain) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let sie = run(w, ExecMode::Sie, &cfg);
        let sie_irb = run(w, ExecMode::SieIrb, &cfg);
        let die = run(w, ExecMode::Die, &cfg);
        let die_irb = run(w, ExecMode::DieIrb, &cfg);
        sie_gain.push(sie_irb.ipc() / sie.ipc() - 1.0);
        die_gain.push(die_irb.ipc() / die.ipc() - 1.0);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&die_gain) > 2.0 * mean(&sie_gain),
        "IRB must pay off far more under DIE: sie={:.3} die={:.3}",
        mean(&sie_gain),
        mean(&die_gain)
    );
}

/// The duplicate stream rides the IRB: bypasses happen only in IRB
/// modes, and reuse rates are workload-dependent but nonzero overall.
#[test]
fn reuse_happens_where_it_should() {
    let cfg = MachineConfig::paper_baseline();
    let mut passes = Vec::new();
    for w in Workload::ALL {
        let die = run(w, ExecMode::Die, &cfg);
        assert_eq!(die.fu_bypasses, 0, "{w}: no IRB in plain DIE");
        let irb = run(w, ExecMode::DieIrb, &cfg);
        passes.push(irb.irb.reuse_pass_rate());
    }
    let mean = passes.iter().sum::<f64>() / passes.len() as f64;
    assert!(
        mean > 0.10,
        "mean reuse pass rate {mean:.2} too low to matter"
    );
    assert!(
        passes.iter().any(|&p| p > 0.3),
        "call-heavy workloads should reuse heavily: {passes:?}"
    );
}
