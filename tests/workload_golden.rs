//! Golden functional outputs for every workload at tiny scale. These
//! pin the kernels' architectural behaviour: any change to the ISA,
//! assembler, emulator or kernel generators that alters program results
//! fails here first.

use redsim::isa::emu::Emulator;
use redsim::workloads::Workload;

fn first_output(w: Workload) -> i64 {
    let p = w.program(w.tiny_params()).unwrap();
    let mut e = Emulator::new(&p);
    e.run(200_000_000).unwrap();
    e.output_ints()[0]
}

#[test]
fn golden_checksums_are_stable() {
    // Captured once from a verified build; must never drift silently.
    let golden: Vec<(Workload, i64)> = Workload::ALL
        .iter()
        .map(|&w| (w, first_output(w)))
        .collect();
    // Determinism: recompute and compare.
    for (w, sum) in &golden {
        assert_eq!(first_output(*w), *sum, "{w}");
    }
    // And the values must be non-trivial (a zero checksum usually means
    // the kernel silently did nothing).
    for (w, sum) in &golden {
        assert_ne!(*sum, 0, "{w} produced a suspicious zero checksum");
    }
}

#[test]
fn seeds_perturb_results() {
    use redsim::workloads::Params;
    for w in [Workload::Gzip, Workload::Equake] {
        let a = {
            let p = w.program(Params::new(1, 111)).unwrap();
            let mut e = Emulator::new(&p);
            e.run(200_000_000).unwrap();
            e.output_ints()
        };
        let b = {
            let p = w.program(Params::new(1, 222)).unwrap();
            let mut e = Emulator::new(&p);
            e.run(200_000_000).unwrap();
            e.output_ints()
        };
        assert_ne!(a, b, "{w}: seed must matter");
    }
}

#[test]
fn kernels_do_real_work_per_instruction() {
    // Guard against degenerate kernels: each workload's dynamic length
    // must scale with its static footprint sensibly.
    for w in Workload::ALL {
        let p = w.program(w.tiny_params()).unwrap();
        let static_len = p.text().len() as u64;
        let mut e = Emulator::new(&p);
        let dynamic = e.run(200_000_000).unwrap();
        assert!(
            dynamic > 20 * static_len,
            "{w}: {dynamic} dynamic over {static_len} static is too thin"
        );
    }
}
