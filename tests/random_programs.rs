//! Property tests over randomly generated programs.
//!
//! The generator emits straight-line code with *forward-only* branches,
//! so every program terminates within one pass over its text. Each
//! generated program is run through the emulator and all four timing
//! modes; the timing models must commit exactly the functional
//! instruction count, never mismatch a fault-free pair, and be
//! deterministic.

use proptest::prelude::*;

use redsim::core::{ExecMode, MachineConfig, Simulator};
use redsim::isa::emu::Emulator;
use redsim::isa::{Inst, IntReg, Opcode, ProgramBuilder};

/// One step of the generator: an abstract instruction to lower.
#[derive(Debug, Clone)]
enum Gen {
    AluRrr(u8, u8, u8, u8),
    AluRri(u8, u8, u8, i16),
    Li(u8, i32),
    MulDiv(u8, u8, u8, u8),
    Fp(u8, u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    /// Forward branch skipping 1..=skip instructions.
    Branch(u8, u8, u8, u8),
}

const RRR_OPS: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Slt,
    Opcode::Sltu,
];
const RRI_OPS: [Opcode; 5] = [
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slti,
];
const MD_OPS: [Opcode; 4] = [Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem];
const FP_OPS: [Opcode; 4] = [Opcode::FaddD, Opcode::FsubD, Opcode::FmulD, Opcode::FminD];
const BR_OPS: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bgeu];

/// Work registers: avoid zero/ra/sp so the harness scaffolding stays
/// intact.
fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 20)
}

fn gen_step() -> impl Strategy<Value = Gen> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(o, a, b, c)| Gen::AluRrr(o, a, b, c)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>())
            .prop_map(|(o, a, b, i)| Gen::AluRri(o, a, b, i)),
        (any::<u8>(), any::<i32>()).prop_map(|(a, i)| Gen::Li(a, i)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(o, a, b, c)| Gen::MulDiv(o, a, b, c)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(o, a, b, c)| Gen::Fp(o, a, b, c)),
        (any::<u8>(), any::<u16>()).prop_map(|(a, off)| Gen::Load(a, off)),
        (any::<u8>(), any::<u16>()).prop_map(|(a, off)| Gen::Store(a, off)),
        (any::<u8>(), any::<u8>(), any::<u8>(), 1u8..12)
            .prop_map(|(o, a, b, s)| Gen::Branch(o, a, b, s)),
    ]
}

/// Lowers the abstract steps into a runnable program.
fn lower(steps: &[Gen]) -> redsim::isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(2048);
    let base = IntReg::new(28); // t3 holds the data buffer
    // Prologue: seed the registers.
    b = b.inst(Inst::li(base, buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 77 - 100));
        b = b.inst(Inst::cvt_int_to_fp(
            redsim::isa::FpReg::new(1 + i),
            reg(i),
        ));
    }
    let prologue_len = 17u64;
    // Pre-compute instruction index of each step (1 inst per step).
    for (idx, g) in steps.iter().enumerate() {
        let inst = match g {
            Gen::AluRrr(o, a, x, y) => Inst::rrr(
                RRR_OPS[*o as usize % RRR_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::AluRri(o, a, x, i) => Inst::rri(
                RRI_OPS[*o as usize % RRI_OPS.len()],
                reg(*a),
                reg(*x),
                i32::from(*i),
            ),
            Gen::Li(a, i) => Inst::li(reg(*a), *i),
            Gen::MulDiv(o, a, x, y) => Inst::rrr(
                MD_OPS[*o as usize % MD_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::Fp(o, a, x, y) => {
                let f = |s: u8| redsim::isa::FpReg::new(1 + s % 8);
                Inst::fff(FP_OPS[*o as usize % FP_OPS.len()], f(*a), f(*x), f(*y))
            }
            Gen::Load(a, off) => {
                Inst::load_int(Opcode::Ld, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Store(a, off) => {
                Inst::store_int(Opcode::Sd, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Branch(o, a, x, skip) => {
                // Forward-only: skip 1..=skip instructions, clamped to
                // land at or before the halt.
                let remaining = steps.len() - idx - 1;
                let skip = (*skip as usize).min(remaining) as i32;
                Inst::branch(
                    BR_OPS[*o as usize % BR_OPS.len()],
                    reg(*a),
                    reg(*x),
                    (skip + 1) * 8,
                )
            }
        };
        b = b.inst(inst);
        let _ = prologue_len;
    }
    b.inst(Inst::halt()).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_modes_agree_with_the_emulator_on_any_program(
        steps in proptest::collection::vec(gen_step(), 5..120),
    ) {
        let program = lower(&steps);
        let mut emu = Emulator::new(&program);
        // Forward-only control flow: each instruction runs at most once.
        let n = emu.run(program.text().len() as u64 + 1).expect("terminates");
        let cfg = MachineConfig::tiny();
        for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb, ExecMode::SieIrb] {
            let stats = Simulator::new(cfg.clone(), mode)
                .run_program(&program)
                .expect("simulates");
            prop_assert_eq!(stats.committed_insts, n, "{:?}", mode);
            prop_assert_eq!(stats.pair_mismatches, 0, "{:?}", mode);
            prop_assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn timing_is_deterministic_for_any_program(
        steps in proptest::collection::vec(gen_step(), 5..60),
    ) {
        let program = lower(&steps);
        let cfg = MachineConfig::tiny();
        let run = || {
            Simulator::new(cfg.clone(), ExecMode::DieIrb)
                .run_program(&program)
                .expect("simulates")
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn disassembly_listing_reassembles_identically(
        steps in proptest::collection::vec(gen_step(), 1..60),
    ) {
        use redsim::isa::asm::assemble;
        use redsim::isa::disasm::listing;
        let program = lower(&steps);
        let text = listing(&program);
        let back = assemble(&text).expect("listing must reassemble");
        prop_assert_eq!(back.text(), program.text());
    }

    #[test]
    fn container_round_trips_any_program(
        steps in proptest::collection::vec(gen_step(), 1..60),
    ) {
        use redsim::isa::container::{from_bytes, to_bytes};
        let program = lower(&steps);
        prop_assert_eq!(from_bytes(&to_bytes(&program)).expect("loads"), program);
    }

    #[test]
    fn trace_serialization_round_trips_any_program(
        steps in proptest::collection::vec(gen_step(), 1..60),
    ) {
        use redsim::isa::trace_io::{read_trace, write_trace};
        let program = lower(&steps);
        let trace = Emulator::new(&program)
            .run_trace(program.text().len() as u64 + 1)
            .expect("terminates");
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("writes");
        prop_assert_eq!(read_trace(buf.as_slice()).expect("reads"), trace);
    }

    #[test]
    fn encoded_program_text_round_trips(
        steps in proptest::collection::vec(gen_step(), 1..80),
    ) {
        use redsim::isa::encode::{decode_text, encode_text};
        let program = lower(&steps);
        let bytes = encode_text(program.text());
        let back = decode_text(&bytes).expect("decodes");
        prop_assert_eq!(back.as_slice(), program.text());
    }
}
