//! Generative tests over randomly generated programs.
//!
//! The generator emits straight-line code with *forward-only* branches,
//! so every program terminates within one pass over its text. Each
//! generated program is run through the emulator and all four timing
//! modes; the timing models must commit exactly the functional
//! instruction count, never mismatch a fault-free pair, and be
//! deterministic.
//!
//! Inputs are drawn from a fixed-seed [`redsim_util::Rng`], so a
//! failing case replays exactly under `cargo test`.

use redsim::core::{ExecMode, MachineConfig, Simulator};
use redsim::isa::emu::Emulator;
use redsim::isa::{Inst, IntReg, Opcode, ProgramBuilder};
use redsim_util::Rng;

/// One step of the generator: an abstract instruction to lower.
#[derive(Debug, Clone)]
enum Gen {
    AluRrr(u8, u8, u8, u8),
    AluRri(u8, u8, u8, i16),
    Li(u8, i32),
    MulDiv(u8, u8, u8, u8),
    Fp(u8, u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    /// Forward branch skipping 1..=skip instructions.
    Branch(u8, u8, u8, u8),
}

const RRR_OPS: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Slt,
    Opcode::Sltu,
];
const RRI_OPS: [Opcode; 5] = [
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slti,
];
const MD_OPS: [Opcode; 4] = [Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem];
const FP_OPS: [Opcode; 4] = [Opcode::FaddD, Opcode::FsubD, Opcode::FmulD, Opcode::FminD];
const BR_OPS: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bgeu];

/// Work registers: avoid zero/ra/sp so the harness scaffolding stays
/// intact.
fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 20)
}

fn gen_step(rng: &mut Rng) -> Gen {
    match rng.index(8) {
        0 => Gen::AluRrr(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        1 => Gen::AluRri(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_i16()),
        2 => Gen::Li(rng.any_u8(), rng.any_i32()),
        3 => Gen::MulDiv(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        4 => Gen::Fp(rng.any_u8(), rng.any_u8(), rng.any_u8(), rng.any_u8()),
        5 => Gen::Load(rng.any_u8(), rng.next_u64() as u16),
        6 => Gen::Store(rng.any_u8(), rng.next_u64() as u16),
        _ => Gen::Branch(
            rng.any_u8(),
            rng.any_u8(),
            rng.any_u8(),
            rng.range_u64(1, 12) as u8,
        ),
    }
}

fn gen_steps(rng: &mut Rng, lo: u64, hi: u64) -> Vec<Gen> {
    (0..rng.range_u64(lo, hi)).map(|_| gen_step(rng)).collect()
}

/// Lowers the abstract steps into a runnable program.
fn lower(steps: &[Gen]) -> redsim::isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(2048);
    let base = IntReg::new(28); // t3 holds the data buffer
                                // Prologue: seed the registers.
    b = b.inst(Inst::li(base, buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 77 - 100));
        b = b.inst(Inst::cvt_int_to_fp(redsim::isa::FpReg::new(1 + i), reg(i)));
    }
    let prologue_len = 17u64;
    // Pre-compute instruction index of each step (1 inst per step).
    for (idx, g) in steps.iter().enumerate() {
        let inst = match g {
            Gen::AluRrr(o, a, x, y) => Inst::rrr(
                RRR_OPS[*o as usize % RRR_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::AluRri(o, a, x, i) => Inst::rri(
                RRI_OPS[*o as usize % RRI_OPS.len()],
                reg(*a),
                reg(*x),
                i32::from(*i),
            ),
            Gen::Li(a, i) => Inst::li(reg(*a), *i),
            Gen::MulDiv(o, a, x, y) => Inst::rrr(
                MD_OPS[*o as usize % MD_OPS.len()],
                reg(*a),
                reg(*x),
                reg(*y),
            ),
            Gen::Fp(o, a, x, y) => {
                let f = |s: u8| redsim::isa::FpReg::new(1 + s % 8);
                Inst::fff(FP_OPS[*o as usize % FP_OPS.len()], f(*a), f(*x), f(*y))
            }
            Gen::Load(a, off) => {
                Inst::load_int(Opcode::Ld, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Store(a, off) => {
                Inst::store_int(Opcode::Sd, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Branch(o, a, x, skip) => {
                // Forward-only: skip 1..=skip instructions, clamped to
                // land at or before the halt.
                let remaining = steps.len() - idx - 1;
                let skip = (*skip as usize).min(remaining) as i32;
                Inst::branch(
                    BR_OPS[*o as usize % BR_OPS.len()],
                    reg(*a),
                    reg(*x),
                    (skip + 1) * 8,
                )
            }
        };
        b = b.inst(inst);
        let _ = prologue_len;
    }
    b.inst(Inst::halt()).build()
}

const CASES: u64 = 24;

#[test]
fn all_modes_agree_with_the_emulator_on_any_program() {
    let mut rng = Rng::new(0x9E0_0001);
    for case in 0..CASES {
        let steps = gen_steps(&mut rng, 5, 120);
        let program = lower(&steps);
        let mut emu = Emulator::new(&program);
        // Forward-only control flow: each instruction runs at most once.
        let n = emu
            .run(program.text().len() as u64 + 1)
            .expect("terminates");
        let cfg = MachineConfig::tiny();
        for mode in [
            ExecMode::Sie,
            ExecMode::Die,
            ExecMode::DieIrb,
            ExecMode::SieIrb,
        ] {
            let stats = Simulator::new(cfg.clone(), mode)
                .run_program(&program)
                .expect("simulates");
            assert_eq!(stats.committed_insts, n, "case {case} {mode:?}");
            assert_eq!(stats.pair_mismatches, 0, "case {case} {mode:?}");
            assert!(stats.cycles > 0);
        }
    }
}

#[test]
fn timing_is_deterministic_for_any_program() {
    let mut rng = Rng::new(0x9E0_0002);
    for case in 0..CASES {
        let steps = gen_steps(&mut rng, 5, 60);
        let program = lower(&steps);
        let cfg = MachineConfig::tiny();
        let run = || {
            Simulator::new(cfg.clone(), ExecMode::DieIrb)
                .run_program(&program)
                .expect("simulates")
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn disassembly_listing_reassembles_identically() {
    use redsim::isa::asm::assemble;
    use redsim::isa::disasm::listing;
    let mut rng = Rng::new(0x9E0_0003);
    for case in 0..CASES {
        let steps = gen_steps(&mut rng, 1, 60);
        let program = lower(&steps);
        let text = listing(&program);
        let back = assemble(&text).expect("listing must reassemble");
        assert_eq!(back.text(), program.text(), "case {case}");
    }
}

#[test]
fn container_round_trips_any_program() {
    use redsim::isa::container::{from_bytes, to_bytes};
    let mut rng = Rng::new(0x9E0_0004);
    for case in 0..CASES {
        let steps = gen_steps(&mut rng, 1, 60);
        let program = lower(&steps);
        assert_eq!(
            from_bytes(&to_bytes(&program)).expect("loads"),
            program,
            "case {case}"
        );
    }
}

#[test]
fn trace_serialization_round_trips_any_program() {
    use redsim::isa::trace_io::{read_trace, write_trace};
    let mut rng = Rng::new(0x9E0_0005);
    for case in 0..CASES {
        let steps = gen_steps(&mut rng, 1, 60);
        let program = lower(&steps);
        let trace = Emulator::new(&program)
            .run_trace(program.text().len() as u64 + 1)
            .expect("terminates");
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("writes");
        assert_eq!(
            read_trace(buf.as_slice()).expect("reads"),
            trace,
            "case {case}"
        );
    }
}

#[test]
fn encoded_program_text_round_trips() {
    use redsim::isa::encode::{decode_text, encode_text};
    let mut rng = Rng::new(0x9E0_0006);
    for case in 0..CASES {
        let steps = gen_steps(&mut rng, 1, 80);
        let program = lower(&steps);
        let bytes = encode_text(program.text());
        let back = decode_text(&bytes).expect("decodes");
        assert_eq!(back.as_slice(), program.text(), "case {case}");
    }
}
