//! Generative wakeup equivalence: the bitset ready-set against a naive
//! per-entry scan.
//!
//! The event-driven scheduler keeps one [`ReadySet`] bit per ring slot
//! and collects issue candidates by walking whole words; the original
//! implementation filtered every live RUU entry each cycle. The two
//! must agree exactly — same ready-set, same (oldest-first) order — or
//! issue arbitration silently diverges. These tests pin that property
//! at two levels:
//!
//! 1. Directly: random ring states (marked bits in and out of the live
//!    window, wrapped and word-straddling windows) are walked through
//!    [`ReadySet::append_ring`]/[`ReadySet::append_union_ring`] and
//!    compared against a literal slot-by-slot scan.
//! 2. End to end: random wakeup-heavy programs (long-latency producers
//!    with wide consumer fan-out, dependence chains, issue-saturating
//!    bursts) run under both [`SchedEngine`]s in all five execution
//!    modes; the scan engine *is* the naive per-entry scan, so
//!    bit-identical [`SimStats`] proves the bitset path selects the
//!    same instructions in the same order every cycle.
//!
//! A failing case replays exactly under `cargo test` (fixed-seed
//! [`redsim_util::Rng`]).

use redsim::core::sched::ReadySet;
use redsim::core::{ExecMode, FaultConfig, MachineConfig, SchedEngine, SimStats, Simulator};
use redsim::isa::{FpReg, Inst, IntReg, Opcode, Program, ProgramBuilder};
use redsim_util::Rng;

// ---------------------------------------------------------------------
// Level 1: the bitset walk against a literal ring scan.
// ---------------------------------------------------------------------

/// The naive reference: visit every window slot in ring order from the
/// base and report the marked ones' sequence numbers.
fn naive_ring_scan(marked: &[bool], base_slot: usize, len: usize, base_seq: u64) -> Vec<u64> {
    let mask = marked.len() - 1;
    (0..len as u64)
        .filter(|&off| marked[(base_slot + off as usize) & mask])
        .map(|off| base_seq + off)
        .collect()
}

/// One random ring state: a `ReadySet` and its boolean mirror.
fn random_set(rng: &mut Rng, slots: usize, density: f64) -> (ReadySet, Vec<bool>) {
    let mut set = ReadySet::new(slots);
    let mut marked = vec![false; slots];
    for (slot, mark) in marked.iter_mut().enumerate() {
        if rng.chance(density) {
            set.insert(slot);
            *mark = true;
        }
    }
    // Exercise idempotent re-insert and remove on a few slots.
    for _ in 0..slots / 8 {
        let slot = rng.index(slots);
        if rng.flip() {
            set.insert(slot);
            marked[slot] = true;
        } else {
            set.remove(slot);
            marked[slot] = false;
        }
    }
    (set, marked)
}

/// A window whose base seq is congruent to its base slot, as the RUU
/// ring guarantees (`slot = seq & mask`).
fn random_window(rng: &mut Rng, slots: usize) -> (usize, usize, u64) {
    let base_slot = rng.index(slots);
    let len = rng.index(slots + 1);
    let base_seq = rng.range_u64(0, 1 << 20) * slots as u64 + base_slot as u64;
    (base_slot, len, base_seq)
}

#[test]
fn bitset_walk_matches_naive_scan() {
    let mut rng = Rng::new(0xB17_0001);
    for round in 0..400u32 {
        let slots = 64 << rng.index(4); // 64..=512
        let density = *rng.pick(&[0.02, 0.2, 0.5, 0.9]);
        let (set, marked) = random_set(&mut rng, slots, density);
        let (base_slot, len, base_seq) = random_window(&mut rng, slots);
        let mut walked = Vec::new();
        set.append_ring(base_slot, len, base_seq, &mut walked);
        let naive = naive_ring_scan(&marked, base_slot, len, base_seq);
        assert_eq!(
            walked, naive,
            "round {round}: slots {slots} window [{base_slot}; {len}) seq {base_seq}"
        );
        // Order is ascending seq (oldest first) by construction of the
        // naive scan; pin it independently of the reference.
        assert!(walked.windows(2).all(|w| w[0] < w[1]), "round {round}");
    }
}

#[test]
fn union_walk_matches_naive_two_stream_scan() {
    // The dual-stream modes select over primary ∪ duplicate ready bits
    // in one pass; the union walk must equal marking either stream.
    let mut rng = Rng::new(0xB17_0002);
    for round in 0..200u32 {
        let slots = 64 << rng.index(4);
        let (a, marked_a) = random_set(&mut rng, slots, 0.3);
        let (b, marked_b) = random_set(&mut rng, slots, 0.3);
        let (base_slot, len, base_seq) = random_window(&mut rng, slots);
        let mut walked = Vec::new();
        ReadySet::append_union_ring(&a, &b, base_slot, len, base_seq, &mut walked);
        let either: Vec<bool> = marked_a
            .iter()
            .zip(&marked_b)
            .map(|(&x, &y)| x || y)
            .collect();
        let naive = naive_ring_scan(&either, base_slot, len, base_seq);
        assert_eq!(
            walked, naive,
            "round {round}: slots {slots} window [{base_slot}; {len}) seq {base_seq}"
        );
    }
}

#[test]
fn stale_bits_outside_the_window_never_surface() {
    // An entry's bit is cleared when it issues or retires, but the walk
    // must not depend on that hygiene for slots the window has moved
    // past: everything outside [base, base+len) is masked off, even
    // when the boundary falls mid-word.
    let mut set = ReadySet::new(64);
    for slot in 0..64 {
        set.insert(slot); // worst case: every bit stale or live
    }
    for base_slot in [0usize, 1, 31, 32, 33, 63] {
        for len in [0usize, 1, 2, 31, 33, 64] {
            let base_seq = 640 + base_slot as u64;
            let mut walked = Vec::new();
            set.append_ring(base_slot, len, base_seq, &mut walked);
            let expect: Vec<u64> = (0..len as u64).map(|off| base_seq + off).collect();
            assert_eq!(walked, expect, "window [{base_slot}; {len})");
        }
    }
}

// ---------------------------------------------------------------------
// Level 2: wakeup-heavy random programs under both engines.
// ---------------------------------------------------------------------

/// Program steps weighted toward wakeup stress, unlike the uniform mix
/// in `engine_equivalence.rs`: long-latency producers whose completion
/// wakes a wide fan-out at once (multi-bit word updates), dependence
/// chains (one wakeup per cycle, always the oldest), and bursts of
/// independent single-cycle ops that saturate issue width so ready
/// bits persist across cycles and arbitration order matters.
#[derive(Debug, Clone)]
enum Gen {
    /// Unpipelined integer divide: a slow producer tracked as the
    /// current fan-out source.
    SlowInt(u8, u8),
    /// FP divide, the slow producer of the FP side.
    SlowFp(u8, u8, u8),
    /// Consumer of the most recent slow integer producer.
    Consume(u8, u8),
    /// FP consumer of the most recent slow FP producer.
    ConsumeFp(u8, u8),
    /// Chain link: the chain register feeds itself.
    Chain(u8),
    /// Independent single-cycle filler.
    Burst(u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    /// Forward branch skipping 1..=skip instructions.
    Branch(u8, u8, u8, u8),
}

const BURST_OPS: [Opcode; 4] = [Opcode::Add, Opcode::Xor, Opcode::Sll, Opcode::Sltu];
const BR_OPS: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bgeu];

/// Work registers: avoid zero/ra/sp so the harness scaffolding stays
/// intact.
fn reg(sel: u8) -> IntReg {
    IntReg::new(5 + sel % 20)
}

fn freg(sel: u8) -> FpReg {
    FpReg::new(1 + sel % 8)
}

fn gen_step(rng: &mut Rng) -> Gen {
    match rng.index(12) {
        0 => Gen::SlowInt(rng.any_u8(), rng.any_u8()),
        1 => Gen::SlowFp(rng.any_u8(), rng.any_u8(), rng.any_u8()),
        2 | 3 => Gen::Consume(rng.any_u8(), rng.any_u8()),
        4 => Gen::ConsumeFp(rng.any_u8(), rng.any_u8()),
        5 | 6 => Gen::Chain(rng.any_u8()),
        7 | 8 => Gen::Burst(rng.any_u8(), rng.any_u8(), rng.any_u8()),
        9 => Gen::Load(rng.any_u8(), rng.next_u64() as u16),
        10 => Gen::Store(rng.any_u8(), rng.next_u64() as u16),
        _ => Gen::Branch(
            rng.any_u8(),
            rng.any_u8(),
            rng.any_u8(),
            rng.range_u64(1, 10) as u8,
        ),
    }
}

/// Generates and lowers one wakeup-heavy program of `lo..hi` steps.
fn gen_program(rng: &mut Rng, lo: u64, hi: u64) -> Program {
    let steps: Vec<Gen> = (0..rng.range_u64(lo, hi)).map(|_| gen_step(rng)).collect();
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(2048);
    let base = IntReg::new(28); // t3 holds the data buffer
    b = b.inst(Inst::li(base, buf as i32));
    for i in 0..8u8 {
        b = b.inst(Inst::li(reg(i), i32::from(i) * 53 + 7));
        b = b.inst(Inst::cvt_int_to_fp(freg(i), reg(i)));
    }
    // The fan-out sources and the chain register, updated as lowering
    // walks the steps.
    let mut slow = reg(0);
    let mut slow_fp = freg(0);
    let chain = reg(1);
    for (idx, g) in steps.iter().enumerate() {
        let inst = match g {
            Gen::SlowInt(a, x) => {
                slow = reg(*a);
                Inst::rrr(Opcode::Div, slow, reg(*x), chain)
            }
            Gen::SlowFp(a, x, y) => {
                slow_fp = freg(*a);
                Inst::fff(Opcode::FdivD, slow_fp, freg(*x), freg(*y))
            }
            Gen::Consume(a, x) => Inst::rrr(Opcode::Add, reg(*a), slow, reg(*x)),
            Gen::ConsumeFp(a, x) => Inst::fff(Opcode::FaddD, freg(*a), slow_fp, freg(*x)),
            Gen::Chain(x) => Inst::rrr(Opcode::Xor, chain, chain, reg(*x)),
            Gen::Burst(o, a, x) => Inst::rrr(
                BURST_OPS[*o as usize % BURST_OPS.len()],
                reg(*a),
                reg(*x),
                reg(a.wrapping_add(*x)),
            ),
            Gen::Load(a, off) => {
                Inst::load_int(Opcode::Ld, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Store(a, off) => {
                Inst::store_int(Opcode::Sd, reg(*a), base, i32::from(off % 2048 / 8 * 8))
            }
            Gen::Branch(o, a, x, skip) => {
                let remaining = steps.len() - idx - 1;
                let skip = (*skip as usize).min(remaining) as i32;
                Inst::branch(
                    BR_OPS[*o as usize % BR_OPS.len()],
                    reg(*a),
                    reg(*x),
                    (skip + 1) * 8,
                )
            }
        };
        b = b.inst(inst);
    }
    b.inst(Inst::halt()).build()
}

/// Runs `program` under both engines with otherwise-identical
/// configuration and returns the two stats structs.
fn both_engines(program: &Program, cfg: &MachineConfig, mode: ExecMode) -> (SimStats, SimStats) {
    let mut scan = cfg.clone();
    scan.engine = SchedEngine::ScanReference;
    let mut event = cfg.clone();
    event.engine = SchedEngine::EventDriven;
    let ev = Simulator::new(event, mode)
        .try_with_faults(FaultConfig::none())
        .expect("valid fault configuration")
        .run_program(program)
        .expect("event-driven run");
    let sc = Simulator::new(scan, mode)
        .try_with_faults(FaultConfig::none())
        .expect("valid fault configuration")
        .run_program(program)
        .expect("scan-reference run");
    (ev, sc)
}

const ALL_MODES: [ExecMode; 5] = [
    ExecMode::Sie,
    ExecMode::Die,
    ExecMode::DieIrb,
    ExecMode::SieIrb,
    ExecMode::DieCluster,
];

#[test]
fn wakeup_heavy_programs_agree_in_every_mode() {
    let mut rng = Rng::new(0xB17_0003);
    let cfg = MachineConfig::tiny();
    for case in 0..12u64 {
        let program = gen_program(&mut rng, 30, 160);
        for mode in ALL_MODES {
            let (ev, sc) = both_engines(&program, &cfg, mode);
            assert_eq!(ev, sc, "case {case} {mode:?}");
        }
    }
}

#[test]
fn wakeup_heavy_programs_agree_at_paper_scale() {
    // Paper-scale windows hold many simultaneously-ready entries
    // across word boundaries — the regime where a wrong walk order or
    // a dropped union bit would actually reorder issue.
    let mut rng = Rng::new(0xB17_0004);
    let base = MachineConfig::paper_baseline();
    let big = MachineConfig::paper_baseline().with_double_ruu();
    for case in 0..3u64 {
        let program = gen_program(&mut rng, 60, 200);
        for (name, cfg) in [("paper", &base), ("2xruu", &big)] {
            for mode in ALL_MODES {
                let (ev, sc) = both_engines(&program, cfg, mode);
                assert_eq!(ev, sc, "case {case} {name} {mode:?}");
            }
        }
    }
}
