//! Bring your own workload: write assembly, inspect the disassembly and
//! the dynamic instruction mix, check functional output against the
//! emulator, then measure it on the cycle-level core.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use redsim::core::{ExecMode, MachineConfig, Simulator};
use redsim::isa::asm::assemble;
use redsim::isa::disasm::listing;
use redsim::isa::emu::Emulator;
use redsim::workloads::mix::InstMix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sieve of Eratosthenes over a small table, then count the primes.
    let program = assemble(
        r#"
            .data
        flags:  .space 2048             # one byte per candidate
            .text
        main:
            la   s0, flags
            li   s1, 2048
            li   t0, 2                  # p
        outer:
            add  t1, s0, t0
            lbu  t2, 0(t1)
            bnez t2, nextp              # already composite
            # mark multiples of p
            add  t3, t0, t0             # m = 2p
        mark:
            bge  t3, s1, nextp
            add  t4, s0, t3
            li   t5, 1
            sb   t5, 0(t4)
            add  t3, t3, t0
            j    mark
        nextp:
            addi t0, t0, 1
            blt  t0, s1, outer
            # count zeros (primes)
            li   t0, 2
            li   s2, 0
        count:
            add  t1, s0, t0
            lbu  t2, 0(t1)
            bnez t2, skip
            addi s2, s2, 1
        skip:
            addi t0, t0, 1
            blt  t0, s1, count
            puti s2
            halt
        "#,
    )?;

    println!("--- first lines of the disassembly ---");
    for line in listing(&program).lines().take(8) {
        println!("{line}");
    }

    // Functional check: 309 primes below 2048.
    let mut emu = Emulator::new(&program);
    emu.run(10_000_000)?;
    println!(
        "\nemulator says: {} primes below 2048",
        emu.output_ints()[0]
    );
    assert_eq!(emu.output_ints(), &[309]);

    let mix = InstMix::from_program(&program, 10_000_000)?;
    println!("dynamic mix: {mix}");

    let cfg = MachineConfig::paper_baseline();
    for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
        let stats = Simulator::new(cfg.clone(), mode).run_program(&program)?;
        println!(
            "{mode:?}: IPC {:.3}, branch mispredict rate {:.1}%",
            stats.ipc(),
            stats.branches.cond_mispredict_rate() * 100.0
        );
    }
    Ok(())
}
