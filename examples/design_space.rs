//! Design-space walk: how DIE-IRB performance moves with IRB capacity,
//! organization and the paper's two policy levers (forwarding and issue
//! priority), on one ALU-hungry workload.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use redsim::core::{ExecMode, ForwardingPolicy, IssuePolicy, MachineConfig, Simulator};
use redsim::irb::IrbConfig;
use redsim::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::Twolf;
    let program = w.program(w.tiny_params())?;
    let base = MachineConfig::paper_baseline();

    let sie = Simulator::new(base.clone(), ExecMode::Sie).run_program(&program)?;
    let die = Simulator::new(base.clone(), ExecMode::Die).run_program(&program)?;
    println!(
        "workload {w}: SIE IPC {:.3}, DIE IPC {:.3}\n",
        sie.ipc(),
        die.ipc()
    );

    println!("IRB capacity sweep (direct-mapped):");
    for entries in [64, 256, 1024, 4096] {
        let mut cfg = base.clone();
        cfg.irb.entries = entries;
        let s = Simulator::new(cfg, ExecMode::DieIrb).run_program(&program)?;
        println!(
            "  {entries:>5} entries: IPC {:.3}, reuse-pass {:>5.1}%, conflict evictions {}",
            s.ipc(),
            s.irb.reuse_pass_rate() * 100.0,
            s.irb.buffer.conflict_evictions
        );
    }

    println!("\norganization at 1024 entries:");
    for (name, irb) in [
        ("direct-mapped ", IrbConfig::paper_baseline()),
        ("+victim buffer", IrbConfig::paper_baseline_with_victim()),
        (
            "2-way         ",
            IrbConfig {
                assoc: 2,
                ..IrbConfig::paper_baseline()
            },
        ),
    ] {
        let mut cfg = base.clone();
        cfg.irb = irb;
        let s = Simulator::new(cfg, ExecMode::DieIrb).run_program(&program)?;
        println!("  {name}: IPC {:.3}", s.ipc());
    }

    println!("\npolicy levers:");
    for (name, fwd, prio) in [
        (
            "paper design (shared fwd, primary-first)",
            ForwardingPolicy::PrimaryToBoth,
            IssuePolicy::ModeDefault,
        ),
        (
            "per-stream forwarding ablation          ",
            ForwardingPolicy::PerStream,
            IssuePolicy::ModeDefault,
        ),
        (
            "oldest-first selection ablation         ",
            ForwardingPolicy::PrimaryToBoth,
            IssuePolicy::OldestFirst,
        ),
    ] {
        let mut cfg = base.clone();
        cfg.forwarding = fwd;
        cfg.issue_policy = prio;
        let s = Simulator::new(cfg, ExecMode::DieIrb).run_program(&program)?;
        println!("  {name}: IPC {:.3}", s.ipc());
    }
    Ok(())
}
