//! Quickstart: assemble a program, run it under SIE, DIE and DIE-IRB,
//! and see what temporal redundancy costs — and what the instruction
//! reuse buffer wins back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use redsim::core::{ExecMode, MachineConfig, Simulator};
use redsim::isa::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy kernel with both reusable work (the constants recomputed
    // every iteration) and varying work (the accumulator chain).
    let program = assemble(
        r#"
        main:
            li   s0, 5000           # iterations
        loop:
            li   t0, 13             # "rematerialized constants":
            li   t1, 29             # perfect candidates for reuse
            mul  t2, t0, t1
            add  t3, t2, t0
            add  s1, s1, t3         # accumulator (changes every trip)
            xor  s2, s2, s1
            addi s0, s0, -1
            bnez s0, loop
            puti s1
            halt
        "#,
    )?;

    let cfg = MachineConfig::paper_baseline();
    println!("machine: 8-wide, 128-entry RUU, 4/2/2/1 FUs, 1024-entry IRB\n");

    let mut sie_ipc = 0.0;
    for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
        let stats = Simulator::new(cfg.clone(), mode).run_program(&program)?;
        if mode == ExecMode::Sie {
            sie_ipc = stats.ipc();
        }
        println!(
            "{mode:?}: {} instructions in {} cycles -> IPC {:.3} ({:+.1}% vs SIE)",
            stats.committed_insts,
            stats.cycles,
            stats.ipc(),
            (stats.ipc() / sie_ipc - 1.0) * 100.0,
        );
        if mode == ExecMode::DieIrb {
            println!(
                "         IRB: {:.0}% pc-hit, {:.0}% reuse-pass, {} duplicate ops bypassed the ALUs",
                stats.irb.buffer.hit_rate() * 100.0,
                stats.irb.reuse_pass_rate() * 100.0,
                stats.fu_bypasses,
            );
        }
    }
    Ok(())
}
