//! Reliability demo: inject transient faults into the functional units,
//! the (unprotected) IRB array, and the forwarding buses, and watch what
//! each execution discipline does with them (§3.4 of the paper).
//!
//! ```sh
//! cargo run --release --example reliability
//! ```

use redsim::core::{ExecMode, FaultConfig, ForwardingPolicy, MachineConfig, Simulator};
use redsim::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::Gcc;
    let program = w.program(w.tiny_params())?;
    let cfg = MachineConfig::paper_baseline();

    println!("workload: {w}, transient strikes on three structures\n");

    // 1. Functional-unit strikes: SIE corrupts silently, DIE detects.
    let fu = FaultConfig {
        fu_rate: 5e-4,
        seed: 7,
        ..FaultConfig::none()
    };
    let sie = Simulator::new(cfg.clone(), ExecMode::Sie)
        .try_with_faults(fu)
        .expect("valid fault configuration")
        .run_program(&program)?;
    println!(
        "SIE     / FU strikes : {} injected, {} silently corrupted commits, 0 detected",
        sie.faults.injected_fu, sie.faults.silent_sie
    );
    let die = Simulator::new(cfg.clone(), ExecMode::Die)
        .try_with_faults(fu)
        .expect("valid fault configuration")
        .run_program(&program)?;
    println!(
        "DIE     / FU strikes : {} injected, {} detected at commit ({} rewinds), {} escaped",
        die.faults.injected_fu, die.faults.detected, die.pair_mismatches, die.faults.escaped
    );

    // 2. IRB-array strikes: the buffer needs no ECC — a corrupt reused
    //    result still faces the primary stream's ALU execution.
    let irb = FaultConfig {
        irb_rate: 0.02,
        seed: 9,
        ..FaultConfig::none()
    };
    let die_irb = Simulator::new(cfg.clone(), ExecMode::DieIrb)
        .try_with_faults(irb)
        .expect("valid fault configuration")
        .run_program(&program)?;
    println!(
        "DIE-IRB / IRB strikes: {} landed on live entries, {} reached commit and were detected",
        die_irb.faults.injected_irb, die_irb.faults.detected
    );

    // 3. Forwarding-bus strikes: the residual vulnerability. Shared
    //    (primary-to-both) forwarding feeds both copies the same corrupt
    //    operand — they agree, and the fault escapes (Figure 6(c)).
    //    Per-stream forwarding catches the same strike (Figure 6(b)).
    let bus = FaultConfig {
        forward_rate: 5e-4,
        seed: 11,
        ..FaultConfig::none()
    };
    let shared = Simulator::new(cfg.clone(), ExecMode::DieIrb)
        .try_with_faults(bus)
        .expect("valid fault configuration")
        .run_program(&program)?;
    let mut per_stream_cfg = cfg;
    per_stream_cfg.forwarding = ForwardingPolicy::PerStream;
    let split = Simulator::new(per_stream_cfg, ExecMode::Die)
        .try_with_faults(bus)
        .expect("valid fault configuration")
        .run_program(&program)?;
    // One bus strike can corrupt several waiting consumers, so the
    // detected/escaped counts (per corrupted instruction) can exceed
    // the strike counts (per broadcast event).
    println!(
        "DIE-IRB / bus strikes (shared fwd)    : {} strike events, {} corrupted commits detected, {} ESCAPED",
        shared.faults.injected_forward, shared.faults.detected, shared.faults.escaped
    );
    println!(
        "DIE     / bus strikes (per-stream fwd): {} strike events, {} corrupted commits detected, {} escaped",
        split.faults.injected_forward, split.faults.detected, split.faults.escaped
    );

    println!(
        "\nall runs committed the full program ({} instructions) despite the strikes",
        die.committed_insts
    );
    Ok(())
}
