//! Reuse-attribution accounting: opcode class × PC × loop structure.
//!
//! The aggregate hit/miss counters in [`crate::IrbStats`] say *how much*
//! reuse the buffer recovers, but not *where* it comes from. Following
//! the decomposition of Coppieters et al. ("Decanting the Contribution
//! of Instruction Types and Loop Structures in the Reuse of Traces"),
//! this module attributes every IRB event along three axes:
//!
//! * **opcode class** — a fixed five-way taxonomy (`alu`, `mul`, `div`,
//!   `mem`, `branch`) indexed by `usize` so this crate stays independent
//!   of any particular ISA's opcode enum;
//! * **static PC** — a per-site tally, reduced to a fixed-size top-K
//!   table with deterministic tie-breaking at finalization;
//! * **loop structure** — events are charged to the innermost loop the
//!   fetch stream is currently inside, identified by the
//!   backward-branch-target heuristic (a taken control transfer to a
//!   lower address names a loop by its head PC).
//!
//! The design invariant is **exact conservation**: the per-class
//! counters, the top-K + folded PC counters, and the loop + outside
//! counters each sum to precisely the same totals, which in turn equal
//! the `IrbStats`/reuse-test aggregates maintained by the timing model.
//! There is no sampling anywhere — "folded" buckets absorb whatever the
//! fixed-size tables cannot name.
//!
//! The collector is allocation-heavy (two `BTreeMap`s) and therefore
//! lives behind an `Option<Box<..>>` in the timing model: when
//! attribution is disabled nothing here is ever constructed, keeping the
//! disabled path allocation-free and observationally pure.

use std::collections::BTreeMap;

/// Number of opcode classes in the attribution taxonomy.
pub const REUSE_CLASSES: usize = 5;

/// Wire names of the opcode classes, indexed by class id.
pub const REUSE_CLASS_NAMES: [&str; REUSE_CLASSES] = ["alu", "mul", "div", "mem", "branch"];

/// One attribution tally: the IRB event counts charged to a class, a
/// static PC, or a loop.
///
/// `lookups` counts granted buffer probes, `hits` the probes that found
/// a matching tag (PC or victim), and `passes`/`fails` the outcomes of
/// the issue-window reuse test. Note `passes + fails` need not equal
/// `hits`: a hit whose instruction squashes before issue never reaches
/// the reuse test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttrCounters {
    /// Granted IRB lookups.
    pub lookups: u64,
    /// Lookups that found a matching entry (PC or victim hit).
    pub hits: u64,
    /// Reuse tests whose operands matched (duplicate skipped the FU).
    pub passes: u64,
    /// Reuse tests whose operands differed.
    pub fails: u64,
}

impl AttrCounters {
    /// Accumulate `other` into `self`.
    pub fn add(&mut self, other: &AttrCounters) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.passes += other.passes;
        self.fails += other.fails;
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.lookups == 0 && self.hits == 0 && self.passes == 0 && self.fails == 0
    }
}

/// One entry of the top-K hot-PC table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcSite {
    /// The static instruction address.
    pub pc: u64,
    /// Opcode class id of the instruction at `pc` (index into
    /// [`REUSE_CLASS_NAMES`]).
    pub class: u8,
    /// Events charged to this PC.
    pub counters: AttrCounters,
}

/// One loop's attribution, named by its head PC (the target of the
/// backward branch that closes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopSite {
    /// Loop head PC (backward-branch target).
    pub head: u64,
    /// Events charged while this loop was the current region.
    pub counters: AttrCounters,
}

/// Finalized reuse attribution, as published in `SimStats`.
///
/// Three independent decompositions of the same event stream, each
/// summing exactly to the aggregate IRB counters (see
/// [`ReuseAttribution::total`]):
///
/// 1. `classes[c]` over all class ids `c`;
/// 2. `hot_pcs[..]` plus `folded_pcs`;
/// 3. `loops[..]` plus `folded_loops` plus `outside`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReuseAttribution {
    /// Per-opcode-class tallies, indexed by class id.
    pub classes: [AttrCounters; REUSE_CLASSES],
    /// The K hottest static PCs (most hits first; ties broken by more
    /// lookups, then lower PC).
    pub hot_pcs: Vec<PcSite>,
    /// Events at PCs beyond the top K, folded into one bucket.
    pub folded_pcs: AttrCounters,
    /// The K hottest loops, same ordering discipline as `hot_pcs`.
    pub loops: Vec<LoopSite>,
    /// Events inside loops beyond the top K.
    pub folded_loops: AttrCounters,
    /// Events observed before any backedge was seen (straight-line
    /// prologue code outside every loop).
    pub outside: AttrCounters,
}

impl ReuseAttribution {
    /// The grand total, computed from the per-class decomposition.
    pub fn total(&self) -> AttrCounters {
        let mut t = AttrCounters::default();
        for c in &self.classes {
            t.add(c);
        }
        t
    }

    /// Sum of the PC decomposition (`hot_pcs` + `folded_pcs`); equals
    /// [`ReuseAttribution::total`] by construction.
    pub fn pc_total(&self) -> AttrCounters {
        let mut t = self.folded_pcs;
        for s in &self.hot_pcs {
            t.add(&s.counters);
        }
        t
    }

    /// Sum of the loop decomposition (`loops` + `folded_loops` +
    /// `outside`); equals [`ReuseAttribution::total`] by construction.
    pub fn loop_total(&self) -> AttrCounters {
        let mut t = self.outside;
        t.add(&self.folded_loops);
        for l in &self.loops {
            t.add(&l.counters);
        }
        t
    }
}

/// Live attribution collector, owned by the timing model's IRB unit
/// while attribution is enabled.
///
/// Events arrive pre-classified (the caller maps its ISA's opcode enum
/// to a class id); the collector charges each event to its class, its
/// PC, and the current loop region in lockstep so the three
/// decompositions can never drift apart.
#[derive(Debug, Clone, Default)]
pub struct AttributionCollector {
    classes: [AttrCounters; REUSE_CLASSES],
    by_pc: BTreeMap<u64, (u8, AttrCounters)>,
    by_loop: BTreeMap<u64, AttrCounters>,
    outside: AttrCounters,
    cur_loop: Option<u64>,
}

impl AttributionCollector {
    /// A fresh collector with no events and no current loop.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note a taken backward control transfer to `head`: the fetch
    /// stream is now (re-)entering the loop with that head PC.
    pub fn enter_loop(&mut self, head: u64) {
        self.cur_loop = Some(head);
    }

    fn charge(&mut self, class: usize, pc: u64, f: impl Fn(&mut AttrCounters)) {
        debug_assert!(class < REUSE_CLASSES);
        f(&mut self.classes[class]);
        let site = self
            .by_pc
            .entry(pc)
            .or_insert((class as u8, AttrCounters::default()));
        f(&mut site.1);
        match self.cur_loop {
            Some(head) => f(self.by_loop.entry(head).or_default()),
            None => f(&mut self.outside),
        }
    }

    /// Charge one granted IRB lookup.
    pub fn record_lookup(&mut self, class: usize, pc: u64) {
        self.charge(class, pc, |c| c.lookups += 1);
    }

    /// Charge one lookup hit (PC or victim).
    pub fn record_hit(&mut self, class: usize, pc: u64) {
        self.charge(class, pc, |c| c.hits += 1);
    }

    /// Charge one reuse-test outcome.
    pub fn record_test(&mut self, class: usize, pc: u64, passed: bool) {
        self.charge(class, pc, move |c| {
            if passed {
                c.passes += 1;
            } else {
                c.fails += 1;
            }
        });
    }

    /// The live per-class tallies, for windowed metrics snapshots.
    pub fn class_counters(&self) -> &[AttrCounters; REUSE_CLASSES] {
        &self.classes
    }

    /// Finalize into a [`ReuseAttribution`] with at most `top_k` named
    /// PCs and `top_k` named loops.
    ///
    /// Selection and ordering are deterministic: sites sort by hits
    /// (descending), then lookups (descending), then address
    /// (ascending), so equal-count ties always resolve the same way
    /// regardless of map iteration or thread count.
    pub fn finish(&self, top_k: usize) -> ReuseAttribution {
        let mut pcs: Vec<PcSite> = self
            .by_pc
            .iter()
            .map(|(&pc, &(class, counters))| PcSite {
                pc,
                class,
                counters,
            })
            .collect();
        pcs.sort_by(|a, b| {
            b.counters
                .hits
                .cmp(&a.counters.hits)
                .then(b.counters.lookups.cmp(&a.counters.lookups))
                .then(a.pc.cmp(&b.pc))
        });
        let mut folded_pcs = AttrCounters::default();
        for s in pcs.iter().skip(top_k) {
            folded_pcs.add(&s.counters);
        }
        pcs.truncate(top_k);

        let mut loops: Vec<LoopSite> = self
            .by_loop
            .iter()
            .map(|(&head, &counters)| LoopSite { head, counters })
            .collect();
        loops.sort_by(|a, b| {
            b.counters
                .hits
                .cmp(&a.counters.hits)
                .then(b.counters.lookups.cmp(&a.counters.lookups))
                .then(a.head.cmp(&b.head))
        });
        let mut folded_loops = AttrCounters::default();
        for l in loops.iter().skip(top_k) {
            folded_loops.add(&l.counters);
        }
        loops.truncate(top_k);

        ReuseAttribution {
            classes: self.classes,
            hot_pcs: pcs,
            folded_pcs,
            loops,
            folded_loops,
            outside: self.outside,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_decompositions_conserve() {
        let mut c = AttributionCollector::new();
        // Prologue, outside any loop.
        c.record_lookup(0, 0x100);
        c.record_hit(0, 0x100);
        c.record_test(0, 0x100, true);
        // Enter loop at 0x200, charge events across classes.
        c.enter_loop(0x200);
        for i in 0..10u64 {
            let pc = 0x200 + 8 * (i % 3);
            let class = (i % 3) as usize;
            c.record_lookup(class, pc);
            if i % 2 == 0 {
                c.record_hit(class, pc);
                c.record_test(class, pc, i % 4 == 0);
            }
        }
        // Inner loop at 0x180 (lower head).
        c.enter_loop(0x180);
        c.record_lookup(3, 0x188);
        c.record_hit(3, 0x188);

        let a = c.finish(2);
        let t = a.total();
        assert_eq!(t, a.pc_total());
        assert_eq!(t, a.loop_total());
        assert_eq!(t.lookups, 12);
        assert_eq!(t.hits, 7);
        assert_eq!(t.passes + t.fails, 6);
        // Top-K is capped.
        assert!(a.hot_pcs.len() <= 2 && a.loops.len() <= 2);
        assert!(!a.pc_total().is_zero());
    }

    #[test]
    fn top_k_ordering_is_deterministic() {
        let mut c = AttributionCollector::new();
        // Three PCs with equal hits: tie-break must pick lower PCs first.
        for pc in [0x300u64, 0x100, 0x200] {
            c.record_lookup(1, pc);
            c.record_hit(1, pc);
        }
        let a = c.finish(2);
        assert_eq!(a.hot_pcs.len(), 2);
        assert_eq!(a.hot_pcs[0].pc, 0x100);
        assert_eq!(a.hot_pcs[1].pc, 0x200);
        assert_eq!(a.folded_pcs.hits, 1);
        assert_eq!(a.total(), a.pc_total());
    }

    #[test]
    fn outside_bucket_collects_preloop_events() {
        let mut c = AttributionCollector::new();
        c.record_lookup(4, 0x40);
        c.enter_loop(0x10);
        c.record_lookup(4, 0x40);
        let a = c.finish(8);
        assert_eq!(a.outside.lookups, 1);
        assert_eq!(a.loops.len(), 1);
        assert_eq!(a.loops[0].head, 0x10);
        assert_eq!(a.loops[0].counters.lookups, 1);
    }
}
