//! Per-cycle port arbitration.

use crate::config::PortConfig;

/// Arbitrates the IRB's read/write/read-write ports within a cycle.
///
/// Call [`PortArbiter::begin_cycle`] once per simulated cycle, then
/// [`PortArbiter::try_read`]/[`PortArbiter::try_write`] for each access
/// the pipeline wants to make. Dedicated ports are consumed before the
/// shared read/write ports, which maximizes the number of grants.
///
/// # Examples
///
/// ```
/// use redsim_irb::{PortArbiter, PortConfig};
///
/// let mut arb = PortArbiter::new(PortConfig { read: 1, write: 0, read_write: 1 });
/// arb.begin_cycle();
/// assert!(arb.try_read());  // dedicated read port
/// assert!(arb.try_read());  // shared port
/// assert!(!arb.try_read()); // exhausted
/// assert!(!arb.try_write(), "shared port already spent on a read");
/// ```
#[derive(Debug, Clone)]
pub struct PortArbiter {
    config: PortConfig,
    reads_used: u32,
    writes_used: u32,
    rw_used: u32,
    denied_reads: u64,
    denied_writes: u64,
}

impl PortArbiter {
    /// Creates an arbiter for the given provisioning.
    #[must_use]
    pub fn new(config: PortConfig) -> Self {
        PortArbiter {
            config,
            reads_used: 0,
            writes_used: 0,
            rw_used: 0,
            denied_reads: 0,
            denied_writes: 0,
        }
    }

    /// Resets per-cycle usage. Call at the start of every cycle.
    pub fn begin_cycle(&mut self) {
        self.reads_used = 0;
        self.writes_used = 0;
        self.rw_used = 0;
    }

    /// Requests a read port for this cycle.
    pub fn try_read(&mut self) -> bool {
        if self.reads_used < self.config.read {
            self.reads_used += 1;
            true
        } else if self.rw_used < self.config.read_write {
            self.rw_used += 1;
            true
        } else {
            self.denied_reads += 1;
            false
        }
    }

    /// Requests a write port for this cycle.
    pub fn try_write(&mut self) -> bool {
        if self.writes_used < self.config.write {
            self.writes_used += 1;
            true
        } else if self.rw_used < self.config.read_write {
            self.rw_used += 1;
            true
        } else {
            self.denied_writes += 1;
            false
        }
    }

    /// Total read requests denied over the run (port contention).
    #[must_use]
    pub fn denied_reads(&self) -> u64 {
        self.denied_reads
    }

    /// Total write requests denied over the run.
    #[must_use]
    pub fn denied_writes(&self) -> u64 {
        self.denied_writes
    }

    /// The provisioning this arbiter enforces.
    #[must_use]
    pub fn config(&self) -> &PortConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_serves_six_reads_and_then_denies() {
        let mut a = PortArbiter::new(PortConfig::paper_baseline());
        a.begin_cycle();
        for _ in 0..6 {
            assert!(a.try_read());
        }
        assert!(!a.try_read());
        assert_eq!(a.denied_reads(), 1);
    }

    #[test]
    fn writes_and_reads_share_rw_ports() {
        let mut a = PortArbiter::new(PortConfig::paper_baseline());
        a.begin_cycle();
        // 4 dedicated reads + 2 rw consumed by reads.
        for _ in 0..6 {
            assert!(a.try_read());
        }
        // 2 dedicated writes remain; rw ports are gone.
        assert!(a.try_write());
        assert!(a.try_write());
        assert!(!a.try_write());
    }

    #[test]
    fn begin_cycle_replenishes() {
        let mut a = PortArbiter::new(PortConfig {
            read: 1,
            write: 1,
            read_write: 0,
        });
        a.begin_cycle();
        assert!(a.try_read());
        assert!(!a.try_read());
        a.begin_cycle();
        assert!(a.try_read());
        assert_eq!(a.denied_reads(), 1, "denial stats accumulate across cycles");
    }

    #[test]
    fn zero_ports_deny_everything() {
        let mut a = PortArbiter::new(PortConfig {
            read: 0,
            write: 0,
            read_write: 0,
        });
        a.begin_cycle();
        assert!(!a.try_read());
        assert!(!a.try_write());
    }

    /// Generative invariants over every port provisioning the paper's
    /// port-sensitivity figure sweeps (`fig_ports`), plus degenerate
    /// extremes: under random request streams,
    ///
    /// 1. per-cycle read grants never exceed `read + read_write` and
    ///    write grants never exceed `write + read_write`;
    /// 2. reads and writes together never oversubscribe the shared
    ///    ports: `(reads - read) + (writes - write)` grants beyond the
    ///    dedicated pools fit in `read_write`;
    /// 3. over the whole run, grants + denials == requests per kind
    ///    (the denial counters are cumulative and lossless).
    #[test]
    fn random_request_streams_respect_budgets_and_conserve_requests() {
        use redsim_util::Rng;

        let configs = [
            PortConfig {
                read: 1,
                write: 1,
                read_write: 0,
            },
            PortConfig {
                read: 2,
                write: 1,
                read_write: 0,
            },
            PortConfig {
                read: 2,
                write: 2,
                read_write: 0,
            },
            PortConfig::paper_baseline(),
            PortConfig {
                read: 8,
                write: 4,
                read_write: 0,
            },
            PortConfig {
                read: 64,
                write: 64,
                read_write: 64,
            },
            PortConfig {
                read: 0,
                write: 0,
                read_write: 0,
            },
            PortConfig {
                read: 0,
                write: 0,
                read_write: 3,
            },
        ];
        let mut rng = Rng::new(0x9e3779b97f4a7c15);
        for cfg in configs {
            let mut arb = PortArbiter::new(cfg);
            let (mut read_reqs, mut read_grants) = (0u64, 0u64);
            let (mut write_reqs, mut write_grants) = (0u64, 0u64);
            for _ in 0..500 {
                arb.begin_cycle();
                let (mut r_granted, mut w_granted) = (0u32, 0u32);
                // Up to 16 interleaved requests per cycle, biased so
                // saturation and starvation both occur.
                for _ in 0..(rng.next_u64() % 17) {
                    if rng.next_u64().is_multiple_of(2) {
                        read_reqs += 1;
                        if arb.try_read() {
                            read_grants += 1;
                            r_granted += 1;
                        }
                    } else {
                        write_reqs += 1;
                        if arb.try_write() {
                            write_grants += 1;
                            w_granted += 1;
                        }
                    }
                }
                assert!(
                    r_granted <= cfg.max_reads(),
                    "{cfg:?}: {r_granted} reads granted in one cycle"
                );
                assert!(
                    w_granted <= cfg.max_writes(),
                    "{cfg:?}: {w_granted} writes granted in one cycle"
                );
                let shared_spent =
                    r_granted.saturating_sub(cfg.read) + w_granted.saturating_sub(cfg.write);
                assert!(
                    shared_spent <= cfg.read_write,
                    "{cfg:?}: {shared_spent} shared-port grants exceed {}",
                    cfg.read_write
                );
            }
            assert_eq!(
                read_grants + arb.denied_reads(),
                read_reqs,
                "{cfg:?}: read requests leak"
            );
            assert_eq!(
                write_grants + arb.denied_writes(),
                write_reqs,
                "{cfg:?}: write requests leak"
            );
        }
    }
}
