//! The reuse-buffer storage array.

use crate::config::{IrbConfig, ReusePolicy};

/// One IRB entry: a PC's most recent execution.
///
/// Operand and result values are raw 64-bit patterns (fp values travel
/// as `f64` bits). For instructions with an immediate second operand the
/// immediate is stored in `op2` — it is constant per static instruction,
/// so it always matches, exactly as in hardware where the immediate is
/// part of the instruction word rather than the reuse test.
///
/// The layout is locked to exactly half a cache line (`repr(C,
/// align(32))`, 32 bytes): the payload lane of the storage array packs
/// two entries per line and an entry never straddles a line boundary,
/// so the hit path's payload read touches exactly one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(C, align(32))]
pub struct IrbEntry {
    /// The static instruction's address (the tag).
    pub pc: u64,
    /// First operand value at the buffered execution.
    pub op1: u64,
    /// Second operand value at the buffered execution.
    pub op2: u64,
    /// The buffered result (for memory operations, the effective
    /// address; for branches, the encoded outcome).
    pub result: u64,
}

// Build-time locks on the packed layout (see DESIGN.md §12): growing a
// field breaks the two-entries-per-line packing at compile time, not in
// a benchmark three PRs later.
const _: () = assert!(std::mem::size_of::<IrbEntry>() == 32);
const _: () = assert!(std::mem::align_of::<IrbEntry>() == 32);

/// Register names an entry depends on, for name-based reuse.
///
/// Encoded as `index` for integer registers and `32 + index` for fp
/// registers; `None` when the operand slot is unused or immediate.
pub type OperandNames = [Option<u8>; 2];

/// `names` lane encoding of an unused operand slot. Real names are
/// register indices below 64, so the sentinel can never match one.
const NO_NAME: u8 = 0xff;

fn pack_names(names: OperandNames) -> [u8; 2] {
    [names[0].unwrap_or(NO_NAME), names[1].unwrap_or(NO_NAME)]
}

/// The slot storage, split structure-of-arrays so each access pattern
/// touches only the lane it needs:
///
/// - `tags` — `(pc << 1) | 1` when valid, `0` when invalid. A lookup
///   probe scans this lane only: eight tags per cache line, so a whole
///   8-way set (or a 1024-entry direct-mapped probe) costs one line.
/// - `entries` — the 32-byte payload, read only on a tag match.
/// - `names`/`lru` — touched only by name invalidation and replacement.
#[derive(Debug, Clone)]
struct SlotArray {
    tags: Vec<u64>,
    entries: Vec<IrbEntry>,
    names: Vec<[u8; 2]>,
    lru: Vec<u64>,
}

impl SlotArray {
    fn new(n: usize) -> Self {
        SlotArray {
            tags: vec![0; n],
            entries: vec![IrbEntry::default(); n],
            names: vec![[NO_NAME; 2]; n],
            lru: vec![0; n],
        }
    }

    fn len(&self) -> usize {
        self.tags.len()
    }

    fn is_valid(&self, i: usize) -> bool {
        self.tags[i] & 1 != 0
    }

    /// Valid slot holding `pc`? One branchless tag compare.
    fn matches(&self, i: usize, pc: u64) -> bool {
        self.tags[i] == (pc << 1) | 1
    }

    fn pc(&self, i: usize) -> u64 {
        self.tags[i] >> 1
    }

    fn set(&mut self, i: usize, entry: IrbEntry, names: [u8; 2], lru: u64) {
        self.tags[i] = (entry.pc << 1) | 1;
        self.entries[i] = entry;
        self.names[i] = names;
        self.lru[i] = lru;
    }

    fn invalidate(&mut self, i: usize) {
        self.tags[i] = 0;
    }

    /// Moves slot `j` of `other` into slot `i` here (all lanes),
    /// writing `i`'s previous contents back to `j` — the victim-buffer
    /// promotion swap.
    fn swap_with(&mut self, i: usize, other: &mut SlotArray, j: usize) {
        std::mem::swap(&mut self.tags[i], &mut other.tags[j]);
        std::mem::swap(&mut self.entries[i], &mut other.entries[j]);
        std::mem::swap(&mut self.names[i], &mut other.names[j]);
        std::mem::swap(&mut self.lru[i], &mut other.lru[j]);
    }

    fn clear(&mut self) {
        self.tags.fill(0);
        self.entries.fill(IrbEntry::default());
        self.names.fill([NO_NAME; 2]);
        self.lru.fill(0);
    }
}

/// Occupancy and traffic statistics for a [`ReuseBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrbStats {
    /// PC lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching PC in the main array.
    pub pc_hits: u64,
    /// Lookups that missed the main array but hit the victim buffer.
    pub victim_hits: u64,
    /// Entries written.
    pub inserts: u64,
    /// Valid entries displaced by an insert with a *different* PC
    /// (conflict pressure on the direct-mapped array).
    pub conflict_evictions: u64,
    /// Entries invalidated by name-based register overwrites.
    pub invalidations: u64,
}

impl IrbStats {
    /// PC hit rate over all lookups (victim hits count as hits).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.pc_hits + self.victim_hits) as f64 / self.lookups as f64
        }
    }
}

/// The IRB storage: a set-associative main array plus an optional
/// fully-associative victim buffer.
///
/// # Examples
///
/// ```
/// use redsim_irb::{IrbConfig, IrbEntry, ReuseBuffer};
///
/// let mut irb = ReuseBuffer::new(IrbConfig::paper_baseline());
/// irb.insert(IrbEntry { pc: 0x1000, op1: 1, op2: 2, result: 3 });
/// assert_eq!(irb.lookup(0x1000).unwrap().result, 3);
/// assert!((irb.stats().hit_rate() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseBuffer {
    config: IrbConfig,
    slots: SlotArray,
    victim: SlotArray,
    stats: IrbStats,
    tick: u64,
    /// `num_sets() - 1`, cached at construction: `set_of` runs on every
    /// lookup and insert, and re-deriving (and re-validating) the set
    /// count there dominated the access cost.
    set_mask: usize,
}

impl ReuseBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`IrbConfig::validate`]).
    #[must_use]
    pub fn new(config: IrbConfig) -> Self {
        config.validate();
        let set_mask = config.num_sets() - 1;
        ReuseBuffer {
            slots: SlotArray::new(config.entries),
            victim: SlotArray::new(config.victim_entries),
            config,
            stats: IrbStats::default(),
            tick: 0,
            set_mask,
        }
    }

    /// The buffer's configuration.
    #[must_use]
    pub fn config(&self) -> &IrbConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &IrbStats {
        &self.stats
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 3) as usize) & self.set_mask
    }

    /// Looks up `pc`, returning the buffered execution on a PC hit.
    ///
    /// A victim-buffer hit promotes the entry back into the main array
    /// (swapping with the displaced main-array occupant).
    pub fn lookup(&mut self, pc: u64) -> Option<IrbEntry> {
        self.tick += 1;
        self.stats.lookups += 1;
        let assoc = self.config.assoc;
        let base = self.set_of(pc) * assoc;
        // The way scan reads only the tag lane — the whole set's tags
        // share a cache line; the 32-byte payload is read on a hit only.
        for way in 0..assoc {
            if self.slots.matches(base + way, pc) {
                self.slots.lru[base + way] = self.tick;
                self.stats.pc_hits += 1;
                return Some(self.slots.entries[base + way]);
            }
        }
        // Victim probe: a linear sweep of the victim tag lane.
        let tag = (pc << 1) | 1;
        if let Some(vi) = self.victim.tags.iter().position(|&t| t == tag) {
            self.stats.victim_hits += 1;
            // Swap with the main-array victim for this set.
            let victim_way = self.choose_victim(base, assoc);
            self.slots
                .swap_with(base + victim_way, &mut self.victim, vi);
            self.slots.lru[base + victim_way] = self.tick;
            return Some(self.slots.entries[base + victim_way]);
        }
        None
    }

    fn choose_victim(&self, base: usize, assoc: usize) -> usize {
        (0..assoc)
            .find(|&w| !self.slots.is_valid(base + w))
            .unwrap_or_else(|| {
                (0..assoc)
                    .min_by_key(|&w| self.slots.lru[base + w])
                    .expect("assoc >= 1")
            })
    }

    /// Inserts or refreshes the execution for `entry.pc`.
    pub fn insert(&mut self, entry: IrbEntry) {
        self.insert_named(entry, [None, None]);
    }

    /// Inserts with operand register names recorded (name-based reuse).
    pub fn insert_named(&mut self, entry: IrbEntry, names: OperandNames) {
        self.tick += 1;
        self.stats.inserts += 1;
        let packed = pack_names(names);
        let assoc = self.config.assoc;
        let base = self.set_of(entry.pc) * assoc;
        // Refresh in place on a PC match.
        for way in 0..assoc {
            if self.slots.matches(base + way, entry.pc) {
                self.slots.set(base + way, entry, packed, self.tick);
                return;
            }
        }
        let way = self.choose_victim(base, assoc);
        if self.slots.is_valid(base + way) && self.slots.pc(base + way) != entry.pc {
            self.stats.conflict_evictions += 1;
            // Spill into the victim buffer (LRU there as well).
            if self.victim.len() > 0 {
                let vi = self
                    .victim
                    .tags
                    .iter()
                    .position(|&t| t & 1 == 0)
                    .unwrap_or_else(|| {
                        self.victim
                            .lru
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &lru)| lru)
                            .map(|(i, _)| i)
                            .expect("victim_entries > 0")
                    });
                self.victim.tags[vi] = self.slots.tags[base + way];
                self.victim.entries[vi] = self.slots.entries[base + way];
                self.victim.names[vi] = self.slots.names[base + way];
                self.victim.lru[vi] = self.slots.lru[base + way];
            }
        }
        self.slots.set(base + way, entry, packed, self.tick);
    }

    /// Name-based invalidation: drops every entry that names `reg` as a
    /// source. Call on every committed register write when the policy is
    /// [`ReusePolicy::Name`]; a no-op under value-based reuse.
    pub fn invalidate_name(&mut self, reg: u8) {
        if self.config.policy != ReusePolicy::Name {
            return;
        }
        // Real names are < 64, so the NO_NAME sentinel never matches
        // and invalid slots (tag bit clear) are skipped explicitly.
        for arr in [&mut self.slots, &mut self.victim] {
            for i in 0..arr.len() {
                if arr.is_valid(i) && (arr.names[i][0] == reg || arr.names[i][1] == reg) {
                    arr.invalidate(i);
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Total addressable slots (main array only), for fault injection.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Size of one packed tag-lane element in bytes, for the capacity
    /// model: a 64-byte line holds `64 / tag_bytes()` tags.
    #[must_use]
    pub fn tag_bytes() -> usize {
        std::mem::size_of::<u64>()
    }

    /// PC of the valid entry occupying `slot`, if any — lets the fault
    /// layer attribute a strike to the instruction whose buffered
    /// result it corrupted.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn slot_pc(&self, slot: usize) -> Option<u64> {
        assert!(slot < self.slots.len(), "slot {slot} out of range");
        self.slots.is_valid(slot).then(|| self.slots.pc(slot))
    }

    /// Flips one bit of the buffered *result* in slot `slot`, modelling a
    /// particle strike on the (unprotected) IRB array. Returns `true` if
    /// the slot held a valid entry.
    ///
    /// The paper argues (§3.4) that the IRB needs no dedicated
    /// protection: a corrupted reused result still gets compared against
    /// the primary stream's ALU execution at commit.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn inject_fault(&mut self, slot: usize, bit: u32) -> bool {
        assert!(slot < self.slots.len(), "fault slot {slot} out of range");
        if self.slots.is_valid(slot) {
            self.slots.entries[slot].result ^= 1 << (bit % 64);
            true
        } else {
            false
        }
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.victim.clear();
        self.stats = IrbStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PortConfig;

    fn cfg(entries: usize, assoc: usize, victim: usize) -> IrbConfig {
        IrbConfig {
            entries,
            assoc,
            victim_entries: victim,
            ports: PortConfig::paper_baseline(),
            lookup_stages: 3,
            policy: ReusePolicy::Value,
        }
    }

    #[test]
    fn miss_insert_hit() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 0));
        assert!(b.lookup(0x1000).is_none());
        b.insert(IrbEntry {
            pc: 0x1000,
            op1: 7,
            op2: 8,
            result: 15,
        });
        let e = b.lookup(0x1000).unwrap();
        assert_eq!((e.op1, e.op2, e.result), (7, 8, 15));
        assert_eq!(b.stats().lookups, 2);
        assert_eq!(b.stats().pc_hits, 1);
    }

    #[test]
    fn insert_refreshes_in_place() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 0));
        b.insert(IrbEntry {
            pc: 0x1000,
            op1: 1,
            op2: 1,
            result: 2,
        });
        b.insert(IrbEntry {
            pc: 0x1000,
            op1: 2,
            op2: 2,
            result: 4,
        });
        assert_eq!(b.lookup(0x1000).unwrap().result, 4);
        assert_eq!(
            b.stats().conflict_evictions,
            0,
            "same-pc refresh is not a conflict"
        );
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 0));
        // Two PCs in the same set: stride = sets * 8 bytes = 128.
        let (p1, p2) = (0x1000, 0x1000 + 128);
        b.insert(IrbEntry {
            pc: p1,
            op1: 0,
            op2: 0,
            result: 1,
        });
        b.insert(IrbEntry {
            pc: p2,
            op1: 0,
            op2: 0,
            result: 2,
        });
        assert!(b.lookup(p1).is_none(), "p1 was evicted by p2");
        assert_eq!(b.lookup(p2).unwrap().result, 2);
        assert_eq!(b.stats().conflict_evictions, 1);
    }

    #[test]
    fn two_way_associativity_absorbs_the_same_conflict() {
        let mut b = ReuseBuffer::new(cfg(16, 2, 0));
        let sets = 8;
        let (p1, p2) = (0x1000, 0x1000 + sets * 8);
        b.insert(IrbEntry {
            pc: p1,
            op1: 0,
            op2: 0,
            result: 1,
        });
        b.insert(IrbEntry {
            pc: p2,
            op1: 0,
            op2: 0,
            result: 2,
        });
        assert!(b.lookup(p1).is_some());
        assert!(b.lookup(p2).is_some());
    }

    #[test]
    fn victim_buffer_catches_conflict_evictions() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 4));
        let (p1, p2) = (0x1000, 0x1000 + 128);
        b.insert(IrbEntry {
            pc: p1,
            op1: 0,
            op2: 0,
            result: 1,
        });
        b.insert(IrbEntry {
            pc: p2,
            op1: 0,
            op2: 0,
            result: 2,
        });
        // p1 now lives in the victim buffer.
        let e = b.lookup(p1).expect("victim hit");
        assert_eq!(e.result, 1);
        assert_eq!(b.stats().victim_hits, 1);
        // Promotion swapped p2 out to the victim buffer; both remain findable.
        assert_eq!(b.lookup(p2).unwrap().result, 2);
    }

    #[test]
    fn name_based_invalidation_drops_dependents() {
        let mut b = ReuseBuffer::new(IrbConfig {
            policy: ReusePolicy::Name,
            ..cfg(16, 1, 0)
        });
        b.insert_named(
            IrbEntry {
                pc: 0x1000,
                op1: 5,
                op2: 6,
                result: 11,
            },
            [Some(3), Some(4)],
        );
        b.insert_named(
            IrbEntry {
                pc: 0x1008,
                op1: 9,
                op2: 0,
                result: 9,
            },
            [Some(7), None],
        );
        b.invalidate_name(4);
        assert!(b.lookup(0x1000).is_none(), "entry naming r4 must die");
        assert!(b.lookup(0x1008).is_some());
        assert_eq!(b.stats().invalidations, 1);
    }

    #[test]
    fn value_policy_ignores_invalidation() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 0));
        b.insert_named(
            IrbEntry {
                pc: 0x1000,
                op1: 5,
                op2: 6,
                result: 11,
            },
            [Some(3), None],
        );
        b.invalidate_name(3);
        assert!(b.lookup(0x1000).is_some());
    }

    #[test]
    fn fault_injection_flips_result_bit() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 0));
        b.insert(IrbEntry {
            pc: 0x1000,
            op1: 0,
            op2: 0,
            result: 0b100,
        });
        let slot = ((0x1000u64 >> 3) as usize) & 15;
        assert!(b.inject_fault(slot, 0));
        assert_eq!(b.lookup(0x1000).unwrap().result, 0b101);
        // Invalid slot reports false.
        let empty = (slot + 1) % 16;
        assert!(!b.inject_fault(empty, 0));
    }

    #[test]
    fn hit_rate_counts_victim_hits() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 4));
        b.insert(IrbEntry {
            pc: 0x1000,
            op1: 0,
            op2: 0,
            result: 1,
        });
        b.insert(IrbEntry {
            pc: 0x1000 + 128,
            op1: 0,
            op2: 0,
            result: 2,
        });
        b.lookup(0x1000); // victim hit
        b.lookup(0x9999_9999 & !7); // miss
        assert!((b.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn packed_layout_is_locked() {
        // The same facts the `const` asserts lock at build time, stated
        // where a failing run names them: the payload is half a cache
        // line and the tag lane packs eight probes per line.
        assert_eq!(std::mem::size_of::<IrbEntry>(), 32);
        assert_eq!(std::mem::align_of::<IrbEntry>(), 32);
        assert_eq!(ReuseBuffer::tag_bytes(), 8);
        assert_eq!(64 / ReuseBuffer::tag_bytes(), 8, "tags per 64-byte line");
        // The packed names lane must round-trip the public encoding.
        assert_eq!(pack_names([Some(2), None]), [2, NO_NAME]);
        assert_eq!(pack_names([None, Some(63)]), [NO_NAME, 63]);
    }

    #[test]
    fn tags_distinguish_odd_probe_from_valid_entry() {
        // The tag is (pc << 1) | 1, so bit 0 of a stored PC survives
        // and an invalid slot (tag 0) can never match any probe.
        let mut b = ReuseBuffer::new(cfg(16, 1, 0));
        assert!(b.lookup(0).is_none(), "pc 0 must not match empty slots");
        b.insert(IrbEntry {
            pc: 0,
            op1: 1,
            op2: 2,
            result: 3,
        });
        assert_eq!(b.lookup(0).unwrap().result, 3, "pc 0 is a real tag");
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = ReuseBuffer::new(cfg(16, 1, 2));
        b.insert(IrbEntry {
            pc: 0x1000,
            op1: 0,
            op2: 0,
            result: 1,
        });
        b.reset();
        assert!(b.lookup(0x1000).is_none());
        assert_eq!(b.stats().inserts, 0);
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests (the deterministic successors of the
    //! former proptest module): each case draws its inputs from a
    //! fixed-seed [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use crate::config::PortConfig;
    use redsim_util::Rng;

    fn arb_entry(rng: &mut Rng) -> IrbEntry {
        IrbEntry {
            pc: rng.below(1 << 20) & !7,
            op1: rng.next_u64(),
            op2: rng.next_u64(),
            result: rng.next_u64(),
        }
    }

    /// After inserting an entry, looking its PC up immediately returns
    /// exactly that entry, for any organization.
    #[test]
    fn insert_then_lookup_returns_entry() {
        let mut rng = Rng::new(0x1_1B0);
        for _ in 0..64 {
            let e = arb_entry(&mut rng);
            let assoc = *rng.pick(&[1usize, 2, 4]);
            let victim = rng.index(4);
            let mut b = ReuseBuffer::new(IrbConfig {
                entries: 64,
                assoc,
                victim_entries: victim,
                ports: PortConfig::paper_baseline(),
                lookup_stages: 3,
                policy: ReusePolicy::Value,
            });
            b.insert(e);
            assert_eq!(b.lookup(e.pc), Some(e), "assoc={assoc} victim={victim}");
        }
    }

    /// A returned entry always carries the queried PC, and stats stay
    /// consistent under arbitrary workloads.
    #[test]
    fn lookup_never_returns_wrong_pc() {
        let mut rng = Rng::new(0x1_1B1);
        for _ in 0..64 {
            let entries: Vec<IrbEntry> = (0..rng.range_u64(1, 100))
                .map(|_| arb_entry(&mut rng))
                .collect();
            let probes: Vec<u64> = (0..rng.range_u64(1, 100))
                .map(|_| rng.below(1 << 20))
                .collect();
            let mut b = ReuseBuffer::new(IrbConfig {
                entries: 32,
                assoc: 1,
                victim_entries: 4,
                ports: PortConfig::paper_baseline(),
                lookup_stages: 3,
                policy: ReusePolicy::Value,
            });
            for e in &entries {
                b.insert(*e);
            }
            for p in &probes {
                let pc = p & !7;
                if let Some(e) = b.lookup(pc) {
                    assert_eq!(e.pc, pc);
                }
            }
            let s = *b.stats();
            assert_eq!(s.inserts, entries.len() as u64);
            assert!(s.pc_hits + s.victim_hits <= s.lookups);
        }
    }
}
