//! IRB configuration.

/// How the reuse test decides that a buffered result is still valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReusePolicy {
    /// Value-based reuse (the paper's evaluated scheme): the entry
    /// stores operand *values* and the reuse test compares them against
    /// the operands forwarded from the primary stream.
    Value,
    /// Name-based reuse (§3.3): the entry stores operand register
    /// *names*; writing a source register invalidates dependent entries,
    /// and a valid entry passes the reuse test without a value compare.
    /// Cheaper for non-data-capture schedulers, lower hit rate.
    Name,
}

/// Port provisioning for the IRB (§3.2 of the paper).
///
/// Reads are consumed by duplicate-stream lookups; writes by commit-time
/// updates; read/write ports can serve either, arbitrated per cycle by
/// [`PortArbiter`](crate::PortArbiter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortConfig {
    /// Dedicated read ports.
    pub read: u32,
    /// Dedicated write ports.
    pub write: u32,
    /// Shared read/write ports.
    pub read_write: u32,
}

impl PortConfig {
    /// The paper's allocation: 4 read + 2 write + 2 read/write.
    #[must_use]
    pub fn paper_baseline() -> Self {
        PortConfig {
            read: 4,
            write: 2,
            read_write: 2,
        }
    }

    /// Effectively unlimited ports, for idealized studies.
    #[must_use]
    pub fn unlimited() -> Self {
        PortConfig {
            read: u32::MAX / 2,
            write: u32::MAX / 2,
            read_write: 0,
        }
    }

    /// Maximum reads serviceable in one cycle.
    #[must_use]
    pub fn max_reads(&self) -> u32 {
        self.read + self.read_write
    }

    /// Maximum writes serviceable in one cycle.
    #[must_use]
    pub fn max_writes(&self) -> u32 {
        self.write + self.read_write
    }
}

/// Full IRB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrbConfig {
    /// Total entries in the main array (power of two).
    pub entries: usize,
    /// Ways per set (1 = direct-mapped, the paper's choice).
    pub assoc: usize,
    /// Fully-associative victim-buffer entries (0 disables it). The
    /// victim buffer is the conflict-miss-reduction mechanism of §3.1.
    pub victim_entries: usize,
    /// Port provisioning.
    pub ports: PortConfig,
    /// Pipelined lookup latency in cycles (paper: 3, from Cacti 3.2 at
    /// 180 nm / 2 GHz).
    pub lookup_stages: u32,
    /// Reuse-test policy.
    pub policy: ReusePolicy,
}

impl IrbConfig {
    /// The paper's suggested configuration: 1024-entry direct-mapped,
    /// 4R/2W/2RW ports, 3-stage pipelined lookup, value-based reuse.
    #[must_use]
    pub fn paper_baseline() -> Self {
        IrbConfig {
            entries: 1024,
            assoc: 1,
            victim_entries: 0,
            ports: PortConfig::paper_baseline(),
            lookup_stages: 3,
            policy: ReusePolicy::Value,
        }
    }

    /// Baseline plus a 16-entry victim buffer (the conflict-miss
    /// mechanism evaluated in the reproduction's Fig. E).
    #[must_use]
    pub fn paper_baseline_with_victim() -> Self {
        IrbConfig {
            victim_entries: 16,
            ..Self::paper_baseline()
        }
    }

    /// Checks invariants.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `assoc` is zero or
    /// does not divide `entries`, or the resulting set count is not a
    /// power of two.
    pub fn validate(&self) {
        assert!(
            self.entries.is_power_of_two() && self.entries > 0,
            "IRB entries {} must be a power of two",
            self.entries
        );
        assert!(self.assoc >= 1, "IRB associativity must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.assoc),
            "IRB entries {} not divisible by associativity {}",
            self.entries,
            self.assoc
        );
        let sets = self.entries / self.assoc;
        assert!(
            sets.is_power_of_two(),
            "IRB set count {sets} must be a power of two"
        );
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics on an invalid geometry (see [`IrbConfig::validate`]).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.validate();
        self.entries / self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_section_3_2() {
        let c = IrbConfig::paper_baseline();
        assert_eq!(c.entries, 1024);
        assert_eq!(c.assoc, 1);
        assert_eq!(c.lookup_stages, 3);
        assert_eq!(c.ports.read, 4);
        assert_eq!(c.ports.write, 2);
        assert_eq!(c.ports.read_write, 2);
        assert_eq!(c.ports.max_reads(), 6);
        assert_eq!(c.ports.max_writes(), 4);
        assert_eq!(c.policy, ReusePolicy::Value);
        c.validate();
    }

    #[test]
    fn victim_variant_only_adds_victim_entries() {
        let base = IrbConfig::paper_baseline();
        let v = IrbConfig::paper_baseline_with_victim();
        assert_eq!(v.victim_entries, 16);
        assert_eq!(
            IrbConfig {
                victim_entries: 0,
                ..v
            },
            base
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_panic() {
        IrbConfig {
            entries: 1000,
            ..IrbConfig::paper_baseline()
        }
        .validate();
    }

    #[test]
    fn num_sets_accounts_for_associativity() {
        let c = IrbConfig {
            entries: 1024,
            assoc: 4,
            ..IrbConfig::paper_baseline()
        };
        assert_eq!(c.num_sets(), 256);
    }
}
