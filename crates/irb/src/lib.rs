#![warn(missing_docs)]

//! # redsim-irb
//!
//! The Instruction Reuse Buffer (IRB) of the DIE-IRB design (Parashar,
//! Gurumurthi & Sivasubramaniam, ISCA 2004, §3).
//!
//! The IRB is a PC-indexed table of `(pc, operand1, operand2, result)`
//! tuples. In the paper's design the *duplicate* instruction stream of a
//! dual-instruction-execution (DIE) core looks its PC up in parallel with
//! fetch; on a PC hit, the entry's operands ride along to the issue
//! window, where a *reuse test* compares them against the operands
//! forwarded from the primary stream. A passing test lets the duplicate
//! skip the functional units entirely — amplifying effective ALU
//! bandwidth without growing the issue width or adding forwarding buses.
//!
//! This crate models the structure itself:
//!
//! * [`ReuseBuffer`] — direct-mapped or set-associative storage with an
//!   optional victim buffer (the paper's conflict-miss-reduction
//!   mechanism), plus hit/insert/conflict statistics.
//! * [`PortArbiter`] — the paper's explicit port provisioning (4 read,
//!   2 write, 2 read/write at baseline) with per-cycle arbitration.
//! * [`IrbConfig`] — declarative configuration with
//!   [`IrbConfig::paper_baseline`] matching §3.2 (1024-entry
//!   direct-mapped, 3-stage pipelined lookup).
//! * [`attribution`] — reuse-attribution accounting (opcode class ×
//!   PC × loop structure) with exact conservation against the aggregate
//!   counters, so the hit rate can be decomposed into *where* the reuse
//!   comes from.
//! * [`ReusePolicy`] — value-based reuse (the paper's evaluated scheme)
//!   or name-based reuse (§3.3's sketch for non-data-capture
//!   schedulers), where entries are invalidated when a source register
//!   is overwritten rather than compared by value.
//!
//! The *timing* integration (the 3-stage lookup pipeline racing
//! fetch/dispatch, and the `Rdy2L/Rdy2R` issue-window reuse test) lives
//! in `redsim-core`; this crate supplies the state and the port model.
//!
//! # Examples
//!
//! ```
//! use redsim_irb::{IrbConfig, IrbEntry, ReuseBuffer};
//!
//! let mut irb = ReuseBuffer::new(IrbConfig::paper_baseline());
//! irb.insert(IrbEntry { pc: 0x1000, op1: 2, op2: 3, result: 5 });
//! let e = irb.lookup(0x1000).expect("pc hit");
//! assert_eq!(e.result, 5);
//! assert!(irb.lookup(0x1008).is_none());
//! ```

pub mod attribution;
mod buffer;
mod config;
mod ports;

pub use attribution::{
    AttrCounters, AttributionCollector, LoopSite, PcSite, ReuseAttribution, REUSE_CLASSES,
    REUSE_CLASS_NAMES,
};
pub use buffer::{IrbEntry, IrbStats, ReuseBuffer};
pub use config::{IrbConfig, PortConfig, ReusePolicy};
pub use ports::PortArbiter;
