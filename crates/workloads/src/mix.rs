//! Instruction-mix characterization, for validating that each stand-in
//! kernel has the texture it claims.

use std::fmt;

use redsim_isa::emu::Emulator;
use redsim_isa::{EmuError, OpClass, Program};

/// Dynamic instruction mix of a program run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstMix {
    /// Total committed instructions.
    pub total: u64,
    /// Single-cycle integer ALU operations.
    pub int_alu: u64,
    /// Integer multiplies/divides.
    pub int_muldiv: u64,
    /// Floating-point operations.
    pub fp: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Unconditional/indirect jumps.
    pub jumps: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
}

impl InstMix {
    /// Profiles `program` by running it functionally for up to
    /// `budget` instructions.
    ///
    /// # Errors
    ///
    /// Propagates emulation faults, including budget exhaustion.
    pub fn from_program(program: &Program, budget: u64) -> Result<InstMix, EmuError> {
        let mut emu = Emulator::new(program);
        let mut mix = InstMix::default();
        while !emu.halted() {
            if mix.total >= budget {
                return Err(EmuError::BudgetExhausted {
                    executed: mix.total,
                });
            }
            let Some(di) = emu.step()? else { break };
            mix.total += 1;
            match di.class() {
                OpClass::IntAlu | OpClass::Sys => mix.int_alu += 1,
                OpClass::IntMul | OpClass::IntDiv => mix.int_muldiv += 1,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => {
                    mix.fp += 1;
                }
                OpClass::Load => mix.loads += 1,
                OpClass::Store => mix.stores += 1,
                OpClass::Branch => {
                    mix.branches += 1;
                    if di.redirects() {
                        mix.taken_branches += 1;
                    }
                }
                OpClass::Jump => mix.jumps += 1,
            }
        }
        Ok(mix)
    }

    fn frac(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }

    /// Fraction of instructions that are loads.
    #[must_use]
    pub fn load_fraction(&self) -> f64 {
        self.frac(self.loads)
    }

    /// Fraction of instructions that are stores.
    #[must_use]
    pub fn store_fraction(&self) -> f64 {
        self.frac(self.stores)
    }

    /// Fraction of instructions that are floating point.
    #[must_use]
    pub fn fp_fraction(&self) -> f64 {
        self.frac(self.fp)
    }

    /// Fraction of instructions that are conditional branches.
    #[must_use]
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.branches)
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for InstMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts: {:.0}% alu, {:.0}% muldiv, {:.0}% fp, {:.0}% ld, {:.0}% st, {:.0}% br ({:.0}% taken), {:.0}% jmp",
            self.total,
            100.0 * self.frac(self.int_alu),
            100.0 * self.frac(self.int_muldiv),
            100.0 * self.fp_fraction(),
            100.0 * self.load_fraction(),
            100.0 * self.store_fraction(),
            100.0 * self.branch_fraction(),
            100.0 * self.taken_rate(),
            100.0 * self.frac(self.jumps),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, Workload};
    use redsim_isa::asm::assemble;

    #[test]
    fn mix_counts_sum_to_total() {
        let p = Workload::Gzip.program(Params::new(1, 3)).unwrap();
        let m = InstMix::from_program(&p, 20_000_000).unwrap();
        let sum = m.int_alu + m.int_muldiv + m.fp + m.loads + m.stores + m.branches + m.jumps;
        assert_eq!(sum, m.total);
    }

    #[test]
    fn fp_kernels_have_fp_work_and_int_kernels_do_not() {
        for w in Workload::ALL {
            let p = w.program(w.tiny_params()).unwrap();
            let m = InstMix::from_program(&p, 20_000_000).unwrap();
            if w.is_fp() {
                assert!(
                    m.fp_fraction() > 0.10,
                    "{w}: fp fraction {}",
                    m.fp_fraction()
                );
            } else {
                assert!(
                    m.fp_fraction() < 0.02,
                    "{w}: fp fraction {}",
                    m.fp_fraction()
                );
            }
        }
    }

    #[test]
    fn mcf_is_load_heavy() {
        let w = Workload::Mcf;
        let p = w.program(w.tiny_params()).unwrap();
        let m = InstMix::from_program(&p, 20_000_000).unwrap();
        assert!(m.load_fraction() > 0.20, "mcf loads: {}", m.load_fraction());
    }

    #[test]
    fn gcc_and_parser_are_branchy() {
        for w in [Workload::Gcc, Workload::Parser] {
            let p = w.program(w.tiny_params()).unwrap();
            let m = InstMix::from_program(&p, 20_000_000).unwrap();
            assert!(
                m.branch_fraction() > 0.12,
                "{w} branches: {}",
                m.branch_fraction()
            );
        }
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        let p = assemble("main: li a0, 1\n halt\n").unwrap();
        let m = InstMix::from_program(&p, 100).unwrap();
        let s = m.to_string();
        assert!(s.contains("2 insts"), "{s}");
    }

    #[test]
    fn budget_exhaustion_propagates() {
        let p = assemble("spin: j spin\n").unwrap();
        assert!(InstMix::from_program(&p, 50).is_err());
    }
}
