#![warn(missing_docs)]

//! # redsim-workloads
//!
//! Twelve kernel programs, written in the redsim ISA, standing in for
//! the SPEC CPU2000 applications of the DIE-IRB paper's evaluation.
//!
//! SPEC sources and a cross-compiler are unavailable in this
//! reproduction, so each kernel is a hand-written program that models
//! the *qualitative* behaviour the paper's experiments depend on:
//! instruction mix, branch behaviour, memory locality, dependence-chain
//! ILP and — critically for an instruction-reuse study — organic value
//! locality. Nothing about reuse is dialled in: IRB hit rates emerge
//! from the operand values the kernels actually produce.
//!
//! | Workload | Models | Character |
//! |----------|--------|-----------|
//! | [`Workload::Gzip`]    | 164.gzip    | LZ77 hashing/matching, int |
//! | [`Workload::Vpr`]     | 175.vpr     | annealing placement swaps |
//! | [`Workload::Gcc`]     | 176.gcc     | BST + hash-table walks, branchy |
//! | [`Workload::Mcf`]     | 181.mcf     | pointer chasing, memory bound |
//! | [`Workload::Parser`]  | 197.parser  | dictionary string matching |
//! | [`Workload::Vortex`]  | 255.vortex  | record-store transactions |
//! | [`Workload::Bzip2`]   | 256.bzip2   | block sort + move-to-front |
//! | [`Workload::Twolf`]   | 300.twolf   | annealing with quadratic cost |
//! | [`Workload::Wupwise`] | 168.wupwise | dense complex mat-vec, fp |
//! | [`Workload::Art`]     | 179.art     | neural-net F1 layer, streaming fp |
//! | [`Workload::Equake`]  | 183.equake  | sparse mat-vec, indexed fp |
//! | [`Workload::Ammp`]    | 188.ammp    | pairwise forces, fdiv/fsqrt |
//!
//! Every kernel ends by `puti`-ing a checksum, so functional correctness
//! is checkable against the emulator, and every kernel is fully
//! deterministic given [`Params::seed`].
//!
//! # Examples
//!
//! ```
//! use redsim_isa::emu::Emulator;
//! use redsim_workloads::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Workload::Mcf;
//! let program = w.program(w.tiny_params())?;
//! let mut emu = Emulator::new(&program);
//! emu.run(10_000_000)?;
//! assert!(!emu.output_ints().is_empty(), "kernels emit a checksum");
//! # Ok(())
//! # }
//! ```

mod gen;
mod kernels;
pub mod mix;

use redsim_isa::asm::assemble;
use redsim_isa::trace::DynInst;
use redsim_isa::{AsmError, Program};

/// A workload instance that failed to materialize. Either outcome is a
/// bug in a kernel generator (the suite assembles and halts every
/// kernel), but harnesses must surface it as a structured per-job error
/// instead of tearing down a whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The generated kernel source failed to assemble.
    Build {
        /// The workload's short name.
        workload: &'static str,
        /// The assembler's message.
        message: String,
    },
    /// Functional execution failed (bad memory access, budget
    /// exhausted before `halt`).
    Run {
        /// The workload's short name.
        workload: &'static str,
        /// The emulator's message.
        message: String,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Build { workload, message } => {
                write!(f, "workload {workload} failed to assemble: {message}")
            }
            WorkloadError::Run { workload, message } => {
                write!(f, "workload {workload} failed to execute: {message}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Problem-size and seeding knobs for a workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    /// Problem-size multiplier; each workload maps it onto its own
    /// natural dimensions (buffer bytes, node counts, trip counts).
    pub scale: u32,
    /// Seed for deterministic input generation.
    pub seed: u64,
}

impl Params {
    /// Creates parameters.
    #[must_use]
    pub fn new(scale: u32, seed: u64) -> Self {
        Params { scale, seed }
    }
}

/// The twelve SPEC CPU2000 stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 164.gzip — LZ77-style compression.
    Gzip,
    /// 175.vpr — simulated-annealing placement.
    Vpr,
    /// 176.gcc — tree/hash symbol processing.
    Gcc,
    /// 181.mcf — network-simplex pointer chasing.
    Mcf,
    /// 197.parser — dictionary string matching.
    Parser,
    /// 255.vortex — object/record store.
    Vortex,
    /// 256.bzip2 — block sorting compression.
    Bzip2,
    /// 300.twolf — place-and-route annealing.
    Twolf,
    /// 168.wupwise — dense complex linear algebra.
    Wupwise,
    /// 179.art — adaptive-resonance neural net.
    Art,
    /// 183.equake — sparse matrix-vector earthquake model.
    Equake,
    /// 188.ammp — molecular dynamics.
    Ammp,
}

impl Workload {
    /// All workloads, integer suite first, in the order reports use.
    pub const ALL: [Workload; 12] = [
        Workload::Gzip,
        Workload::Vpr,
        Workload::Gcc,
        Workload::Mcf,
        Workload::Parser,
        Workload::Vortex,
        Workload::Bzip2,
        Workload::Twolf,
        Workload::Wupwise,
        Workload::Art,
        Workload::Equake,
        Workload::Ammp,
    ];

    /// The SPEC-style short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Gzip => "gzip",
            Workload::Vpr => "vpr",
            Workload::Gcc => "gcc",
            Workload::Mcf => "mcf",
            Workload::Parser => "parser",
            Workload::Vortex => "vortex",
            Workload::Bzip2 => "bzip2",
            Workload::Twolf => "twolf",
            Workload::Wupwise => "wupwise",
            Workload::Art => "art",
            Workload::Equake => "equake",
            Workload::Ammp => "ammp",
        }
    }

    /// Looks a workload up by its short name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Workload::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// `true` for the floating-point-suite stand-ins.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            Workload::Wupwise | Workload::Art | Workload::Equake | Workload::Ammp
        )
    }

    /// Generates the kernel's assembly source for the given parameters.
    #[must_use]
    pub fn source(self, params: Params) -> String {
        match self {
            Workload::Gzip => kernels::gzip(&params),
            Workload::Vpr => kernels::vpr(&params),
            Workload::Gcc => kernels::gcc(&params),
            Workload::Mcf => kernels::mcf(&params),
            Workload::Parser => kernels::parser(&params),
            Workload::Vortex => kernels::vortex(&params),
            Workload::Bzip2 => kernels::bzip2(&params),
            Workload::Twolf => kernels::twolf(&params),
            Workload::Wupwise => kernels::wupwise(&params),
            Workload::Art => kernels::art(&params),
            Workload::Equake => kernels::equake(&params),
            Workload::Ammp => kernels::ammp(&params),
        }
    }

    /// Assembles the kernel into a runnable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the assembler error if the generated source is invalid
    /// (a bug in this crate — the test suite assembles every kernel).
    pub fn program(self, params: Params) -> Result<Program, AsmError> {
        assemble(&self.source(params))
    }

    /// Materializes the kernel's committed-path trace: assembles the
    /// generated source and runs the functional emulator to `halt`
    /// within `budget` instructions.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when assembly or functional execution fails —
    /// a structured error harnesses can attach to the affected jobs
    /// instead of panicking.
    pub fn trace(self, params: Params, budget: u64) -> Result<Vec<DynInst>, WorkloadError> {
        let program = self.program(params).map_err(|e| WorkloadError::Build {
            workload: self.name(),
            message: e.to_string(),
        })?;
        let mut emu = redsim_isa::emu::Emulator::new(&program);
        emu.run_trace(budget).map_err(|e| WorkloadError::Run {
            workload: self.name(),
            message: e.to_string(),
        })
    }

    /// A sub-second instance for unit tests (~tens of thousands of
    /// dynamic instructions).
    #[must_use]
    pub fn tiny_params(self) -> Params {
        Params::new(1, 0xC0FFEE)
    }

    /// The instance the figure-regeneration harness runs. Scales are
    /// balanced so every workload executes roughly 400–800 thousand
    /// dynamic instructions.
    #[must_use]
    pub fn default_params(self) -> Params {
        let scale = match self {
            Workload::Gzip => 12,
            Workload::Vpr => 7,
            Workload::Gcc => 6,
            Workload::Mcf => 4,
            Workload::Parser => 3,
            Workload::Vortex => 18,
            Workload::Bzip2 => 1,
            Workload::Twolf => 8,
            Workload::Wupwise => 2,
            Workload::Art => 1,
            Workload::Equake => 1,
            Workload::Ammp => 3,
        };
        Params::new(scale, 0xC0FFEE)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_isa::emu::Emulator;

    #[test]
    fn every_workload_assembles_at_tiny_scale() {
        for w in Workload::ALL {
            let r = w.program(w.tiny_params());
            assert!(r.is_ok(), "{w}: {:?}", r.err());
        }
    }

    #[test]
    fn every_workload_runs_to_halt_and_emits_a_checksum() {
        for w in Workload::ALL {
            let p = w.program(w.tiny_params()).expect("assemble");
            let mut emu = Emulator::new(&p);
            let n = emu
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("{w} failed: {e}"));
            assert!(n > 1_000, "{w} too small: {n} instructions");
            assert!(!emu.output_ints().is_empty(), "{w} must emit a checksum");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in [Workload::Gzip, Workload::Art, Workload::Mcf] {
            let p = w.program(w.tiny_params()).unwrap();
            let run = || {
                let mut e = Emulator::new(&p);
                e.run(20_000_000).unwrap();
                e.output_ints()
            };
            assert_eq!(run(), run(), "{w}");
        }
    }

    #[test]
    fn different_seeds_change_the_inputs() {
        let w = Workload::Gzip;
        let a = w.source(Params::new(1, 1));
        let b = w.source(Params::new(1, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn scale_grows_the_run() {
        let w = Workload::Vortex;
        let run_len = |scale| {
            let p = w.program(Params::new(scale, 7)).unwrap();
            let mut e = Emulator::new(&p);
            e.run(50_000_000).unwrap()
        };
        assert!(run_len(2) > run_len(1));
    }

    #[test]
    fn trace_reports_structured_errors() {
        let w = Workload::Gzip;
        let t = w.trace(w.tiny_params(), 20_000_000).expect("trace builds");
        assert!(!t.is_empty());
        let err = w.trace(w.tiny_params(), 10).expect_err("budget too small");
        assert!(
            matches!(
                err,
                WorkloadError::Run {
                    workload: "gzip",
                    ..
                }
            ),
            "unexpected error: {err:?}"
        );
        assert!(err.to_string().contains("gzip"));
    }

    #[test]
    fn names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("nonesuch"), None);
    }

    #[test]
    fn fp_suite_is_the_last_four() {
        let fp: Vec<bool> = Workload::ALL.iter().map(|w| w.is_fp()).collect();
        assert_eq!(
            fp,
            [false, false, false, false, false, false, false, false, true, true, true, true]
        );
    }
}
