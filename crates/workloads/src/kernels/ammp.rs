//! `ammp` stand-in: molecular-dynamics pairwise energy over a neighbor
//! list. The energy accumulation is a *serial* floating-point dependence
//! chain (each pair's softening term depends on the accumulated energy),
//! so the kernel is latency-bound with the functional units mostly idle —
//! the profile that makes 188.ammp nearly insensitive to DIE's extra ALU
//! load (its loss in the paper's Figure 2 is ~1%).

use crate::gen::{doubles_block, words_block, Splitmix};
use crate::Params;

const ATOMS: usize = 128;

pub(crate) fn ammp(p: &Params) -> String {
    let steps = 14 * p.scale as usize;
    let pairs_n = 400;
    let mut rng = Splitmix::new(p.seed ^ 0x616d_6d70);
    let pos: Vec<f64> = (0..ATOMS * 3)
        .map(|_| rng.unit_f64() * 10.0 + 0.5)
        .collect();
    let mut pairs: Vec<i64> = Vec::with_capacity(pairs_n * 2);
    for _ in 0..pairs_n {
        let a = rng.below(ATOMS as u64) as i64;
        let mut b = rng.below(ATOMS as u64) as i64;
        if a == b {
            b = (b + 1) % ATOMS as i64;
        }
        pairs.push(a);
        pairs.push(b);
    }

    format!(
        r#"# ammp stand-in: serial pairwise-energy chain (latency bound)
        .data
{pos_block}
{pairs_block}
        .text
main:
        la   s0, pos
        la   s1, pairs
        li   s3, {steps}
        li   t0, 0
        fcvt.d.l f15, t0        # e = 0.0
        li   t0, 1
        fcvt.d.l f8, t0         # 1.0
        li   t0, 65536
        fcvt.d.l f14, t0
        fdiv.d f14, f8, f14     # tiny = 2^-16 (softening coupling)
step:
        li   s4, 0              # pair index
        la   s1, pairs
        li   s6, 24
pair:
        slli t1, s4, 4
        add  t1, s1, t1
        ld   t2, 0(t1)          # atom a
        ld   t3, 8(t1)          # atom b
        mul  a0, t2, s6
        add  a0, s0, a0         # &pos[a]
        mul  a1, t3, s6
        add  a1, s0, a1         # &pos[b]
        fld  f0, 0(a0)
        fld  f1, 0(a1)
        fsub.d f0, f0, f1
        fabs.d f0, f0           # |dx|
        fld  f1, 8(a0)
        fld  f2, 8(a1)
        fsub.d f1, f1, f2
        fabs.d f1, f1           # |dy|
        fld  f2, 16(a0)
        fld  f3, 16(a1)
        fsub.d f2, f2, f3
        fabs.d f2, f2           # |dz|
        fadd.d f3, f0, f1
        fadd.d f3, f3, f2       # manhattan distance
        # serial softening: every pair's term depends on the running
        # energy through ~14 cycles of fp latency, so the kernel is
        # latency-bound and the functional units sit mostly idle
        fmul.d f10, f15, f14    # e * tiny       (4 cycles)
        fmul.d f10, f10, f14    # .. * tiny      (4 cycles)
        fadd.d f11, f3, f10     # + distance     (2 cycles)
        fadd.d f11, f11, f8     # + 1.0          (2 cycles)
        fadd.d f15, f15, f11    # e += term      (2 cycles)
        # every 16th pair: a real sqrt joins the chain
        andi t0, s4, 15
        bnez t0, nosqrt
        fsqrt.d f12, f11
        fadd.d f15, f15, f12
nosqrt:
        addi s4, s4, 1
        li   t0, {pairs_n}
        blt  s4, t0, pair
        # drift the first atom a little so steps differ
        fld  f0, 0(s0)
        fmul.d f1, f15, f14
        fmul.d f1, f1, f14
        fadd.d f0, f0, f1
        fsd  f0, 0(s0)
        addi s3, s3, -1
        bnez s3, step
        li   t0, 1000
        fcvt.d.l f1, t0
        fmul.d f0, f15, f14     # scale e down by 2^-16
        fmul.d f0, f0, f1       # and report with 3 digits of precision
        fcvt.l.d a0, f0
        puti a0
        halt
"#,
        pos_block = doubles_block("pos", &pos),
        pairs_block = words_block("pairs", &pairs),
        steps = steps,
        pairs_n = pairs_n,
    )
}
