//! `bzip2` stand-in: block sorting (insertion sort per block) followed
//! by a move-to-front pass — compare/swap control flow and byte
//! shuffling.

use crate::gen::{bytes_block, compressible_bytes, Splitmix};
use crate::Params;

const BLOCK: usize = 32;

pub(crate) fn bzip2(p: &Params) -> String {
    let n = 1024 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x627a_6970);
    let data = compressible_bytes(&mut rng, n);

    format!(
        r#"# bzip2 stand-in: per-block insertion sort + move-to-front
        .data
{data_block}
        .align 8
mtf:
        .space 256
        .text
main:
        la   s0, data
        li   s1, {n}
        li   s3, 0              # checksum

        # ---- phase 1: insertion-sort each {block}-byte block ----
        li   s4, 0              # block base
sortblk:
        li   t0, 1              # i
inner:
        add  t1, s0, s4
        add  t1, t1, t0
        lbu  t2, 0(t1)          # key = d[base+i]
        mv   t3, t0             # j
shift:
        beqz t3, insert
        addi t4, t3, -1
        add  t5, s0, s4
        add  t5, t5, t4
        lbu  t6, 0(t5)          # d[base+j-1]
        ble  t6, t2, insert
        sb   t6, 1(t5)          # shift right
        mv   t3, t4
        j    shift
insert:
        add  t5, s0, s4
        add  t5, t5, t3
        sb   t2, 0(t5)
        addi t0, t0, 1
        li   t6, {block}
        blt  t0, t6, inner
        addi s4, s4, {block}
        blt  s4, s1, sortblk

        # ---- phase 2: move-to-front over the sorted data ----
        la   s5, mtf
        li   t0, 0
mtfinit:
        add  t1, s5, t0
        sb   t0, 0(t1)
        addi t0, t0, 1
        li   t2, 256
        blt  t0, t2, mtfinit
        li   s4, 0              # position
mtfloop:
        add  t0, s0, s4
        lbu  a0, 0(t0)          # symbol
        call mtfrank            # a0 <- rank, table updated
        add  s3, s3, a0         # checksum accumulates ranks
        addi s4, s4, 1
        blt  s4, s1, mtfloop
        puti s3
        halt

# a0 = symbol; returns its move-to-front rank and rotates it to front
mtfrank:
        addi sp, sp, -16
        sd   ra, 8(sp)
        sd   s0, 0(sp)
        la   s0, mtf
        mv   t1, a0
        # find the rank (linear scan of the mtf table)
        li   t2, 0
find:
        add  t3, s0, t2
        lbu  t4, 0(t3)
        beq  t4, t1, movefront
        addi t2, t2, 1
        j    find
movefront:
        mv   a0, t2
        # shift table[0..rank) right by one, put symbol at front
shiftdn:
        beqz t2, front
        addi t5, t2, -1
        add  t6, s0, t5
        lbu  t0, 0(t6)
        sb   t0, 1(t6)
        mv   t2, t5
        j    shiftdn
front:
        sb   t1, 0(s0)
        ld   s0, 0(sp)
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
        data_block = bytes_block("data", &data),
        n = n,
        block = BLOCK,
    )
}
