//! `equake` stand-in: sparse matrix–vector products in CSR form —
//! indexed fp loads through a column-index array, like the stiffness
//! matrix sweeps of 183.equake.

use crate::gen::{doubles_block, words_block, Splitmix};
use crate::Params;

const ROWS: usize = 256;
const NNZ_PER_ROW: usize = 6;

pub(crate) fn equake(p: &Params) -> String {
    let sweeps = 30 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x0065_716b);
    let mut colidx: Vec<i64> = Vec::with_capacity(ROWS * NNZ_PER_ROW);
    let mut vals: Vec<f64> = Vec::with_capacity(ROWS * NNZ_PER_ROW);
    for row in 0..ROWS {
        for k in 0..NNZ_PER_ROW {
            // A banded-ish sparsity pattern with some scatter.
            let col = if k == 0 {
                row as i64
            } else {
                rng.below(ROWS as u64) as i64
            };
            colidx.push(col);
            vals.push((rng.unit_f64() - 0.5) * 0.3);
        }
    }
    let x: Vec<f64> = (0..ROWS).map(|_| rng.unit_f64()).collect();

    format!(
        r#"# equake stand-in: CSR sparse mat-vec sweeps, y = K*x
        .data
{col_block}
{val_block}
{x_block}
yvec:
        .space {y_bytes}
        .text
main:
        la   s0, colidx
        la   s1, vals
        la   s2, xvec
        la   s3, yvec
        li   s4, {sweeps}
        li   t0, 0
        fcvt.d.l f9, t0         # 0.0
        li   t0, 1
        fcvt.d.l f8, t0         # 1.0
        li   t0, 2
        fcvt.d.l f7, t0
        fdiv.d f6, f8, f7       # 0.5
sweep:
        li   s5, 0              # row
row:
        fmov.d f0, f9           # acc
        li   t0, {nnz}
        mul  t1, s5, t0
        li   s6, 0              # k within row
nz:
        add  t2, t1, s6
        slli t3, t2, 3
        add  t4, s0, t3
        ld   t5, 0(t4)          # col = colidx[base+k]
        add  t6, s1, t3
        fld  f1, 0(t6)          # vals[base+k]
        slli t5, t5, 3
        add  t5, s2, t5
        fld  f2, 0(t5)          # x[col] (indexed load)
        fmul.d f3, f1, f2
        fadd.d f0, f0, f3
        addi s6, s6, 1
        li   t0, {nnz}
        blt  s6, t0, nz
        slli t3, s5, 3
        add  t4, s3, t3
        fsd  f0, 0(t4)
        addi s5, s5, 1
        li   t0, {rows}
        blt  s5, t0, row
        # x[i] = 0.5*y[i] + 0.5  (bounded fixed-point-ish iteration)
        li   s5, 0
relax:
        slli t3, s5, 3
        add  t4, s3, t3
        fld  f0, 0(t4)
        fmul.d f0, f0, f6
        fadd.d f0, f0, f6
        add  t5, s2, t3
        fsd  f0, 0(t5)
        addi s5, s5, 1
        li   t0, {rows}
        blt  s5, t0, relax
        addi s4, s4, -1
        bnez s4, sweep
        fld  f0, 0(s2)
        li   t0, 1000000
        fcvt.d.l f1, t0
        fmul.d f0, f0, f1
        fcvt.l.d a0, f0
        puti a0
        halt
"#,
        col_block = words_block("colidx", &colidx),
        val_block = doubles_block("vals", &vals),
        x_block = doubles_block("xvec", &x),
        y_bytes = ROWS * 8,
        sweeps = sweeps,
        nnz = NNZ_PER_ROW,
        rows = ROWS,
    )
}
