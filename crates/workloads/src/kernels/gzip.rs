//! `gzip` stand-in: LZ77-style hashing, match finding and token
//! emission over a compressible byte stream.

use crate::gen::{bytes_block, compressible_bytes, Splitmix};
use crate::Params;

const HASH_ENTRIES: usize = 1024;

pub(crate) fn gzip(p: &Params) -> String {
    let n = 2048 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x677a_6970);
    let input = compressible_bytes(&mut rng, n);
    let out_bytes = n * 3 + 64;
    let limit = n - 16;

    format!(
        r#"# gzip stand-in: LZ77 hash-chain compression kernel
        .data
{input_block}
        .align 8
hashtab:
        .space {hash_bytes}
out:
        .space {out_bytes}
        .text
main:
        la   s0, input
        la   s1, hashtab
        la   s2, out
        li   s3, 0              # pos
        li   s4, {limit}        # scan limit
        li   s5, 0              # checksum
        li   s6, 0              # token index
scan:
        bge  s3, s4, done
        add  t0, s0, s3
        mv   a0, t0
        call hash3              # a0 <- hash of in[pos..pos+3]
        lbu  t1, 0(t0)          # in[pos]
        slli t5, a0, 3
        add  t5, s1, t5
        ld   t6, 0(t5)          # candidate position
        sd   s3, 0(t5)          # head of hash chain <- pos
        beqz t6, literal
        bge  t6, s3, literal
        # measure the match length (capped at 16)
        add  a0, s0, t6
        mv   a1, t0
        li   a2, 0
mloop:
        lbu  a3, 0(a0)
        lbu  a4, 0(a1)
        bne  a3, a4, mdone
        addi a0, a0, 1
        addi a1, a1, 1
        addi a2, a2, 1
        li   a5, 16
        blt  a2, a5, mloop
mdone:
        li   a5, 3
        blt  a2, a5, literal
        # emit a (distance, length) token
        sub  a6, s3, t6
        slli a7, a2, 16
        add  a6, a6, a7
        add  s5, s5, a6
        slli a7, s6, 3
        add  a7, s2, a7
        sd   a6, 0(a7)
        addi s6, s6, 1
        add  s3, s3, a2
        j    scan
literal:
        add  s5, s5, t1
        addi s3, s3, 1
        j    scan
done:
        puti s5
        puti s6
        halt

# a0 = pointer to three bytes; returns their hash in a0
hash3:
        addi sp, sp, -16
        sd   ra, 8(sp)
        sd   s0, 0(sp)
        mv   s0, a0
        lbu  t1, 0(s0)
        lbu  t2, 1(s0)
        lbu  t3, 2(s0)
        slli t2, t2, 3
        slli t3, t3, 6
        xor  a0, t1, t2
        xor  a0, a0, t3
        andi a0, a0, {hash_mask}
        ld   s0, 0(sp)
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
        input_block = bytes_block("input", &input),
        hash_bytes = HASH_ENTRIES * 8,
        out_bytes = out_bytes,
        limit = limit,
        hash_mask = HASH_ENTRIES - 1,
    )
}
