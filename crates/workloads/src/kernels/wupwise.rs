//! `wupwise` stand-in: dense complex matrix–vector products (the BiCGStab
//! heart of wupwise) — regular fp multiply/add streams with high ILP.

use crate::gen::{doubles_block, Splitmix};
use crate::Params;

const M: usize = 24;

pub(crate) fn wupwise(p: &Params) -> String {
    let sweeps = 24 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x7775_7077);
    // Complex matrix stored interleaved (re, im), row-major, and a
    // complex vector likewise.
    let a: Vec<f64> = (0..M * M * 2).map(|_| rng.unit_f64() - 0.5).collect();
    let x: Vec<f64> = (0..M * 2).map(|_| rng.unit_f64() - 0.5).collect();

    format!(
        r#"# wupwise stand-in: repeated complex mat-vec z = A*x
        .data
{a_block}
{x_block}
zvec:
        .space {z_bytes}
        .text
main:
        la   s0, amat
        la   s1, xvec
        la   s2, zvec
        li   s3, {sweeps}
        li   t0, 0
        fcvt.d.l f9, t0         # 0.0
        li   t0, 1
        fcvt.d.l f10, t0
        li   t0, 2
        fcvt.d.l f11, t0
        fdiv.d f10, f10, f11    # 0.5 (damping factor)
sweep:
        li   s4, 0              # row i
row:
        fmov.d f0, f9           # z_re = 0
        fmov.d f1, f9           # z_im = 0
        li   s5, 0              # col k
        # row base = (i*M) * 16 bytes
        li   t0, {m}
        mul  t1, s4, t0
        slli t1, t1, 4
        add  t1, s0, t1         # &A[i][0]
col:
        slli t2, s5, 4
        add  t3, t1, t2
        fld  f2, 0(t3)          # a_re
        fld  f3, 8(t3)          # a_im
        add  t4, s1, t2
        fld  f4, 0(t4)          # x_re
        fld  f5, 8(t4)          # x_im
        # complex multiply-accumulate
        fmul.d f6, f2, f4
        fmul.d f7, f3, f5
        fsub.d f6, f6, f7
        fadd.d f0, f0, f6       # z_re += a_re*x_re - a_im*x_im
        fmul.d f6, f2, f5
        fmul.d f7, f3, f4
        fadd.d f6, f6, f7
        fadd.d f1, f1, f6       # z_im += a_re*x_im + a_im*x_re
        addi s5, s5, 1
        li   t0, {m}
        blt  s5, t0, col
        slli t5, s4, 4
        add  t6, s2, t5
        fsd  f0, 0(t6)
        fsd  f1, 8(t6)
        addi s4, s4, 1
        li   t0, {m}
        blt  s4, t0, row
        # x = 0.5 * z  (keeps values bounded and the iteration alive)
        li   s4, 0
mix:
        slli t5, s4, 4
        add  t6, s2, t5
        fld  f2, 0(t6)
        fld  f3, 8(t6)
        fmul.d f2, f2, f10
        fmul.d f3, f3, f10
        add  t4, s1, t5
        fsd  f2, 0(t4)
        fsd  f3, 8(t4)
        addi s4, s4, 1
        li   t0, {m}
        blt  s4, t0, mix
        addi s3, s3, -1
        bnez s3, sweep
        # checksum: scaled first element of x
        fld  f2, 0(s1)
        li   t0, 1000000
        fcvt.d.l f4, t0
        fmul.d f2, f2, f4
        fcvt.l.d a0, f2
        puti a0
        halt
"#,
        a_block = doubles_block("amat", &a),
        x_block = doubles_block("xvec", &x),
        z_bytes = M * 16,
        sweeps = sweeps,
        m = M,
    )
}
