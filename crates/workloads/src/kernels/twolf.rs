//! `twolf` stand-in: place-and-route annealing with a quadratic cost
//! (integer multiplies) and a congestion grid consulted per move.

use crate::gen::{words_block, Splitmix};
use crate::Params;

const GRID: i64 = 32;

pub(crate) fn twolf(p: &Params) -> String {
    let cells = 256;
    let moves = 700 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x7477_6f6c);
    let xs: Vec<i64> = (0..cells).map(|_| rng.below(GRID as u64) as i64).collect();
    let ys: Vec<i64> = (0..cells).map(|_| rng.below(GRID as u64) as i64).collect();
    let occupancy: Vec<i64> = (0..GRID * GRID).map(|_| rng.below(4) as i64).collect();

    format!(
        r#"# twolf stand-in: annealing with quadratic wirelength + congestion
        .data
{xs_block}
{ys_block}
{occ_block}
        .text
main:
        la   s0, xs
        la   s1, ys
        la   s2, occ
        li   s3, {moves}
        li   s5, 0              # checksum
        li   s6, {lcg_seed}
move:
        call lcgnext
        andi t1, a0, {cell_mask}    # cell c
        call lcgnext
        srli t2, a0, 2
        andi t2, t2, {grid_mask}    # proposed x
        call lcgnext
        srli t3, a0, 2
        andi t3, t3, {grid_mask}    # proposed y
        # current position
        slli t4, t1, 3
        add  t5, s0, t4
        ld   a0, 0(t5)          # x[c]
        add  t6, s1, t4
        ld   a1, 0(t6)          # y[c]
        # quadratic displacement cost
        sub  a2, a0, t2
        mul  a2, a2, a2
        sub  a3, a1, t3
        mul  a3, a3, a3
        add  a2, a2, a3
        # congestion at the destination
        slli a4, t3, 5          # y * GRID
        add  a4, a4, t2
        slli a4, a4, 3
        add  a4, s2, a4
        ld   a5, 0(a4)          # occ[y][x]
        slli a6, a5, 4
        add  a2, a2, a6         # total cost
        li   a7, 600
        bge  a2, a7, reject
        # accept: move the cell, adjust occupancy
        sd   t2, 0(t5)
        sd   t3, 0(t6)
        addi a5, a5, 1
        sd   a5, 0(a4)
        # release the old site
        slli a6, a1, 5
        add  a6, a6, a0
        slli a6, a6, 3
        add  a6, s2, a6
        ld   a5, 0(a6)
        addi a5, a5, -1
        sd   a5, 0(a6)
        add  s5, s5, a2
        j    next
reject:
        addi s5, s5, 1
next:
        addi s3, s3, -1
        bnez s3, move
        puti s5
        halt

# advances the LCG in s6, returns the next draw in a0
lcgnext:
        addi sp, sp, -16
        sd   ra, 8(sp)
        li   t0, 1103515245
        mul  s6, s6, t0
        addi s6, s6, 12345
        srli a0, s6, 16
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
        xs_block = words_block("xs", &xs),
        ys_block = words_block("ys", &ys),
        occ_block = words_block("occ", &occupancy),
        moves = moves,
        lcg_seed = (p.seed as u32 as i64 | 1).min(i32::MAX as i64),
        cell_mask = cells - 1,
        grid_mask = GRID - 1,
    )
}
