//! The kernel generators, one module per SPEC CPU2000 stand-in.
//!
//! Each generator returns complete assembly source: a `.data` section
//! with deterministic, seed-derived inputs, and a `.text` section with
//! the kernel. Problem dimensions scale linearly with
//! [`Params::scale`](crate::Params).

mod ammp;
mod art;
mod bzip2;
mod equake;
mod gcc;
mod gzip;
mod mcf;
mod parser;
mod twolf;
mod vortex;
mod vpr;
mod wupwise;

pub(crate) use ammp::ammp;
pub(crate) use art::art;
pub(crate) use bzip2::bzip2;
pub(crate) use equake::equake;
pub(crate) use gcc::gcc;
pub(crate) use gzip::gzip;
pub(crate) use mcf::mcf;
pub(crate) use parser::parser;
pub(crate) use twolf::twolf;
pub(crate) use vortex::vortex;
pub(crate) use vpr::vpr;
pub(crate) use wupwise::wupwise;
