//! `vortex` stand-in: an in-memory record store processing a
//! transaction stream — field reads/updates, record copies, and an
//! index maintained on the side.

use crate::gen::{words_block, Splitmix};
use crate::Params;

const FIELDS: usize = 4;

pub(crate) fn vortex(p: &Params) -> String {
    let records = 1024;
    let txns = 600 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x766f_7274);
    let store: Vec<i64> = (0..records * FIELDS)
        .map(|_| rng.below(100_000) as i64)
        .collect();
    let index: Vec<i64> = (0..records).map(|i| i as i64).collect();

    format!(
        r#"# vortex stand-in: record-store transactions over {records} records
        .data
{store_block}
{index_block}
        .text
main:
        la   s0, store
        la   s1, index
        li   s2, {txns}
        li   s3, 0              # checksum
        li   s4, {lcg_seed}
txn:
        li   t0, 1103515245
        mul  s4, s4, t0
        addi s4, s4, 12345
        srli t1, s4, 16
        andi t1, t1, {rec_mask}     # record id r
        mv   a0, t1
        call dorec              # a0 <- field digest, t3/t4 index info
        add  s3, s3, a0
        # every 8th txn: rotate the index entry with its successor
        andi a6, t1, 7
        bnez a6, skip
        addi a7, t1, 1
        andi a7, a7, {rec_mask}
        slli a7, a7, 3
        add  a7, s1, a7
        ld   a6, 0(a7)
        sd   t4, 0(a7)
        sd   a6, 0(t3)
skip:
        addi s2, s2, -1
        bnez s2, txn
        puti s3
        halt

# a0 = record id; runs one read-modify-write transaction, returns the
# field digest in a0; leaves &index[r] in t3 and the slot in t4
dorec:
        addi sp, sp, -16
        sd   ra, 8(sp)
        sd   s0, 0(sp)
        la   s0, store
        la   t6, index
        # indirect through the index
        slli t2, a0, 3
        add  t3, t6, t2
        ld   t4, 0(t3)          # slot = index[r]
        slli t5, t4, 5          # slot * 32 bytes
        add  t5, s0, t5         # record base
        # read all fields, compute an update
        ld   a1, 0(t5)
        ld   a2, 8(t5)
        ld   a3, 16(t5)
        ld   a4, 24(t5)
        add  a5, a1, a2
        sub  a6, a3, a4
        add  a0, a5, a6
        # write back two fields
        addi a1, a1, 1
        sd   a1, 0(t5)
        sd   a5, 24(t5)
        ld   s0, 0(sp)
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
        store_block = words_block("store", &store),
        index_block = words_block("index", &index),
        txns = txns,
        lcg_seed = (p.seed as u32 as i64 | 1).min(i32::MAX as i64),
        rec_mask = records - 1,
    )
}
