//! `vpr` stand-in: simulated-annealing placement — random cell swaps,
//! incremental wirelength deltas, temperature-gated acceptance.

use crate::gen::{words_block, Splitmix};
use crate::Params;

pub(crate) fn vpr(p: &Params) -> String {
    let cells = 512;
    let moves = 800 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x0076_7072);
    let grid = 64i64;
    let xs: Vec<i64> = (0..cells).map(|_| rng.below(grid as u64) as i64).collect();
    let ys: Vec<i64> = (0..cells).map(|_| rng.below(grid as u64) as i64).collect();

    format!(
        r#"# vpr stand-in: annealing placement over a {cells}-cell chain net
        .data
{xs_block}
{ys_block}
        .text
main:
        la   s0, xs
        la   s1, ys
        li   s2, {moves}
        li   s3, 0              # accepted-move checksum
        li   s4, {lcg_seed}
        li   s5, 4096           # temperature (decays)
anneal:
        # pick two cells a, b
        call lcgnext
        andi t1, a0, {cell_mask}    # a
        call lcgnext
        andi t2, a0, {cell_mask}    # b
        # cost of cell i against its chain neighbour i+1 (wraps via mask)
        # old cost: c(a) + c(b)
        addi a0, t1, 1
        andi a0, a0, {cell_mask}
        slli t3, t1, 3
        slli t4, a0, 3
        add  a1, s0, t3
        ld   a2, 0(a1)          # x[a]
        add  a1, s0, t4
        ld   a3, 0(a1)          # x[a+1]
        sub  a4, a2, a3
        bgez a4, xposa
        sub  a4, zero, a4
xposa:
        add  a1, s1, t3
        ld   a5, 0(a1)          # y[a]
        add  a1, s1, t4
        ld   a6, 0(a1)          # y[a+1]
        sub  a7, a5, a6
        bgez a7, yposa
        sub  a7, zero, a7
yposa:
        add  t5, a4, a7         # old partial cost around a
        # swap positions of a and b
        slli t4, t2, 3
        add  a1, s0, t4
        ld   a3, 0(a1)          # x[b]
        sd   a2, 0(a1)          # x[b] <- x[a]
        add  a1, s0, t3
        sd   a3, 0(a1)          # x[a] <- x[b]
        add  a1, s1, t4
        ld   a6, 0(a1)          # y[b]
        sd   a5, 0(a1)
        add  a1, s1, t3
        sd   a6, 0(a1)
        # new cost around a (same neighbour)
        addi a0, t1, 1
        andi a0, a0, {cell_mask}
        slli a0, a0, 3
        add  a1, s0, a0
        ld   a2, 0(a1)
        sub  a4, a3, a2
        bgez a4, xposb
        sub  a4, zero, a4
xposb:
        add  a1, s1, a0
        ld   a2, 0(a1)
        sub  a7, a6, a2
        bgez a7, yposb
        sub  a7, zero, a7
yposb:
        add  t6, a4, a7         # new partial cost around a
        sub  t6, t6, t5         # delta
        blt  t6, s5, accept     # accept if delta under temperature
        # reject: swap back
        slli t4, t2, 3
        add  a1, s0, t3
        ld   a2, 0(a1)
        add  a0, s0, t4
        ld   a3, 0(a0)
        sd   a2, 0(a0)
        sd   a3, 0(a1)
        add  a1, s1, t3
        ld   a2, 0(a1)
        add  a0, s1, t4
        ld   a3, 0(a0)
        sd   a2, 0(a0)
        sd   a3, 0(a1)
        j    cool
accept:
        addi s3, s3, 1
        add  s3, s3, t6
cool:
        srli t0, s5, 10         # temperature decay every move
        sub  s5, s5, t0
        addi s2, s2, -1
        bnez s2, anneal
        puti s3
        halt

# advances the LCG in s4, returns the next draw in a0
lcgnext:
        addi sp, sp, -16
        sd   ra, 8(sp)
        li   t0, 1103515245
        mul  s4, s4, t0
        addi s4, s4, 12345
        srli a0, s4, 16
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
        xs_block = words_block("xs", &xs),
        ys_block = words_block("ys", &ys),
        moves = moves,
        lcg_seed = (p.seed as u32 as i64 | 1).min(i32::MAX as i64),
        cell_mask = cells - 1,
    )
}
