//! `art` stand-in: the F1-layer of an adaptive-resonance network —
//! streaming weighted sums over large arrays, winner-take-all compares,
//! and a winner weight update. Low-IPC fp streaming, as in 179.art.

use crate::gen::{doubles_block, Splitmix};
use crate::Params;

const NEURONS: usize = 10;
const INPUTS: usize = 512;

pub(crate) fn art(p: &Params) -> String {
    let presentations = 12 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x0061_7274);
    let weights: Vec<f64> = (0..NEURONS * INPUTS).map(|_| rng.unit_f64()).collect();
    let inputs: Vec<f64> = (0..INPUTS).map(|_| rng.unit_f64()).collect();

    format!(
        r#"# art stand-in: F1 activation + winner-take-all + weight update
        .data
{w_block}
{in_block}
acts:
        .space {act_bytes}
        .text
main:
        la   s0, weights
        la   s1, inputs
        la   s2, acts
        li   s3, {presentations}
        li   t0, 0
        fcvt.d.l f9, t0         # 0.0
        li   t0, 1
        fcvt.d.l f8, t0
        li   t0, 10
        fcvt.d.l f7, t0
        fdiv.d f8, f8, f7       # learning rate 0.1
present:
        # activations: act[j] = sum_k w[j][k] * in[k]
        li   s4, 0              # neuron j
neuron:
        fmov.d f0, f9
        li   s5, 0              # input k
        li   t0, {inputs}
        mul  t1, s4, t0
        slli t1, t1, 3
        add  t1, s0, t1         # &w[j][0]
dot:
        slli t2, s5, 3
        add  t3, t1, t2
        fld  f1, 0(t3)
        add  t4, s1, t2
        fld  f2, 0(t4)
        fmul.d f3, f1, f2
        fadd.d f0, f0, f3
        addi s5, s5, 1
        li   t0, {inputs}
        blt  s5, t0, dot
        slli t5, s4, 3
        add  t6, s2, t5
        fsd  f0, 0(t6)
        addi s4, s4, 1
        li   t0, {neurons}
        blt  s4, t0, neuron
        # winner-take-all
        li   s4, 1
        li   s6, 0              # winner index
        fld  f4, 0(s2)          # best
wta:
        slli t5, s4, 3
        add  t6, s2, t5
        fld  f5, 0(t6)
        fle.d t0, f5, f4
        bnez t0, notbetter
        fmov.d f4, f5
        mv   s6, s4
notbetter:
        addi s4, s4, 1
        li   t0, {neurons}
        blt  s4, t0, wta
        # update winner weights: w += rate * (in - w)
        li   s5, 0
        li   t0, {inputs}
        mul  t1, s6, t0
        slli t1, t1, 3
        add  t1, s0, t1
update:
        slli t2, s5, 3
        add  t3, t1, t2
        fld  f1, 0(t3)
        add  t4, s1, t2
        fld  f2, 0(t4)
        fsub.d f3, f2, f1
        fmul.d f3, f3, f8
        fadd.d f1, f1, f3
        fsd  f1, 0(t3)
        addi s5, s5, 1
        li   t0, {inputs}
        blt  s5, t0, update
        addi s3, s3, -1
        bnez s3, present
        # checksum: winner index + scaled best activation
        li   t0, 1000
        fcvt.d.l f6, t0
        fmul.d f4, f4, f6
        fcvt.l.d a0, f4
        add  a0, a0, s6
        puti a0
        halt
"#,
        w_block = doubles_block("weights", &weights),
        in_block = doubles_block("inputs", &inputs),
        act_bytes = NEURONS * 8,
        presentations = presentations,
        inputs = INPUTS,
        neurons = NEURONS,
    )
}
