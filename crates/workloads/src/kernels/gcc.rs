//! `gcc` stand-in: symbol processing — binary-search-tree lookups and
//! open-addressed hash-table interning, each behind a called routine,
//! over an LCG key stream. Branchy, irregular integer code.

use crate::gen::{words_block, Splitmix};
use crate::Params;

const KEY_SPACE: u64 = 4096;
const HASH_ENTRIES: usize = 8192;

pub(crate) fn gcc(p: &Params) -> String {
    let nodes = 1024;
    let lookups = 550 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x0067_6363);

    // A balanced BST over `nodes` distinct random keys, laid out as
    // key/left/right index arrays (index 0 = null, root at 1).
    let mut keys: Vec<i64> = {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < nodes {
            set.insert(rng.below(KEY_SPACE) as i64);
        }
        set.into_iter().collect()
    };
    keys.sort_unstable();
    let mut key_arr = vec![0i64; nodes + 1];
    let mut left = vec![0i64; nodes + 1];
    let mut right = vec![0i64; nodes + 1];
    let mut next_slot = 1usize;
    // Recursive balanced build over the sorted keys.
    fn build(
        keys: &[i64],
        lo: usize,
        hi: usize,
        key_arr: &mut [i64],
        left: &mut [i64],
        right: &mut [i64],
        next_slot: &mut usize,
    ) -> i64 {
        if lo >= hi {
            return 0;
        }
        let mid = (lo + hi) / 2;
        let me = *next_slot;
        *next_slot += 1;
        key_arr[me] = keys[mid];
        left[me] = build(keys, lo, mid, key_arr, left, right, next_slot);
        right[me] = build(keys, mid + 1, hi, key_arr, left, right, next_slot);
        me as i64
    }
    let root = build(
        &keys,
        0,
        keys.len(),
        &mut key_arr,
        &mut left,
        &mut right,
        &mut next_slot,
    );

    // Real gcc has hundreds of static call sites; replicate the lookup
    // and interning routines into clones dispatched through a jump
    // table, so the kernel has a code footprint (and indirect-branch
    // behaviour) closer to compiled symbol-table code.
    let clones = 8usize;
    let mut funcs = String::new();
    let mut table_entries = Vec::new();
    for i in 0..clones {
        table_entries.push(format!("bstfind{i}"));
        funcs.push_str(&format!(
            r#"
# a0 = key; returns key[node] if found, else 1 (clone {i})
bstfind{i}:
        addi sp, sp, -16
        sd   ra, 8(sp)
        sd   s0, 0(sp)
        la   s0, keyarr
        la   t2, leftarr
        la   t3, rightarr
        li   t4, {root}         # node = root
search{i}:
        slli t5, t4, 3
        add  t6, s0, t5
        ld   a1, 0(t6)          # key[node]
        beq  a1, a0, found{i}
        blt  a0, a1, goleft{i}
        add  t6, t3, t5
        ld   t4, 0(t6)          # node = right[node]
        bnez t4, search{i}
        j    notfound{i}
goleft{i}:
        add  t6, t2, t5
        ld   t4, 0(t6)          # node = left[node]
        bnez t4, search{i}
notfound{i}:
        li   a0, 1
        j    bstout{i}
found{i}:
        mv   a0, a1
bstout{i}:
        call intern{i}
        ld   s0, 0(sp)
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret

# a0 = value; interns into the hash table, returns the slot index
intern{i}:
        addi sp, sp, -16
        sd   ra, 8(sp)
        sd   s0, 0(sp)
        la   s0, htab
        andi t6, a0, {hash_mask}
probe{i}:
        slli t5, t6, 3
        add  t4, s0, t5
        ld   t3, 0(t4)
        beq  t3, a0, hdone{i}   # interned already
        beqz t3, hinsert{i}
        addi t6, t6, 1
        andi t6, t6, {hash_mask}
        j    probe{i}
hinsert{i}:
        sd   a0, 0(t4)
hdone{i}:
        mv   a0, t6
        ld   s0, 0(sp)
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
            i = i,
            root = root,
            hash_mask = HASH_ENTRIES - 1,
        ));
    }
    let calltab = format!("calltab:\n    .word {}\n", table_entries.join(", "));

    format!(
        r#"# gcc stand-in: BST lookups + hash interning across {clones} clone call sites
        .data
{key_block}
{left_block}
{right_block}
{calltab}
        .align 8
htab:
        .space {hash_bytes}
        .text
main:
        li   s4, {lookups}
        li   s5, 0              # checksum
        li   s6, {lcg_seed}     # lcg state
        la   s7, calltab
loop:
        li   t0, 1103515245
        mul  s6, s6, t0
        addi s6, s6, 12345
        srli t1, s6, 16
        andi t1, t1, {key_mask} # probe key
        # dispatch through the jump table (indirect call, like a
        # function pointer in compiled code)
        andi t2, t1, {clone_mask}
        slli t2, t2, 3
        add  t2, s7, t2
        ld   t3, 0(t2)
        mv   a0, t1
        jalr ra, t3, 0
        add  s5, s5, a0
        addi s4, s4, -1
        bnez s4, loop
        puti s5
        halt
{funcs}
"#,
        key_block = words_block("keyarr", &key_arr),
        left_block = words_block("leftarr", &left),
        right_block = words_block("rightarr", &right),
        calltab = calltab,
        hash_bytes = HASH_ENTRIES * 8,
        lookups = lookups,
        lcg_seed = (p.seed as u32 as i64 | 1).min(i32::MAX as i64),
        key_mask = KEY_SPACE - 1,
        clone_mask = clones - 1,
        clones = clones,
        funcs = funcs,
    )
}
