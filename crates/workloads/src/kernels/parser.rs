//! `parser` stand-in: dictionary lookups by binary search with a
//! called byte-compare routine — byte loads, data-dependent branches,
//! and the call-frame traffic of compiled code.

use crate::gen::{bytes_block, Splitmix};
use crate::Params;

const DICT_WORDS: usize = 512;
const WORD_BYTES: usize = 8;

fn random_word(rng: &mut Splitmix) -> [u8; WORD_BYTES] {
    let len = 3 + rng.below(6) as usize;
    let mut w = [0u8; WORD_BYTES];
    for slot in w.iter_mut().take(len) {
        *slot = b'a' + rng.below(26) as u8;
    }
    w
}

pub(crate) fn parser(p: &Params) -> String {
    let tokens = 450 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x7061_7273);

    // Sorted dictionary of fixed-width words.
    let mut dict: Vec<[u8; WORD_BYTES]> =
        std::collections::BTreeSet::<[u8; WORD_BYTES]>::from_iter(
            std::iter::repeat_with(|| random_word(&mut rng)).take(DICT_WORDS * 2),
        )
        .into_iter()
        .take(DICT_WORDS)
        .collect();
    dict.sort_unstable();

    // Token stream: roughly half dictionary hits, half misses.
    let mut stream: Vec<u8> = Vec::with_capacity(tokens * WORD_BYTES);
    for _ in 0..tokens {
        let w = if rng.below(2) == 0 {
            dict[rng.below(dict.len() as u64) as usize]
        } else {
            random_word(&mut rng)
        };
        stream.extend_from_slice(&w);
    }

    let dict_bytes: Vec<u8> = dict.iter().flatten().copied().collect();

    format!(
        r#"# parser stand-in: binary-search dictionary with a compare routine
        .data
{dict_block}
{stream_block}
        .text
main:
        la   s0, dict
        la   s1, stream
        li   s2, {tokens}
        li   s3, 0              # checksum
        li   s4, 0              # token index
tok:
        slli t0, s4, 3
        add  s6, s1, t0         # token pointer
        li   s7, 0              # lo
        li   s8, {dict_words}   # hi (exclusive)
bs:
        bge  s7, s8, nfound
        add  s9, s7, s8
        srli s9, s9, 1          # mid
        slli a0, s9, 3
        add  a0, s0, a0         # dict[mid] pointer
        mv   a1, s6
        call wordcmp            # a0 <- sign(dict[mid] - token)
        beqz a0, foundmid
        bltz a0, lower
        mv   s8, s9             # dict > token: hi = mid
        j    bs
lower:
        addi s7, s9, 1          # dict < token: lo = mid + 1
        j    bs
foundmid:
        add  s3, s3, s9
        j    next
nfound:
        addi s3, s3, -1
next:
        addi s4, s4, 1
        blt  s4, s2, tok
        puti s3
        halt

# a0 = left word, a1 = right word; returns -1/0/1 in a0
wordcmp:
        addi sp, sp, -16
        sd   ra, 8(sp)
        sd   s0, 0(sp)
        li   t2, {word_bytes}
        li   s0, 0              # byte index
cmp:
        add  t0, a0, s0
        lbu  t3, 0(t0)
        add  t1, a1, s0
        lbu  t4, 0(t1)
        blt  t3, t4, isless
        blt  t4, t3, ismore
        addi s0, s0, 1
        blt  s0, t2, cmp
        li   a0, 0
        j    out
isless:
        li   a0, -1
        j    out
ismore:
        li   a0, 1
out:
        ld   s0, 0(sp)
        ld   ra, 8(sp)
        addi sp, sp, 16
        ret
"#,
        dict_block = bytes_block("dict", &dict_bytes),
        stream_block = bytes_block("stream", &stream),
        tokens = tokens,
        dict_words = dict.len(),
        word_bytes = WORD_BYTES,
    )
}
