//! `mcf` stand-in: network-simplex-style pointer chasing with a
//! working set far beyond the L1, the classic memory-bound low-IPC
//! profile.

use crate::gen::{words_block, Splitmix};
use crate::Params;

pub(crate) fn mcf(p: &Params) -> String {
    let n = 2048 * p.scale as usize;
    let mut rng = Splitmix::new(p.seed ^ 0x006d_6366);

    // A single-cycle random permutation (Sattolo) so every chase walks
    // the whole node set — maximal dependent-load chains.
    let mut next: Vec<i64> = (0..n as i64).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64) as usize;
        next.swap(i, j);
    }
    let cost: Vec<i64> = (0..n).map(|_| rng.below(1000) as i64).collect();
    let depth: Vec<i64> = (0..n).map(|_| rng.below(64) as i64).collect();

    let steps = n;
    let rounds = 4;

    format!(
        r#"# mcf stand-in: dependent-load pointer chase over {n} nodes
        .data
{next_block}
{cost_block}
{depth_block}
        .text
main:
        la   s0, nextarr
        la   s1, cost
        la   s2, depth
        li   s3, 0              # checksum
        li   s4, {rounds}
round:
        li   t0, 0              # current node
        li   t1, {steps}
step:
        slli t2, t0, 3
        add  t3, s0, t2
        ld   t0, 0(t3)          # node = next[node] (dependent load)
        slli t2, t0, 3
        add  t4, s1, t2
        ld   t5, 0(t4)          # cost[node]
        add  s3, s3, t5
        add  t6, s2, t2
        ld   a0, 0(t6)          # depth[node]
        add  s3, s3, a0
        andi a1, t0, 15
        bnez a1, noupd
        addi t5, t5, 1          # occasional cost update
        sd   t5, 0(t4)
noupd:
        addi t1, t1, -1
        bnez t1, step
        addi s4, s4, -1
        bnez s4, round
        puti s3
        halt
"#,
        next_block = words_block("nextarr", &next),
        cost_block = words_block("cost", &cost),
        depth_block = words_block("depth", &depth),
    )
}
