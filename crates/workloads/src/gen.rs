//! Deterministic input-data generation for the kernels.

/// The kernels' input stream: `redsim_util`'s splitmix64. The sequence
/// for a given seed is part of the workload contract — every golden
/// checksum derives from it — and `SplitMix64` guarantees it.
pub use redsim_util::SplitMix64 as Splitmix;

/// Formats a `.word` data block, 8 values per line, under `label`.
pub fn words_block(label: &str, values: &[i64]) -> String {
    let mut s = format!("{label}:\n");
    for chunk in values.chunks(8) {
        s.push_str("    .word ");
        let items: Vec<String> = chunk.iter().map(i64::to_string).collect();
        s.push_str(&items.join(", "));
        s.push('\n');
    }
    if values.is_empty() {
        s.push_str("    .space 8\n");
    }
    s
}

/// Formats a `.byte` data block under `label`.
pub fn bytes_block(label: &str, values: &[u8]) -> String {
    let mut s = format!("{label}:\n");
    for chunk in values.chunks(16) {
        s.push_str("    .byte ");
        let items: Vec<String> = chunk.iter().map(u8::to_string).collect();
        s.push_str(&items.join(", "));
        s.push('\n');
    }
    if values.is_empty() {
        s.push_str("    .space 8\n");
    }
    s
}

/// Formats a `.double` data block under `label`.
pub fn doubles_block(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label}:\n");
    for chunk in values.chunks(4) {
        s.push_str("    .double ");
        let items: Vec<String> = chunk.iter().map(|v| format!("{v:.17e}")).collect();
        s.push_str(&items.join(", "));
        s.push('\n');
    }
    if values.is_empty() {
        s.push_str("    .space 8\n");
    }
    s
}

/// Compressible byte stream: random-length runs and repeated motifs,
/// the texture LZ compressors feed on.
pub fn compressible_bytes(rng: &mut Splitmix, len: usize) -> Vec<u8> {
    let motifs: Vec<Vec<u8>> = (0..8)
        .map(|_| {
            (0..4 + rng.below(12))
                .map(|_| rng.next_u64() as u8)
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if rng.below(3) == 0 {
            // A literal run.
            let n = 1 + rng.below(6) as usize;
            for _ in 0..n {
                out.push(rng.next_u64() as u8);
            }
        } else {
            // A repeated motif.
            let m = &motifs[rng.below(motifs.len() as u64) as usize];
            out.extend_from_slice(m);
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut r = Splitmix::new(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Splitmix::new(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Splitmix::new(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn blocks_assemble() {
        let src = format!(
            ".data\n{}{}{}.text\nmain: halt\n",
            words_block("w", &[1, -2, 3]),
            bytes_block("b", &[4, 5]),
            doubles_block("d", &[1.5, -0.25]),
        );
        let p = redsim_isa::asm::assemble(&src).expect("blocks must assemble");
        assert!(p.symbol("w").is_some());
    }

    #[test]
    fn empty_blocks_reserve_space() {
        let src = format!(".data\n{}.text\nmain: halt\n", words_block("w", &[]));
        assert!(redsim_isa::asm::assemble(&src).is_ok());
    }

    #[test]
    fn compressible_bytes_have_repeats() {
        let mut r = Splitmix::new(3);
        let data = compressible_bytes(&mut r, 4096);
        assert_eq!(data.len(), 4096);
        // Count 4-grams that appear more than once: compressible input
        // must have plenty.
        let mut seen = std::collections::HashMap::new();
        for w in data.windows(4) {
            *seen.entry(w.to_vec()).or_insert(0u32) += 1;
        }
        let repeats = seen.values().filter(|&&c| c > 1).count();
        assert!(repeats > 100, "only {repeats} repeated 4-grams");
    }
}
