//! The shard supervisor: host wall-clock deadlines, deterministic
//! retry with capped exponential backoff, and quarantine.
//!
//! The campaign's simulated-cycle watchdog bounds a shard *inside* the
//! simulation; this module bounds it from *outside*. Each attempt can
//! be armed with a host deadline (a background monitor thread raises
//! the job's cancellation flag when the wall clock expires), and a
//! failed attempt is retried only when its [`JobErrorKind`] is
//! transient — deterministic failures re-fail identically, so retrying
//! them only burns time. A shard that exhausts its retry budget is
//! *quarantined*: recorded as failed with `"quarantined":true`, the
//! campaign degrades gracefully instead of aborting.
//!
//! Everything the supervisor decides is a pure function of the attempt
//! outcomes, so given a deterministic fault schedule (a [`FlakePlan`],
//! or none) the records it produces are byte-identical at any thread
//! count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use redsim_bench::{run_job_isolated, Job, JobErrorKind, JobFailure};
use redsim_core::{SimStats, WindowSample};
use redsim_isa::trace::DynInst;

/// Retry discipline for transient shard failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per shard (first try included). The cap on
    /// redundant re-execution — 1 disables retry entirely.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubled per further attempt.
    pub backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The pause after failed attempt number `attempt` (0-based):
    /// `backoff << attempt`, saturating, capped at `backoff_cap`.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.backoff_cap);
        exp.min(self.backoff_cap)
    }
}

/// A deterministic injected-fault schedule for tests: the listed shards
/// fail their first `failures` attempts with a transient
/// [`JobErrorKind::Injected`] error before running for real. Lives in
/// the options (not the spec), so a flaky run and a clean run share a
/// fingerprint and their manifests interoperate — which is exactly what
/// the retry-determinism property needs to be testable.
#[derive(Debug, Clone)]
pub struct FlakePlan {
    /// Shard ids the plan applies to.
    pub shards: Vec<usize>,
    /// Attempts to fail per listed shard before succeeding.
    pub failures: u32,
}

impl FlakePlan {
    /// Injected failures scheduled for `shard_id`.
    #[must_use]
    pub fn failures_for(&self, shard_id: usize) -> u32 {
        if self.shards.contains(&shard_id) {
            self.failures
        } else {
            0
        }
    }
}

/// A shard that ran out of road: its last failure, how many attempts
/// were spent, and whether the supervisor quarantined it (transient
/// failure, retry budget exhausted) or failed it fast (persistent).
#[derive(Debug)]
pub struct ShardFailure {
    /// The last attempt's failure.
    pub failure: JobFailure,
    /// Attempts consumed (>= 1).
    pub attempts: u32,
    /// `true` when a *transient* failure survived every retry; the
    /// shard is excluded from the campaign's aggregates but the sweep
    /// itself degrades gracefully.
    pub quarantined: bool,
}

struct MonitorState {
    next_id: u64,
    /// Armed deadlines: id → (expiry instant, flag to raise).
    armed: BTreeMap<u64, (Instant, Arc<AtomicBool>)>,
    shutdown: bool,
}

struct MonitorShared {
    state: Mutex<MonitorState>,
    cv: Condvar,
}

/// A background thread that raises cancellation flags when host
/// wall-clock deadlines expire. One monitor serves every worker of a
/// campaign: arming is a map insert plus a condvar nudge, so per-shard
/// overhead stays negligible. Dropping the monitor shuts the thread
/// down.
pub struct DeadlineMonitor {
    shared: Arc<MonitorShared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DeadlineMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineMonitor").finish_non_exhaustive()
    }
}

impl Default for DeadlineMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl DeadlineMonitor {
    /// Spawns the monitor thread.
    #[must_use]
    pub fn new() -> Self {
        let shared = Arc::new(MonitorShared {
            state: Mutex::new(MonitorState {
                next_id: 0,
                armed: BTreeMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut st = shared.state.lock().expect("monitor lock");
                loop {
                    if st.shutdown {
                        break;
                    }
                    let now = Instant::now();
                    let mut earliest: Option<Instant> = None;
                    let mut due = Vec::new();
                    for (&id, (at, _)) in &st.armed {
                        if *at <= now {
                            due.push(id);
                        } else if earliest.is_none_or(|e| *at < e) {
                            earliest = Some(*at);
                        }
                    }
                    for id in due {
                        if let Some((_, flag)) = st.armed.remove(&id) {
                            flag.store(true, Ordering::Relaxed);
                        }
                    }
                    st = match earliest {
                        Some(at) => {
                            let wait = at.saturating_duration_since(Instant::now());
                            shared.cv.wait_timeout(st, wait).expect("monitor lock").0
                        }
                        None => shared.cv.wait(st).expect("monitor lock"),
                    };
                }
            })
        };
        DeadlineMonitor {
            shared,
            thread: Some(thread),
        }
    }

    /// Arms a deadline `after` from now and returns the guard holding
    /// the flag to attach via [`Job::with_cancel`]. A zero deadline
    /// raises the flag synchronously — the deterministic path the
    /// quarantine tests lean on (no thread-timing dependence at all).
    #[must_use]
    pub fn arm(&self, after: Duration) -> DeadlineGuard {
        let flag = Arc::new(AtomicBool::new(false));
        if after.is_zero() {
            flag.store(true, Ordering::Relaxed);
            return DeadlineGuard {
                shared: Arc::clone(&self.shared),
                id: None,
                flag,
            };
        }
        let mut st = self.shared.state.lock().expect("monitor lock");
        let id = st.next_id;
        st.next_id += 1;
        st.armed
            .insert(id, (Instant::now() + after, Arc::clone(&flag)));
        drop(st);
        self.shared.cv.notify_one();
        DeadlineGuard {
            shared: Arc::clone(&self.shared),
            id: Some(id),
            flag,
        }
    }
}

impl Drop for DeadlineMonitor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("monitor lock");
            st.shutdown = true;
        }
        self.cv_notify();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl DeadlineMonitor {
    fn cv_notify(&self) {
        self.shared.cv.notify_all();
    }
}

/// An armed deadline; dropping it disarms the monitor entry (the run
/// finished first) and releases the flag.
pub struct DeadlineGuard {
    shared: Arc<MonitorShared>,
    id: Option<u64>,
    flag: Arc<AtomicBool>,
}

impl DeadlineGuard {
    /// The cancellation flag to attach to the job.
    #[must_use]
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut st = self.shared.state.lock().expect("monitor lock");
            st.armed.remove(&id);
        }
    }
}

/// Runs one shard under the full supervision discipline: injected
/// flake failures first (tests), then real attempts, each optionally
/// bounded by a host deadline; transient failures retry with capped
/// exponential backoff up to the policy's attempt budget.
///
/// # Errors
///
/// [`ShardFailure`] when the shard never succeeded — `quarantined`
/// distinguishes an exhausted retry budget from a fail-fast persistent
/// error.
pub fn execute_shard(
    trace: &Arc<[DynInst]>,
    job: &Job,
    retry: &RetryPolicy,
    monitor: Option<&DeadlineMonitor>,
    host_deadline: Option<Duration>,
    injected_failures: u32,
) -> Result<(SimStats, Vec<WindowSample>), ShardFailure> {
    let max_attempts = retry.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        let outcome = if attempt < injected_failures {
            Err(JobFailure::new(
                JobErrorKind::Injected,
                "injected transient fault",
            ))
        } else {
            let mut job = job.clone();
            let _guard = match (monitor, host_deadline) {
                (Some(m), Some(d)) => {
                    let g = m.arm(d);
                    job = job.with_cancel(g.flag());
                    Some(g)
                }
                _ => None,
            };
            run_job_isolated(trace, &job).map(|(stats, _perf, windows)| (stats, windows))
        };
        let failure = match outcome {
            Ok(r) => return Ok(r),
            Err(f) => f,
        };
        attempt += 1;
        if !failure.kind.is_transient() {
            return Err(ShardFailure {
                failure,
                attempts: attempt,
                quarantined: false,
            });
        }
        if attempt >= max_attempts {
            return Err(ShardFailure {
                failure,
                attempts: attempt,
                quarantined: true,
            });
        }
        std::thread::sleep(retry.backoff_for(attempt - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(130),
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(25));
        assert_eq!(p.backoff_for(1), Duration::from_millis(50));
        assert_eq!(p.backoff_for(2), Duration::from_millis(100));
        assert_eq!(p.backoff_for(3), Duration::from_millis(130));
        assert_eq!(p.backoff_for(63), Duration::from_millis(130));
    }

    #[test]
    fn flake_plan_targets_only_listed_shards() {
        let plan = FlakePlan {
            shards: vec![1, 3],
            failures: 2,
        };
        assert_eq!(plan.failures_for(1), 2);
        assert_eq!(plan.failures_for(3), 2);
        assert_eq!(plan.failures_for(0), 0);
    }

    #[test]
    fn zero_deadline_raises_the_flag_synchronously() {
        let m = DeadlineMonitor::new();
        let g = m.arm(Duration::ZERO);
        assert!(g.flag().load(Ordering::Relaxed));
    }

    #[test]
    fn expired_deadline_raises_the_flag_and_drop_disarms() {
        let m = DeadlineMonitor::new();
        let g = m.arm(Duration::from_millis(5));
        let flag = g.flag();
        let t0 = Instant::now();
        while !flag.load(Ordering::Relaxed) {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(g);
        // A disarmed deadline never fires: arm far out, drop, wait past
        // nothing — the map no longer holds the entry.
        let g2 = m.arm(Duration::from_secs(3600));
        let flag2 = g2.flag();
        drop(g2);
        std::thread::sleep(Duration::from_millis(10));
        assert!(!flag2.load(Ordering::Relaxed));
    }
}
