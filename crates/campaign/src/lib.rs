#![warn(missing_docs)]

//! # redsim-campaign
//!
//! A fault-injection campaign runner built for interruption: it
//! enumerates a deterministic list of *shards* (one simulation per
//! `(scenario, workload, fault-seed)` cell), fans them across worker
//! threads through the bench [`Harness`], and checkpoints every
//! completed shard to an append-only JSONL *progress manifest* so a
//! killed campaign resumes where it stopped.
//!
//! Robustness properties, by construction rather than by testing luck:
//!
//! * **Deterministic shard list** — [`CampaignSpec::shards`] derives
//!   the full grid from the spec alone; the spec's canonical JSON is
//!   hashed ([`CampaignSpec::fingerprint`]) into the manifest header so
//!   a resume against a *different* campaign is rejected, never merged.
//! * **Per-shard isolation** — a shard that panics or returns a
//!   simulation error is recorded as a structured failure
//!   (`"ok":false`) and the remaining shards still run
//!   ([`Harness::try_sweep_with`] wraps each job in `catch_unwind`).
//! * **Livelock containment** — the spec's watchdog deadline bounds
//!   every shard in simulated cycles; a tripped watchdog classifies the
//!   shard's pending faults as `Hang` and completes normally.
//! * **Byte-identical reports** — progress lines land in completion
//!   order (thread-schedule dependent) but each line's *content* is
//!   deterministic, and the final report embeds the record lines sorted
//!   by shard id. Any thread count, and any interrupt/resume split,
//!   produces the identical report file.
//! * **Crash-consistent manifests** — every record is framed with a
//!   per-record checksum ([`manifest`]); a torn trailing frame (the
//!   process was killed mid-write) is discarded on resume and its shard
//!   re-runs, while a damaged *interior* frame is a typed
//!   [`CampaignError::Corrupt`] naming the line — never a silent skip.
//!   Resume rewrites the manifest and writes the report atomically
//!   (temp file + rename + fsync barriers per [`FsyncPolicy`]), and all
//!   filesystem traffic flows through a swappable [`Io`] backend so the
//!   chaos tests can inject EINTR, short writes, ENOSPC, fsync failures
//!   and kills at every write boundary.
//! * **Supervised shards** — each shard runs under the [`supervisor`]:
//!   host wall-clock deadlines (distinct from the simulated-cycle
//!   watchdog), deterministic retry with capped exponential backoff for
//!   transient failures, and quarantine with graceful degradation when
//!   the retry budget runs out.

use std::collections::BTreeMap;
use std::hash::Hasher;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use redsim_bench::Harness;
pub use redsim_bench::{Job, JobError, JobErrorKind, JobFailure};
use redsim_core::{
    ExecMode, FaultConfig, FaultLifecycle, FlightRecorder, ForwardingPolicy, Histogram,
    MachineConfig, SimStats, Simulator, SliceSource, WindowSample,
};
use redsim_isa::trace::DynInst;
use redsim_util::hash::FxHasher;
use redsim_util::io::{atomic_write, write_all_retrying, FsyncPolicy, Io, IoFile, RealIo};
use redsim_util::Json;
use redsim_workloads::Workload;

pub mod manifest;
pub mod supervisor;

use manifest::{frame_record, header_line, parse_manifest};
use supervisor::execute_shard;
pub use supervisor::{DeadlineMonitor, FlakePlan, RetryPolicy, ShardFailure};

/// Process exit codes shared by the campaign binaries, so scripts can
/// tell the degradation modes apart.
pub mod exit_codes {
    /// Completed, but at least one shard is recorded as failed.
    pub const SHARD_FAILURES: i32 = 1;
    /// Usage error, spec mismatch, or a corrupt manifest.
    pub const USAGE: i32 = 2;
    /// Interrupted with shards still pending (resume to continue).
    pub const INTERRUPTED: i32 = 3;
    /// Completed with quarantined shards: every failure was transient
    /// and the retry budget ran out — partial results are in the
    /// report.
    pub const QUARANTINED: i32 = 4;
    /// A host IO failure stopped the campaign; re-run with `--resume`.
    pub const IO: i32 = 5;
}

/// One fault-injection scenario: an execution mode plus where and how
/// often to strike.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short stable name, used in shard labels and the report summary.
    pub name: String,
    /// Execution mode under test.
    pub mode: ExecMode,
    /// Strike sites and rates (replica `r` shifts `seed` by `1000·r`).
    pub faults: FaultConfig,
    /// Forwarding policy — the §3.4 shared-bus escapes exist only under
    /// [`ForwardingPolicy::PrimaryToBoth`].
    pub forwarding: ForwardingPolicy,
}

/// The full, self-describing campaign definition. Everything the
/// runner does — the shard list, each shard's job, the manifest
/// fingerprint — derives deterministically from this value.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The scenarios to sweep.
    pub scenarios: Vec<Scenario>,
    /// The workloads each scenario runs over.
    pub workloads: Vec<Workload>,
    /// Fault-seed replicas per `(scenario, workload)` cell.
    pub seeds: u32,
    /// Use the tiny workload instances.
    pub quick: bool,
    /// Per-shard watchdog deadline in simulated cycles; a shard that
    /// reaches it resolves pending faults as `Hang` instead of spinning
    /// forever.
    pub watchdog: Option<u64>,
    /// Windowed-metrics collection: `Some(n)` samples each shard's IPC
    /// time series every `n` simulated cycles, records the per-window
    /// milli-IPC values in the manifest, and aggregates them into
    /// per-scenario percentile summaries in the report. `None` keeps
    /// the manifest metrics-free.
    pub metrics_window: Option<u64>,
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in the deterministic shard list (the manifest key).
    pub id: usize,
    /// Index into [`CampaignSpec::scenarios`].
    pub scenario: usize,
    /// The workload this shard simulates.
    pub workload: Workload,
    /// Fault-seed replica number (`0..spec.seeds`).
    pub rep: u64,
}

impl CampaignSpec {
    /// The deterministic shard list: scenarios × workloads × replicas,
    /// in declaration order.
    #[must_use]
    pub fn shards(&self) -> Vec<Shard> {
        let mut out = Vec::new();
        for (si, _) in self.scenarios.iter().enumerate() {
            for &w in &self.workloads {
                for rep in 0..u64::from(self.seeds) {
                    out.push(Shard {
                        id: out.len(),
                        scenario: si,
                        workload: w,
                        rep,
                    });
                }
            }
        }
        out
    }

    /// The shard's human-readable label (`scenario/workload#sN`).
    #[must_use]
    pub fn label(&self, shard: &Shard) -> String {
        format!(
            "{}/{}#s{}",
            self.scenarios[shard.scenario].name,
            shard.workload.name(),
            shard.rep
        )
    }

    /// Builds the bench [`Job`] for one shard.
    #[must_use]
    pub fn job(&self, shard: &Shard) -> Job {
        let sc = &self.scenarios[shard.scenario];
        let mut cfg = MachineConfig::paper_baseline();
        cfg.forwarding = sc.forwarding;
        let faults = FaultConfig {
            seed: sc.faults.seed + 1000 * shard.rep,
            ..sc.faults
        };
        let mut job = Job::new(shard.workload, sc.mode, &cfg).with_faults(faults);
        if let Some(w) = self.watchdog {
            job = job.with_watchdog(w);
        }
        if let Some(mw) = self.metrics_window {
            job = job.with_metrics_window(mw);
        }
        job
    }

    /// Canonical JSON rendering of the spec — the fingerprint input.
    #[must_use]
    pub fn canonical(&self) -> String {
        let scenarios: Json = self
            .scenarios
            .iter()
            .map(|s| {
                Json::obj()
                    .field("name", s.name.as_str())
                    .field("mode", format!("{:?}", s.mode).as_str())
                    .field("fu_rate", s.faults.fu_rate)
                    .field("forward_rate", s.faults.forward_rate)
                    .field("irb_rate", s.faults.irb_rate)
                    .field("seed", s.faults.seed)
                    .field("forwarding", format!("{:?}", s.forwarding).as_str())
            })
            .collect();
        let workloads: Json = self
            .workloads
            .iter()
            .map(|w| Json::from(w.name()))
            .collect();
        let mut spec = Json::obj()
            .field("scenarios", scenarios)
            .field("workloads", workloads)
            .field("seeds", u64::from(self.seeds))
            .field("quick", self.quick);
        if let Some(w) = self.watchdog {
            spec = spec.field("watchdog", w);
        }
        if let Some(mw) = self.metrics_window {
            spec = spec.field("metrics_window", mw);
        }
        spec.to_string()
    }

    /// A deterministic 64-bit fingerprint of the canonical spec. Stored
    /// in the manifest header; a resume whose spec hashes differently
    /// is rejected instead of silently mixing two campaigns.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(self.canonical().as_bytes());
        h.finish()
    }
}

/// How to run a campaign: parallelism, resume behaviour, file
/// placement, durability policy and supervision limits.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads for the shard sweep.
    pub threads: usize,
    /// Reuse an existing progress manifest, re-running only the shards
    /// it does not record.
    pub resume: bool,
    /// Test hook: complete at most this many *new* shards, then return
    /// [`CampaignOutcome::Interrupted`] (the binaries exit with code 3).
    pub interrupt_after: Option<usize>,
    /// The append-only JSONL progress manifest.
    pub progress_path: PathBuf,
    /// The final report (written only when every shard is recorded).
    pub report_path: PathBuf,
    /// When set, every shard whose watchdog fired is replayed under a
    /// flight recorder and its trace tail dumped to a sidecar file.
    pub hang_dumps: Option<HangDumpOptions>,
    /// The filesystem backend every manifest/report byte flows through.
    /// [`RealIo`] in production; the chaos tests swap in a fault-
    /// injecting [`redsim_util::io::ChaosIo`].
    pub io: Arc<dyn Io>,
    /// When to fsync manifest records and rewrite/report barriers.
    pub fsync: FsyncPolicy,
    /// Retry discipline for transient shard failures.
    pub retry: RetryPolicy,
    /// Host wall-clock deadline per shard *attempt*; `None` leaves
    /// attempts unbounded in host time (the simulated-cycle watchdog
    /// still applies).
    pub host_deadline: Option<Duration>,
    /// Test hook: a deterministic injected-fault schedule. Not part of
    /// the spec fingerprint, so flaky and clean runs share manifests —
    /// which is what makes retry determinism testable.
    pub flake: Option<FlakePlan>,
}

impl CampaignOptions {
    /// Defaults: single-threaded, no resume, real filesystem, critical
    /// fsync, default retry policy, no deadline, no flake plan.
    #[must_use]
    pub fn new(progress_path: impl Into<PathBuf>, report_path: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            threads: 1,
            resume: false,
            interrupt_after: None,
            progress_path: progress_path.into(),
            report_path: report_path.into(),
            hang_dumps: None,
            io: Arc::new(RealIo),
            fsync: FsyncPolicy::default(),
            retry: RetryPolicy::default(),
            host_deadline: None,
            flake: None,
        }
    }
}

/// Where and how large the hang flight-recorder sidecars are.
#[derive(Debug, Clone)]
pub struct HangDumpOptions {
    /// Sidecar base path; shard `N` dumps to `<base>.hang-N.trace.json`.
    pub base: PathBuf,
    /// Flight-recorder capacity: the newest events kept from the replay.
    pub capacity: usize,
}

/// The sidecar path for one hung shard under `base`.
#[must_use]
pub fn hang_trace_path(base: &Path, shard_id: usize) -> PathBuf {
    PathBuf::from(format!("{}.hang-{shard_id}.trace.json", base.display()))
}

/// Campaign failure: I/O trouble, a manifest that does not belong to
/// this campaign, or one damaged at rest.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem error on the manifest or report. Transient from the
    /// campaign's point of view: a `--resume` re-run picks up from the
    /// last durable record.
    Io(std::io::Error),
    /// The progress manifest exists but its header does not match this
    /// spec (different fingerprint, shard count or format version), or
    /// a record is out of range.
    Mismatch(String),
    /// An *interior* manifest record failed its checksum or did not
    /// parse. A torn tail is tolerated (the kill window), but damage
    /// before the tail means the file was corrupted at rest — refusing
    /// beats silently re-running shards whose results exist.
    Corrupt {
        /// 1-based line number of the damaged record.
        line: usize,
        /// What exactly failed (framing, checksum, JSON).
        detail: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign i/o error: {e}"),
            CampaignError::Mismatch(m) => write!(f, "campaign manifest mismatch: {m}"),
            CampaignError::Corrupt { line, detail } => {
                write!(f, "campaign manifest corrupt at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// A completed campaign: every shard recorded, report written.
#[derive(Debug)]
pub struct CampaignReport {
    /// The spec fingerprint the manifest carries.
    pub fingerprint: u64,
    /// Verbatim record lines, sorted by shard id (dense `0..shards`).
    pub records: Vec<String>,
    /// Shards recorded as failed (`"ok":false`), quarantined ones
    /// included.
    pub failed: Vec<JobError>,
    /// The quarantined subset of `failed`: transient failures that
    /// survived every retry. Partial results for these shards are
    /// excluded from the aggregates but the campaign still completed —
    /// the binaries exit with [`exit_codes::QUARANTINED`].
    pub quarantined: Vec<JobError>,
    /// The exact report text written to `report_path`.
    pub report: String,
    /// Flight-recorder sidecars written for hung shards (empty unless
    /// [`CampaignOptions::hang_dumps`] was set and a watchdog fired).
    pub hang_traces: Vec<PathBuf>,
}

/// What a [`run_campaign`] call achieved.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// All shards recorded; the final report was written.
    Complete(CampaignReport),
    /// Stopped by `interrupt_after` with shards still pending.
    Interrupted {
        /// Shards recorded in the manifest so far.
        completed: usize,
        /// Total shards in the campaign.
        total: usize,
    },
}

fn lifecycle_json(l: &FaultLifecycle) -> Json {
    Json::obj()
        .field("injected", l.injected)
        .field("detected", l.detected)
        .field("masked", l.masked)
        .field("silent", l.silent)
        .field("hung", l.hung)
        .field("detection_latency_sum", l.detection_latency_sum)
        .field("detection_latency_max", l.detection_latency_max)
        .field(
            "latency_histogram",
            l.latency_histogram
                .iter()
                .map(|&b| Json::from(b))
                .collect::<Json>(),
        )
        .field("squash_depth_sum", l.squash_depth_sum)
        .field("refetch_penalty_sum", l.refetch_penalty_sum)
}

/// What a failed shard writes into its record: the terminal failure,
/// the attempts spent, and the supervisor's verdict.
#[derive(Debug, Clone, Copy)]
struct FailureInfo<'a> {
    failure: &'a JobFailure,
    attempts: u32,
    quarantined: bool,
}

/// The deterministic record line for one completed shard. Successful
/// shards that ran with a metrics window append their per-window
/// milli-IPC series (integers — exactly mergeable downstream).
/// Successful records carry no attempt count: which attempt finally
/// succeeded is host history, and keeping it out of the record is what
/// makes reports byte-identical regardless of retry schedule.
fn record_line(
    shard: &Shard,
    label: &str,
    result: Result<(&SimStats, &[WindowSample]), FailureInfo<'_>>,
) -> String {
    let base = Json::obj()
        .field("kind", "shard")
        .field("id", shard.id)
        .field("scenario", shard.scenario)
        .field("rep", shard.rep)
        .field("label", label);
    match result {
        Ok((s, windows)) => {
            let mut j = base
                .field("ok", true)
                .field("cycles", s.cycles)
                .field("committed_insts", s.committed_insts)
                .field("milli_ipc", s.milli_ipc())
                .field("reuse_pass_permille", s.irb.reuse_pass_permille())
                .field("watchdog_fired", s.watchdog_fired)
                .field("active_commit_cycles", s.active_commit_cycles)
                .field("stalls", s.stalls.to_json())
                .field("injected_fu", s.faults.injected_fu)
                .field("injected_forward", s.faults.injected_forward)
                .field("injected_irb", s.faults.injected_irb)
                .field("legacy_detected", s.faults.detected)
                .field("legacy_escaped", s.faults.escaped)
                .field("silent_sie", s.faults.silent_sie)
                .field("lifecycle", lifecycle_json(&s.fault_lifecycle));
            if !windows.is_empty() {
                j = j.field(
                    "win_milli_ipc",
                    windows
                        .iter()
                        .map(|w| Json::from(w.milli_ipc()))
                        .collect::<Json>(),
                );
            }
            j.to_string()
        }
        Err(info) => {
            let mut j = base
                .field("ok", false)
                .field("error", info.failure.message.as_str())
                .field("ekind", info.failure.kind.as_str())
                .field("attempts", u64::from(info.attempts))
                .field("quarantined", info.quarantined);
            if let Some(p) = &info.failure.panic_payload {
                j = j.field("panic", p.as_str());
            }
            j.to_string()
        }
    }
}

/// Aggregates the sorted record lines into the per-scenario summary
/// embedded in the report.
fn summary_json(spec: &CampaignSpec, records: &BTreeMap<usize, String>) -> Json {
    struct Acc {
        injected: u64,
        detected: u64,
        masked: u64,
        silent: u64,
        hung: u64,
        latency_sum: u64,
        failed: u64,
        quarantined: u64,
        hangs_contained: u64,
        /// Per-window milli-IPC values across every shard of the
        /// scenario. Bucket-wise mergeable, so the percentiles are a
        /// pure function of the record set — byte-identical at any
        /// thread count or interrupt/resume split.
        ipc_hist: Histogram,
    }
    let mut accs: Vec<Acc> = spec
        .scenarios
        .iter()
        .map(|_| Acc {
            injected: 0,
            detected: 0,
            masked: 0,
            silent: 0,
            hung: 0,
            latency_sum: 0,
            failed: 0,
            quarantined: 0,
            hangs_contained: 0,
            ipc_hist: Histogram::default(),
        })
        .collect();
    for line in records.values() {
        let j = Json::parse(line).expect("records we wrote parse back");
        let si = j.get("scenario").and_then(Json::as_u64).expect("scenario") as usize;
        let acc = &mut accs[si];
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            acc.failed += 1;
            if j.get("quarantined").and_then(Json::as_bool) == Some(true) {
                acc.quarantined += 1;
            }
            continue;
        }
        if j.get("watchdog_fired").and_then(Json::as_bool) == Some(true) {
            acc.hangs_contained += 1;
        }
        let l = j.get("lifecycle").expect("ok records carry lifecycle");
        let g = |k: &str| l.get(k).and_then(Json::as_u64).unwrap_or(0);
        acc.injected += g("injected");
        acc.detected += g("detected");
        acc.masked += g("masked");
        acc.silent += g("silent");
        acc.hung += g("hung");
        acc.latency_sum += g("detection_latency_sum");
        if let Some(wins) = j.get("win_milli_ipc").and_then(Json::items) {
            for w in wins {
                acc.ipc_hist.record(w.as_u64().unwrap_or(0));
            }
        }
    }
    spec.scenarios
        .iter()
        .zip(&accs)
        .map(|(sc, a)| {
            let vulnerable = a.detected + a.silent;
            let mut j = Json::obj()
                .field("scenario", sc.name.as_str())
                .field("injected", a.injected)
                .field("detected", a.detected)
                .field("masked", a.masked)
                .field("silent", a.silent)
                .field("hung", a.hung)
                .field(
                    "coverage",
                    if vulnerable > 0 {
                        a.detected as f64 / vulnerable as f64
                    } else {
                        1.0
                    },
                )
                .field(
                    "avf",
                    if a.injected > 0 {
                        vulnerable as f64 / a.injected as f64
                    } else {
                        0.0
                    },
                )
                .field(
                    "mean_detection_latency",
                    if a.detected > 0 {
                        a.latency_sum as f64 / a.detected as f64
                    } else {
                        0.0
                    },
                )
                .field("failed_shards", a.failed)
                .field("quarantined_shards", a.quarantined)
                .field("watchdog_shards", a.hangs_contained);
            if a.ipc_hist.count() > 0 {
                j = j.field(
                    "win_milli_ipc",
                    Json::obj()
                        .field("windows", a.ipc_hist.count())
                        .field("p50", a.ipc_hist.percentile(50))
                        .field("p90", a.ipc_hist.percentile(90))
                        .field("p99", a.ipc_hist.percentile(99)),
                );
            }
            j
        })
        .collect()
}

/// Assembles the final report text: header fields, the per-scenario
/// summary, then every record line verbatim, sorted by shard id. Pure
/// function of the record set — hence byte-identical however the
/// campaign was scheduled, interrupted or resumed.
fn report_text(spec: &CampaignSpec, fingerprint: u64, records: &BTreeMap<usize, String>) -> String {
    let mut failed = 0usize;
    let mut quarantined = 0usize;
    for l in records.values() {
        let Ok(j) = Json::parse(l) else { continue };
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            failed += 1;
            if j.get("quarantined").and_then(Json::as_bool) == Some(true) {
                quarantined += 1;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"fingerprint\":\"{fingerprint:016x}\",\"shards\":{},\"failed\":{failed},\"quarantined\":{quarantined},\"summary\":{},\"records\":[",
        records.len(),
        summary_json(spec, records),
    ));
    for (i, line) in records.values().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push_str("]}\n");
    out
}

/// Extracts the failed-shard list from the sorted records; the second
/// list is the quarantined subset (also present in the first).
fn failed_records(records: &BTreeMap<usize, String>) -> (Vec<JobError>, Vec<JobError>) {
    let mut failed = Vec::new();
    let mut quarantined = Vec::new();
    for (&id, line) in records {
        let Ok(j) = Json::parse(line) else { continue };
        if j.get("ok").and_then(Json::as_bool) == Some(true) {
            continue;
        }
        let err = JobError {
            index: id,
            label: j
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            message: j
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unrecorded error")
                .to_owned(),
            kind: JobErrorKind::parse_lossy(j.get("ekind").and_then(Json::as_str).unwrap_or("sim")),
            panic_payload: j.get("panic").and_then(Json::as_str).map(str::to_owned),
        };
        if j.get("quarantined").and_then(Json::as_bool) == Some(true) {
            quarantined.push(err.clone());
        }
        failed.push(err);
    }
    (failed, quarantined)
}

/// The shared, error-latching manifest appender. One frame per record,
/// written whole through [`write_all_retrying`] (EINTR and short
/// writes are absorbed) and optionally fsynced per record. The *first*
/// IO error latches: every later append refuses immediately, so at
/// most the latching write can leave a torn frame — and it is the last
/// line of the file, exactly the shape resume tolerates.
struct ManifestSink {
    state: Mutex<SinkState>,
    sync_each: bool,
}

struct SinkState {
    file: Box<dyn IoFile>,
    error: Option<std::io::Error>,
}

impl ManifestSink {
    fn open(io: &dyn Io, path: &Path, fsync: FsyncPolicy) -> std::io::Result<Self> {
        Ok(ManifestSink {
            state: Mutex::new(SinkState {
                file: io.open_append(path)?,
                error: None,
            }),
            sync_each: fsync.sync_records(),
        })
    }

    /// Appends one framed record; `false` means the sink is dead (this
    /// call or an earlier one hit an IO error) and the campaign should
    /// wind down.
    fn append(&self, payload: &str) -> bool {
        let mut st = self.state.lock().expect("manifest sink lock");
        if st.error.is_some() {
            return false;
        }
        let framed = format!("{}\n", frame_record(payload));
        let r = write_all_retrying(st.file.as_mut(), framed.as_bytes()).and_then(|()| {
            if self.sync_each {
                st.file.sync()
            } else {
                Ok(())
            }
        });
        match r {
            Ok(()) => true,
            Err(e) => {
                st.error = Some(e);
                false
            }
        }
    }

    fn into_error(self) -> Option<std::io::Error> {
        self.state.into_inner().expect("manifest sink lock").error
    }
}

/// Runs (or resumes) a campaign.
///
/// Completed shards checkpoint to `opts.progress_path` as they finish
/// (each supervised by `opts.retry` / `opts.host_deadline`); when every
/// shard is recorded the final report is written atomically to
/// `opts.report_path` and returned. With `opts.interrupt_after` set, at
/// most that many new shards complete before the run stops with
/// [`CampaignOutcome::Interrupted`].
///
/// # Errors
///
/// [`CampaignError::Io`] on filesystem trouble (resume to continue
/// from the last durable record), [`CampaignError::Mismatch`] when
/// resuming against a manifest written by a different campaign, and
/// [`CampaignError::Corrupt`] when an interior manifest record is
/// damaged.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let io = opts.io.as_ref();
    let shards = spec.shards();
    let fingerprint = spec.fingerprint();
    let header = header_line(fingerprint, shards.len());

    if let Some(dir) = opts.progress_path.parent() {
        io.create_dir_all(dir)?;
    }
    if let Some(dir) = opts.report_path.parent() {
        io.create_dir_all(dir)?;
    }

    let mut done: BTreeMap<usize, String> = BTreeMap::new();
    if opts.resume {
        match io.read_to_string(&opts.progress_path) {
            Ok(text) => done = parse_manifest(&text, &header, shards.len())?,
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }

    // (Re)write the manifest cleanly — header plus every known-good
    // record, freshly framed — atomically (temp file + rename, fsync
    // per policy), so a torn tail from a previous kill never corrupts
    // the lines appended next.
    {
        let mut buf = String::with_capacity(256 + done.values().map(String::len).sum::<usize>());
        buf.push_str(&header);
        buf.push('\n');
        for line in done.values() {
            buf.push_str(&frame_record(line));
            buf.push('\n');
        }
        atomic_write(
            io,
            &opts.progress_path,
            buf.as_bytes(),
            opts.fsync.sync_barriers(),
        )?;
    }

    let mut pending: Vec<Shard> = shards
        .iter()
        .filter(|s| !done.contains_key(&s.id))
        .copied()
        .collect();
    let interrupted = match opts.interrupt_after {
        Some(k) if pending.len() > k => {
            pending.truncate(k);
            true
        }
        _ => false,
    };

    if !pending.is_empty() {
        let jobs: Vec<Job> = pending.iter().map(|s| spec.job(s)).collect();
        // Traces are materialized up front, single-threaded, through
        // the bench cache — workers then share them read-only. A trace
        // that cannot be built is a persistent failure for its shards.
        let mut h = Harness::new(spec.quick);
        let traces: Vec<Result<Arc<[DynInst]>, JobFailure>> = jobs
            .iter()
            .map(|j| {
                h.try_trace_for(j.workload, j.input_seed)
                    .map_err(|e| JobFailure::new(JobErrorKind::Trace, e.to_string()))
            })
            .collect();
        let sink = ManifestSink::open(io, &opts.progress_path, opts.fsync)?;
        let monitor = opts.host_deadline.map(|_| DeadlineMonitor::new());
        let abort = AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        let fresh: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let threads = opts.threads.clamp(1, pending.len());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= pending.len() {
                        break;
                    }
                    let shard = &pending[i];
                    let label = spec.label(shard);
                    let injected = opts.flake.as_ref().map_or(0, |f| f.failures_for(shard.id));
                    let line = match &traces[i] {
                        Err(f) => record_line(
                            shard,
                            &label,
                            Err(FailureInfo {
                                failure: f,
                                attempts: 1,
                                quarantined: false,
                            }),
                        ),
                        Ok(trace) => match execute_shard(
                            trace,
                            &jobs[i],
                            &opts.retry,
                            monitor.as_ref(),
                            opts.host_deadline,
                            injected,
                        ) {
                            Ok((stats, windows)) => {
                                record_line(shard, &label, Ok((&stats, &windows)))
                            }
                            Err(sf) => record_line(
                                shard,
                                &label,
                                Err(FailureInfo {
                                    failure: &sf.failure,
                                    attempts: sf.attempts,
                                    quarantined: sf.quarantined,
                                }),
                            ),
                        },
                    };
                    if !sink.append(&line) {
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                    fresh
                        .lock()
                        .expect("record list lock")
                        .push((shard.id, line));
                });
            }
        });
        if let Some(e) = sink.into_error() {
            return Err(CampaignError::Io(e));
        }
        for (id, line) in fresh.into_inner().expect("record list lock") {
            done.insert(id, line);
        }
    }

    if interrupted || done.len() < shards.len() {
        return Ok(CampaignOutcome::Interrupted {
            completed: done.len(),
            total: shards.len(),
        });
    }

    let report = report_text(spec, fingerprint, &done);
    atomic_write(
        io,
        &opts.report_path,
        report.as_bytes(),
        opts.fsync.sync_barriers(),
    )?;

    let mut hang_traces = Vec::new();
    if let Some(dump) = &opts.hang_dumps {
        let mut h = Harness::new(spec.quick);
        for (&id, line) in &done {
            let Ok(j) = Json::parse(line) else { continue };
            if j.get("watchdog_fired").and_then(Json::as_bool) != Some(true) {
                continue;
            }
            if let Some(p) = dump_hang_trace(spec, &shards[id], dump, &mut h) {
                hang_traces.push(p);
            }
        }
    }

    let (failed, quarantined) = failed_records(&done);
    Ok(CampaignOutcome::Complete(CampaignReport {
        fingerprint,
        records: done.values().cloned().collect(),
        failed,
        quarantined,
        report,
        hang_traces,
    }))
}

/// Replays one hung shard deterministically under a flight recorder and
/// writes its Chrome-trace sidecar. The replay is single-threaded and a
/// pure function of the shard's job, so the sidecar bytes are identical
/// however the campaign itself was scheduled. Best-effort post-mortem:
/// a replay or I/O failure skips the sidecar, never fails the campaign.
fn dump_hang_trace(
    spec: &CampaignSpec,
    shard: &Shard,
    dump: &HangDumpOptions,
    harness: &mut Harness,
) -> Option<PathBuf> {
    let path = hang_trace_path(&dump.base, shard.id);
    if path.exists() {
        return Some(path); // resumed campaign: the dump is already on disk
    }
    let job = spec.job(shard);
    let trace = harness.try_trace_for(job.workload, job.input_seed).ok()?;
    let mut sim = Simulator::new(job.config.clone(), job.mode);
    if let Some(fc) = job.faults {
        sim = sim.try_with_faults(fc).ok()?;
    }
    if let Some(w) = job.watchdog {
        sim = sim.with_watchdog(w);
    }
    let mut recorder = FlightRecorder::new(dump.capacity);
    let mut source = SliceSource::new(&trace);
    // The shard already ran to classification once; the replay exists
    // only for its event tail, so the stats result is discarded.
    let _ = sim.run_source_traced(&mut source, &mut recorder);
    std::fs::write(&path, format!("{}\n", recorder.to_chrome_json())).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            scenarios: vec![
                Scenario {
                    name: "die/fu".into(),
                    mode: ExecMode::Die,
                    faults: FaultConfig {
                        fu_rate: 2e-4,
                        seed: 11,
                        ..FaultConfig::none()
                    },
                    forwarding: ForwardingPolicy::PrimaryToBoth,
                },
                Scenario {
                    name: "sie/fu".into(),
                    mode: ExecMode::Sie,
                    faults: FaultConfig {
                        fu_rate: 2e-4,
                        seed: 11,
                        ..FaultConfig::none()
                    },
                    forwarding: ForwardingPolicy::PrimaryToBoth,
                },
            ],
            workloads: vec![Workload::Gzip],
            seeds: 2,
            quick: true,
            watchdog: Some(5_000_000),
            metrics_window: None,
        }
    }

    #[test]
    fn shard_list_is_dense_and_deterministic() {
        let spec = tiny_spec();
        let shards = spec.shards();
        assert_eq!(shards.len(), 4);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id, i);
        }
        assert_eq!(shards, spec.shards());
        assert_eq!(spec.label(&shards[1]), "die/fu/gzip#s1");
    }

    #[test]
    fn fingerprint_tracks_the_spec() {
        let spec = tiny_spec();
        let mut other = tiny_spec();
        other.seeds = 3;
        assert_ne!(spec.fingerprint(), other.fingerprint());
        assert_eq!(spec.fingerprint(), tiny_spec().fingerprint());
        let mut windowed = tiny_spec();
        windowed.metrics_window = Some(4096);
        assert_ne!(spec.fingerprint(), windowed.fingerprint());
    }

    #[test]
    fn window_series_lands_in_records_and_summary_percentiles() {
        let spec = tiny_spec();
        let shard = Shard {
            id: 0,
            scenario: 0,
            workload: Workload::Gzip,
            rep: 0,
        };
        let stats = SimStats::default();
        let w = WindowSample {
            end_cycle: 1000,
            counters: redsim_core::WindowCounters {
                committed_insts: 1500, // 1500 milli-IPC over 1000 cycles
                ..Default::default()
            },
            ..Default::default()
        };
        let line = record_line(&shard, "l", Ok((&stats, &[w, w, w])));
        assert!(line.contains("\"win_milli_ipc\":[1500,1500,1500]"));

        let mut records = BTreeMap::new();
        records.insert(0, line);
        let summary = summary_json(&spec, &records).to_string();
        assert!(summary.contains("\"win_milli_ipc\":{\"windows\":3,\"p50\":1500"));

        // Without windows the summary stays metrics-free.
        let bare = record_line(&shard, "l", Ok((&stats, &[])));
        assert!(!bare.contains("win_milli_ipc"));
        records.insert(0, bare);
        assert!(!summary_json(&spec, &records)
            .to_string()
            .contains("win_milli_ipc"));
    }

    #[test]
    fn replica_shifts_the_fault_seed_only() {
        let spec = tiny_spec();
        let shards = spec.shards();
        let j0 = spec.job(&shards[0]);
        let j1 = spec.job(&shards[1]);
        assert_eq!(j0.faults.unwrap().seed + 1000, j1.faults.unwrap().seed);
        assert_eq!(j0.mode, j1.mode);
        assert_eq!(j0.watchdog, Some(5_000_000));
    }

    #[test]
    fn failure_records_carry_the_supervision_verdict() {
        let shard = Shard {
            id: 3,
            scenario: 1,
            workload: Workload::Gzip,
            rep: 0,
        };
        let failure = JobFailure {
            kind: JobErrorKind::Panic,
            message: "panic: boom".into(),
            panic_payload: Some("boom".into()),
        };
        let line = record_line(
            &shard,
            "l",
            Err(FailureInfo {
                failure: &failure,
                attempts: 3,
                quarantined: true,
            }),
        );
        let j = Json::parse(&line).expect("record parses");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("ekind").and_then(Json::as_str), Some("panic"));
        assert_eq!(j.get("attempts").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("quarantined").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("panic").and_then(Json::as_str), Some("boom"));

        let mut records = BTreeMap::new();
        records.insert(3, line);
        let (failed, quarantined) = failed_records(&records);
        assert_eq!(failed.len(), 1);
        assert_eq!(quarantined.len(), 1);
        assert_eq!(failed[0].kind, JobErrorKind::Panic);
        assert_eq!(failed[0].panic_payload.as_deref(), Some("boom"));
    }

    #[test]
    fn report_text_is_a_pure_function_of_the_records() {
        let spec = tiny_spec();
        let mut records = BTreeMap::new();
        records.insert(
            0,
            r#"{"kind":"shard","id":0,"scenario":0,"rep":0,"label":"l","ok":false,"error":"boom"}"#
                .to_owned(),
        );
        let a = report_text(&spec, 7, &records);
        let b = report_text(&spec, 7, &records);
        assert_eq!(a, b);
        assert!(a.contains("\"failed\":1"));
        let parsed = Json::parse(a.trim_end()).expect("report is valid json");
        assert_eq!(
            parsed.get("fingerprint").and_then(Json::as_str),
            Some("0000000000000007")
        );
    }
}
