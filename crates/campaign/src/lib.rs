#![warn(missing_docs)]

//! # redsim-campaign
//!
//! A fault-injection campaign runner built for interruption: it
//! enumerates a deterministic list of *shards* (one simulation per
//! `(scenario, workload, fault-seed)` cell), fans them across worker
//! threads through the bench [`Harness`], and checkpoints every
//! completed shard to an append-only JSONL *progress manifest* so a
//! killed campaign resumes where it stopped.
//!
//! Robustness properties, by construction rather than by testing luck:
//!
//! * **Deterministic shard list** — [`CampaignSpec::shards`] derives
//!   the full grid from the spec alone; the spec's canonical JSON is
//!   hashed ([`CampaignSpec::fingerprint`]) into the manifest header so
//!   a resume against a *different* campaign is rejected, never merged.
//! * **Per-shard isolation** — a shard that panics or returns a
//!   simulation error is recorded as a structured failure
//!   (`"ok":false`) and the remaining shards still run
//!   ([`Harness::try_sweep_with`] wraps each job in `catch_unwind`).
//! * **Livelock containment** — the spec's watchdog deadline bounds
//!   every shard in simulated cycles; a tripped watchdog classifies the
//!   shard's pending faults as `Hang` and completes normally.
//! * **Byte-identical reports** — progress lines land in completion
//!   order (thread-schedule dependent) but each line's *content* is
//!   deterministic, and the final report embeds the record lines sorted
//!   by shard id. Any thread count, and any interrupt/resume split,
//!   produces the identical report file.
//! * **Torn-tail tolerance** — a partial trailing line (the process was
//!   killed mid-write) is discarded on resume and its shard re-runs;
//!   resume also rewrites the manifest (via a temp file + rename) so
//!   the torn bytes never corrupt subsequent appends.

use std::collections::BTreeMap;
use std::fs;
use std::hash::Hasher;
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use redsim_bench::Harness;
pub use redsim_bench::{Job, JobError};
use redsim_core::{
    ExecMode, FaultConfig, FaultLifecycle, FlightRecorder, ForwardingPolicy, Histogram,
    MachineConfig, SimStats, Simulator, SliceSource, WindowSample,
};
use redsim_util::hash::FxHasher;
use redsim_util::Json;
use redsim_workloads::Workload;

/// One fault-injection scenario: an execution mode plus where and how
/// often to strike.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short stable name, used in shard labels and the report summary.
    pub name: String,
    /// Execution mode under test.
    pub mode: ExecMode,
    /// Strike sites and rates (replica `r` shifts `seed` by `1000·r`).
    pub faults: FaultConfig,
    /// Forwarding policy — the §3.4 shared-bus escapes exist only under
    /// [`ForwardingPolicy::PrimaryToBoth`].
    pub forwarding: ForwardingPolicy,
}

/// The full, self-describing campaign definition. Everything the
/// runner does — the shard list, each shard's job, the manifest
/// fingerprint — derives deterministically from this value.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The scenarios to sweep.
    pub scenarios: Vec<Scenario>,
    /// The workloads each scenario runs over.
    pub workloads: Vec<Workload>,
    /// Fault-seed replicas per `(scenario, workload)` cell.
    pub seeds: u32,
    /// Use the tiny workload instances.
    pub quick: bool,
    /// Per-shard watchdog deadline in simulated cycles; a shard that
    /// reaches it resolves pending faults as `Hang` instead of spinning
    /// forever.
    pub watchdog: Option<u64>,
    /// Windowed-metrics collection: `Some(n)` samples each shard's IPC
    /// time series every `n` simulated cycles, records the per-window
    /// milli-IPC values in the manifest, and aggregates them into
    /// per-scenario percentile summaries in the report. `None` keeps
    /// the manifest metrics-free.
    pub metrics_window: Option<u64>,
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in the deterministic shard list (the manifest key).
    pub id: usize,
    /// Index into [`CampaignSpec::scenarios`].
    pub scenario: usize,
    /// The workload this shard simulates.
    pub workload: Workload,
    /// Fault-seed replica number (`0..spec.seeds`).
    pub rep: u64,
}

impl CampaignSpec {
    /// The deterministic shard list: scenarios × workloads × replicas,
    /// in declaration order.
    #[must_use]
    pub fn shards(&self) -> Vec<Shard> {
        let mut out = Vec::new();
        for (si, _) in self.scenarios.iter().enumerate() {
            for &w in &self.workloads {
                for rep in 0..u64::from(self.seeds) {
                    out.push(Shard {
                        id: out.len(),
                        scenario: si,
                        workload: w,
                        rep,
                    });
                }
            }
        }
        out
    }

    /// The shard's human-readable label (`scenario/workload#sN`).
    #[must_use]
    pub fn label(&self, shard: &Shard) -> String {
        format!(
            "{}/{}#s{}",
            self.scenarios[shard.scenario].name,
            shard.workload.name(),
            shard.rep
        )
    }

    /// Builds the bench [`Job`] for one shard.
    #[must_use]
    pub fn job(&self, shard: &Shard) -> Job {
        let sc = &self.scenarios[shard.scenario];
        let mut cfg = MachineConfig::paper_baseline();
        cfg.forwarding = sc.forwarding;
        let faults = FaultConfig {
            seed: sc.faults.seed + 1000 * shard.rep,
            ..sc.faults
        };
        let mut job = Job::new(shard.workload, sc.mode, &cfg).with_faults(faults);
        if let Some(w) = self.watchdog {
            job = job.with_watchdog(w);
        }
        if let Some(mw) = self.metrics_window {
            job = job.with_metrics_window(mw);
        }
        job
    }

    /// Canonical JSON rendering of the spec — the fingerprint input.
    #[must_use]
    pub fn canonical(&self) -> String {
        let scenarios: Json = self
            .scenarios
            .iter()
            .map(|s| {
                Json::obj()
                    .field("name", s.name.as_str())
                    .field("mode", format!("{:?}", s.mode).as_str())
                    .field("fu_rate", s.faults.fu_rate)
                    .field("forward_rate", s.faults.forward_rate)
                    .field("irb_rate", s.faults.irb_rate)
                    .field("seed", s.faults.seed)
                    .field("forwarding", format!("{:?}", s.forwarding).as_str())
            })
            .collect();
        let workloads: Json = self
            .workloads
            .iter()
            .map(|w| Json::from(w.name()))
            .collect();
        let mut spec = Json::obj()
            .field("scenarios", scenarios)
            .field("workloads", workloads)
            .field("seeds", u64::from(self.seeds))
            .field("quick", self.quick);
        if let Some(w) = self.watchdog {
            spec = spec.field("watchdog", w);
        }
        if let Some(mw) = self.metrics_window {
            spec = spec.field("metrics_window", mw);
        }
        spec.to_string()
    }

    /// A deterministic 64-bit fingerprint of the canonical spec. Stored
    /// in the manifest header; a resume whose spec hashes differently
    /// is rejected instead of silently mixing two campaigns.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(self.canonical().as_bytes());
        h.finish()
    }
}

/// How to run a campaign: parallelism, resume behaviour and file
/// placement.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads for the shard sweep.
    pub threads: usize,
    /// Reuse an existing progress manifest, re-running only the shards
    /// it does not record.
    pub resume: bool,
    /// Test hook: complete at most this many *new* shards, then return
    /// [`CampaignOutcome::Interrupted`] (the binaries exit with code 3).
    pub interrupt_after: Option<usize>,
    /// The append-only JSONL progress manifest.
    pub progress_path: PathBuf,
    /// The final report (written only when every shard is recorded).
    pub report_path: PathBuf,
    /// When set, every shard whose watchdog fired is replayed under a
    /// flight recorder and its trace tail dumped to a sidecar file.
    pub hang_dumps: Option<HangDumpOptions>,
}

/// Where and how large the hang flight-recorder sidecars are.
#[derive(Debug, Clone)]
pub struct HangDumpOptions {
    /// Sidecar base path; shard `N` dumps to `<base>.hang-N.trace.json`.
    pub base: PathBuf,
    /// Flight-recorder capacity: the newest events kept from the replay.
    pub capacity: usize,
}

/// The sidecar path for one hung shard under `base`.
#[must_use]
pub fn hang_trace_path(base: &Path, shard_id: usize) -> PathBuf {
    PathBuf::from(format!("{}.hang-{shard_id}.trace.json", base.display()))
}

/// Campaign failure: I/O trouble or a manifest that does not belong to
/// this campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem error on the manifest or report.
    Io(std::io::Error),
    /// The progress manifest exists but its header does not match this
    /// spec (different fingerprint or shard count), or a record is
    /// out of range.
    Mismatch(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign i/o error: {e}"),
            CampaignError::Mismatch(m) => write!(f, "campaign manifest mismatch: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// A completed campaign: every shard recorded, report written.
#[derive(Debug)]
pub struct CampaignReport {
    /// The spec fingerprint the manifest carries.
    pub fingerprint: u64,
    /// Verbatim record lines, sorted by shard id (dense `0..shards`).
    pub records: Vec<String>,
    /// Shards recorded as failed (`"ok":false`).
    pub failed: Vec<JobError>,
    /// The exact report text written to `report_path`.
    pub report: String,
    /// Flight-recorder sidecars written for hung shards (empty unless
    /// [`CampaignOptions::hang_dumps`] was set and a watchdog fired).
    pub hang_traces: Vec<PathBuf>,
}

/// What a [`run_campaign`] call achieved.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// All shards recorded; the final report was written.
    Complete(CampaignReport),
    /// Stopped by `interrupt_after` with shards still pending.
    Interrupted {
        /// Shards recorded in the manifest so far.
        completed: usize,
        /// Total shards in the campaign.
        total: usize,
    },
}

fn header_line(fingerprint: u64, shards: usize) -> String {
    Json::obj()
        .field("kind", "header")
        .field("fingerprint", format!("{fingerprint:016x}").as_str())
        .field("shards", shards)
        .to_string()
}

fn lifecycle_json(l: &FaultLifecycle) -> Json {
    Json::obj()
        .field("injected", l.injected)
        .field("detected", l.detected)
        .field("masked", l.masked)
        .field("silent", l.silent)
        .field("hung", l.hung)
        .field("detection_latency_sum", l.detection_latency_sum)
        .field("detection_latency_max", l.detection_latency_max)
        .field(
            "latency_histogram",
            l.latency_histogram
                .iter()
                .map(|&b| Json::from(b))
                .collect::<Json>(),
        )
        .field("squash_depth_sum", l.squash_depth_sum)
        .field("refetch_penalty_sum", l.refetch_penalty_sum)
}

/// The deterministic record line for one completed shard. Successful
/// shards that ran with a metrics window append their per-window
/// milli-IPC series (integers — exactly mergeable downstream).
fn record_line(
    shard: &Shard,
    label: &str,
    result: Result<(&SimStats, &[WindowSample]), &str>,
) -> String {
    let base = Json::obj()
        .field("kind", "shard")
        .field("id", shard.id)
        .field("scenario", shard.scenario)
        .field("rep", shard.rep)
        .field("label", label);
    match result {
        Ok((s, windows)) => {
            let mut j = base
                .field("ok", true)
                .field("cycles", s.cycles)
                .field("committed_insts", s.committed_insts)
                .field("watchdog_fired", s.watchdog_fired)
                .field("active_commit_cycles", s.active_commit_cycles)
                .field("stalls", s.stalls.to_json())
                .field("injected_fu", s.faults.injected_fu)
                .field("injected_forward", s.faults.injected_forward)
                .field("injected_irb", s.faults.injected_irb)
                .field("legacy_detected", s.faults.detected)
                .field("legacy_escaped", s.faults.escaped)
                .field("silent_sie", s.faults.silent_sie)
                .field("lifecycle", lifecycle_json(&s.fault_lifecycle));
            if !windows.is_empty() {
                j = j.field(
                    "win_milli_ipc",
                    windows
                        .iter()
                        .map(|w| Json::from(w.milli_ipc()))
                        .collect::<Json>(),
                );
            }
            j.to_string()
        }
        Err(msg) => base.field("ok", false).field("error", msg).to_string(),
    }
}

/// Parses a progress manifest back into `id → verbatim line`.
///
/// Unparseable lines (a torn tail from a kill mid-write) are skipped —
/// their shards simply re-run. Duplicate ids keep the *last* line, so a
/// shard recorded again after a torn first attempt settles on the
/// complete record.
fn parse_manifest(
    text: &str,
    expect_header: &str,
    shards: usize,
) -> Result<BTreeMap<usize, String>, CampaignError> {
    let mut lines = text.lines();
    match lines.next() {
        None => return Ok(BTreeMap::new()),
        Some(h) if h == expect_header => {}
        Some(h) => {
            return Err(CampaignError::Mismatch(format!(
                "header {h:?} does not match this campaign (expected {expect_header:?})"
            )));
        }
    }
    let mut done = BTreeMap::new();
    for line in lines {
        let Ok(j) = Json::parse(line) else {
            continue; // torn tail / partial write
        };
        if j.get("kind").and_then(Json::as_str) != Some("shard") {
            continue;
        }
        let Some(id) = j.get("id").and_then(Json::as_u64) else {
            continue;
        };
        let id = id as usize;
        if id >= shards {
            return Err(CampaignError::Mismatch(format!(
                "record id {id} out of range for {shards} shards"
            )));
        }
        done.insert(id, line.to_owned());
    }
    Ok(done)
}

/// Aggregates the sorted record lines into the per-scenario summary
/// embedded in the report.
fn summary_json(spec: &CampaignSpec, records: &BTreeMap<usize, String>) -> Json {
    struct Acc {
        injected: u64,
        detected: u64,
        masked: u64,
        silent: u64,
        hung: u64,
        latency_sum: u64,
        failed: u64,
        hangs_contained: u64,
        /// Per-window milli-IPC values across every shard of the
        /// scenario. Bucket-wise mergeable, so the percentiles are a
        /// pure function of the record set — byte-identical at any
        /// thread count or interrupt/resume split.
        ipc_hist: Histogram,
    }
    let mut accs: Vec<Acc> = spec
        .scenarios
        .iter()
        .map(|_| Acc {
            injected: 0,
            detected: 0,
            masked: 0,
            silent: 0,
            hung: 0,
            latency_sum: 0,
            failed: 0,
            hangs_contained: 0,
            ipc_hist: Histogram::default(),
        })
        .collect();
    for line in records.values() {
        let j = Json::parse(line).expect("records we wrote parse back");
        let si = j.get("scenario").and_then(Json::as_u64).expect("scenario") as usize;
        let acc = &mut accs[si];
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            acc.failed += 1;
            continue;
        }
        if j.get("watchdog_fired").and_then(Json::as_bool) == Some(true) {
            acc.hangs_contained += 1;
        }
        let l = j.get("lifecycle").expect("ok records carry lifecycle");
        let g = |k: &str| l.get(k).and_then(Json::as_u64).unwrap_or(0);
        acc.injected += g("injected");
        acc.detected += g("detected");
        acc.masked += g("masked");
        acc.silent += g("silent");
        acc.hung += g("hung");
        acc.latency_sum += g("detection_latency_sum");
        if let Some(wins) = j.get("win_milli_ipc").and_then(Json::items) {
            for w in wins {
                acc.ipc_hist.record(w.as_u64().unwrap_or(0));
            }
        }
    }
    spec.scenarios
        .iter()
        .zip(&accs)
        .map(|(sc, a)| {
            let vulnerable = a.detected + a.silent;
            let mut j = Json::obj()
                .field("scenario", sc.name.as_str())
                .field("injected", a.injected)
                .field("detected", a.detected)
                .field("masked", a.masked)
                .field("silent", a.silent)
                .field("hung", a.hung)
                .field(
                    "coverage",
                    if vulnerable > 0 {
                        a.detected as f64 / vulnerable as f64
                    } else {
                        1.0
                    },
                )
                .field(
                    "avf",
                    if a.injected > 0 {
                        vulnerable as f64 / a.injected as f64
                    } else {
                        0.0
                    },
                )
                .field(
                    "mean_detection_latency",
                    if a.detected > 0 {
                        a.latency_sum as f64 / a.detected as f64
                    } else {
                        0.0
                    },
                )
                .field("failed_shards", a.failed)
                .field("watchdog_shards", a.hangs_contained);
            if a.ipc_hist.count() > 0 {
                j = j.field(
                    "win_milli_ipc",
                    Json::obj()
                        .field("windows", a.ipc_hist.count())
                        .field("p50", a.ipc_hist.percentile(50))
                        .field("p90", a.ipc_hist.percentile(90))
                        .field("p99", a.ipc_hist.percentile(99)),
                );
            }
            j
        })
        .collect()
}

/// Assembles the final report text: header fields, the per-scenario
/// summary, then every record line verbatim, sorted by shard id. Pure
/// function of the record set — hence byte-identical however the
/// campaign was scheduled, interrupted or resumed.
fn report_text(spec: &CampaignSpec, fingerprint: u64, records: &BTreeMap<usize, String>) -> String {
    let failed = records
        .values()
        .filter(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| j.get("ok").and_then(Json::as_bool))
                != Some(true)
        })
        .count();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"fingerprint\":\"{fingerprint:016x}\",\"shards\":{},\"failed\":{failed},\"summary\":{},\"records\":[",
        records.len(),
        summary_json(spec, records),
    ));
    for (i, line) in records.values().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push_str("]}\n");
    out
}

/// Extracts the failed-shard list from the sorted records.
fn failed_records(records: &BTreeMap<usize, String>) -> Vec<JobError> {
    records
        .iter()
        .filter_map(|(&id, line)| {
            let j = Json::parse(line).ok()?;
            if j.get("ok").and_then(Json::as_bool) == Some(true) {
                return None;
            }
            Some(JobError {
                index: id,
                label: j
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                message: j
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unrecorded error")
                    .to_owned(),
            })
        })
        .collect()
}

/// Runs (or resumes) a campaign.
///
/// Completed shards checkpoint to `opts.progress_path` as they finish;
/// when every shard is recorded the final report is written to
/// `opts.report_path` and returned. With `opts.interrupt_after`
/// set, at most that many new shards complete before the run stops
/// with [`CampaignOutcome::Interrupted`].
///
/// # Errors
///
/// [`CampaignError::Io`] on filesystem trouble, and
/// [`CampaignError::Mismatch`] when resuming against a manifest written
/// by a different campaign.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let shards = spec.shards();
    let fingerprint = spec.fingerprint();
    let header = header_line(fingerprint, shards.len());

    if let Some(dir) = opts.progress_path.parent() {
        fs::create_dir_all(dir)?;
    }
    if let Some(dir) = opts.report_path.parent() {
        fs::create_dir_all(dir)?;
    }

    let mut done: BTreeMap<usize, String> = BTreeMap::new();
    if opts.resume {
        match fs::read_to_string(&opts.progress_path) {
            Ok(text) => done = parse_manifest(&text, &header, shards.len())?,
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }

    // (Re)write the manifest cleanly — header plus every known-good
    // record — via a temp file and rename, so a torn tail from a
    // previous kill never corrupts the lines appended next.
    {
        let tmp = opts.progress_path.with_extension("tmp");
        let mut f = fs::File::create(&tmp)?;
        writeln!(f, "{header}")?;
        for line in done.values() {
            writeln!(f, "{line}")?;
        }
        f.sync_all()?;
        fs::rename(&tmp, &opts.progress_path)?;
    }

    let mut pending: Vec<Shard> = shards
        .iter()
        .filter(|s| !done.contains_key(&s.id))
        .copied()
        .collect();
    let interrupted = match opts.interrupt_after {
        Some(k) if pending.len() > k => {
            pending.truncate(k);
            true
        }
        _ => false,
    };

    if !pending.is_empty() {
        let jobs: Vec<Job> = pending.iter().map(|s| spec.job(s)).collect();
        let progress = Mutex::new(
            fs::OpenOptions::new()
                .append(true)
                .open(&opts.progress_path)?,
        );
        let fresh: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let mut h = Harness::new(spec.quick);
        h.try_sweep_with(&jobs, opts.threads, |i, result| {
            let shard = &pending[i];
            let label = spec.label(shard);
            let line = match result {
                Ok((stats, windows)) => record_line(shard, &label, Ok((stats, windows))),
                Err(err) => record_line(shard, &label, Err(&err.message)),
            };
            {
                let mut f = progress.lock().expect("progress writer lock");
                writeln!(f, "{line}").expect("progress manifest append");
                f.flush().expect("progress manifest flush");
            }
            fresh
                .lock()
                .expect("record list lock")
                .push((shard.id, line));
        });
        for (id, line) in fresh.into_inner().expect("record list lock") {
            done.insert(id, line);
        }
    }

    if interrupted || done.len() < shards.len() {
        return Ok(CampaignOutcome::Interrupted {
            completed: done.len(),
            total: shards.len(),
        });
    }

    let report = report_text(spec, fingerprint, &done);
    fs::write(&opts.report_path, &report)?;

    let mut hang_traces = Vec::new();
    if let Some(dump) = &opts.hang_dumps {
        let mut h = Harness::new(spec.quick);
        for (&id, line) in &done {
            let Ok(j) = Json::parse(line) else { continue };
            if j.get("watchdog_fired").and_then(Json::as_bool) != Some(true) {
                continue;
            }
            if let Some(p) = dump_hang_trace(spec, &shards[id], dump, &mut h) {
                hang_traces.push(p);
            }
        }
    }

    Ok(CampaignOutcome::Complete(CampaignReport {
        fingerprint,
        records: done.values().cloned().collect(),
        failed: failed_records(&done),
        report,
        hang_traces,
    }))
}

/// Replays one hung shard deterministically under a flight recorder and
/// writes its Chrome-trace sidecar. The replay is single-threaded and a
/// pure function of the shard's job, so the sidecar bytes are identical
/// however the campaign itself was scheduled. Best-effort post-mortem:
/// a replay or I/O failure skips the sidecar, never fails the campaign.
fn dump_hang_trace(
    spec: &CampaignSpec,
    shard: &Shard,
    dump: &HangDumpOptions,
    harness: &mut Harness,
) -> Option<PathBuf> {
    let path = hang_trace_path(&dump.base, shard.id);
    if path.exists() {
        return Some(path); // resumed campaign: the dump is already on disk
    }
    let job = spec.job(shard);
    let trace = harness.try_trace_for(job.workload, job.input_seed).ok()?;
    let mut sim = Simulator::new(job.config.clone(), job.mode);
    if let Some(fc) = job.faults {
        sim = sim.try_with_faults(fc).ok()?;
    }
    if let Some(w) = job.watchdog {
        sim = sim.with_watchdog(w);
    }
    let mut recorder = FlightRecorder::new(dump.capacity);
    let mut source = SliceSource::new(&trace);
    // The shard already ran to classification once; the replay exists
    // only for its event tail, so the stats result is discarded.
    let _ = sim.run_source_traced(&mut source, &mut recorder);
    fs::write(&path, format!("{}\n", recorder.to_chrome_json())).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            scenarios: vec![
                Scenario {
                    name: "die/fu".into(),
                    mode: ExecMode::Die,
                    faults: FaultConfig {
                        fu_rate: 2e-4,
                        seed: 11,
                        ..FaultConfig::none()
                    },
                    forwarding: ForwardingPolicy::PrimaryToBoth,
                },
                Scenario {
                    name: "sie/fu".into(),
                    mode: ExecMode::Sie,
                    faults: FaultConfig {
                        fu_rate: 2e-4,
                        seed: 11,
                        ..FaultConfig::none()
                    },
                    forwarding: ForwardingPolicy::PrimaryToBoth,
                },
            ],
            workloads: vec![Workload::Gzip],
            seeds: 2,
            quick: true,
            watchdog: Some(5_000_000),
            metrics_window: None,
        }
    }

    #[test]
    fn shard_list_is_dense_and_deterministic() {
        let spec = tiny_spec();
        let shards = spec.shards();
        assert_eq!(shards.len(), 4);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id, i);
        }
        assert_eq!(shards, spec.shards());
        assert_eq!(spec.label(&shards[1]), "die/fu/gzip#s1");
    }

    #[test]
    fn fingerprint_tracks_the_spec() {
        let spec = tiny_spec();
        let mut other = tiny_spec();
        other.seeds = 3;
        assert_ne!(spec.fingerprint(), other.fingerprint());
        assert_eq!(spec.fingerprint(), tiny_spec().fingerprint());
        let mut windowed = tiny_spec();
        windowed.metrics_window = Some(4096);
        assert_ne!(spec.fingerprint(), windowed.fingerprint());
    }

    #[test]
    fn window_series_lands_in_records_and_summary_percentiles() {
        let spec = tiny_spec();
        let shard = Shard {
            id: 0,
            scenario: 0,
            workload: Workload::Gzip,
            rep: 0,
        };
        let stats = SimStats::default();
        let w = WindowSample {
            end_cycle: 1000,
            counters: redsim_core::WindowCounters {
                committed_insts: 1500, // 1500 milli-IPC over 1000 cycles
                ..Default::default()
            },
            ..Default::default()
        };
        let line = record_line(&shard, "l", Ok((&stats, &[w, w, w])));
        assert!(line.contains("\"win_milli_ipc\":[1500,1500,1500]"));

        let mut records = BTreeMap::new();
        records.insert(0, line);
        let summary = summary_json(&spec, &records).to_string();
        assert!(summary.contains("\"win_milli_ipc\":{\"windows\":3,\"p50\":1500"));

        // Without windows the summary stays metrics-free.
        let bare = record_line(&shard, "l", Ok((&stats, &[])));
        assert!(!bare.contains("win_milli_ipc"));
        records.insert(0, bare);
        assert!(!summary_json(&spec, &records)
            .to_string()
            .contains("win_milli_ipc"));
    }

    #[test]
    fn replica_shifts_the_fault_seed_only() {
        let spec = tiny_spec();
        let shards = spec.shards();
        let j0 = spec.job(&shards[0]);
        let j1 = spec.job(&shards[1]);
        assert_eq!(j0.faults.unwrap().seed + 1000, j1.faults.unwrap().seed);
        assert_eq!(j0.mode, j1.mode);
        assert_eq!(j0.watchdog, Some(5_000_000));
    }

    #[test]
    fn manifest_parser_skips_torn_tail_and_rejects_foreign_headers() {
        let header = header_line(0xabcd, 4);
        let rec = r#"{"kind":"shard","id":2,"ok":false,"error":"x"}"#;
        let text = format!("{header}\n{rec}\n{{\"kind\":\"sha");
        let done = parse_manifest(&text, &header, 4).expect("parses");
        assert_eq!(done.len(), 1);
        assert_eq!(done[&2], rec);

        let foreign = header_line(0x1234, 4);
        assert!(matches!(
            parse_manifest(&text, &foreign, 4),
            Err(CampaignError::Mismatch(_))
        ));
        assert!(matches!(
            parse_manifest(&format!("{header}\n{rec}\n"), &header, 2),
            Err(CampaignError::Mismatch(_))
        ));
    }

    #[test]
    fn report_text_is_a_pure_function_of_the_records() {
        let spec = tiny_spec();
        let mut records = BTreeMap::new();
        records.insert(
            0,
            r#"{"kind":"shard","id":0,"scenario":0,"rep":0,"label":"l","ok":false,"error":"boom"}"#
                .to_owned(),
        );
        let a = report_text(&spec, 7, &records);
        let b = report_text(&spec, 7, &records);
        assert_eq!(a, b);
        assert!(a.contains("\"failed\":1"));
        let parsed = Json::parse(a.trim_end()).expect("report is valid json");
        assert_eq!(
            parsed.get("fingerprint").and_then(Json::as_str),
            Some("0000000000000007")
        );
    }
}
