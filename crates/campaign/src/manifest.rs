//! Crash-consistent manifest framing.
//!
//! A version-2 progress manifest is JSONL with one *frame* per record:
//!
//! ```text
//! {"kind":"header","version":2,"fingerprint":"00ab…","shards":28}
//! {"crc":"9f3c21d07a5e448b","rec":{"kind":"shard","id":0,…}}
//! {"crc":"04d1fe2b93c07a66","rec":{"kind":"shard","id":3,…}}
//! ```
//!
//! The `crc` field is the [`fx64`] checksum of the exact payload bytes
//! between `"rec":` and the closing brace, rendered as 16 lowercase hex
//! digits. Because the frame prefix is fixed-width, verification never
//! needs a JSON parse: slice, hash, compare. Each frame is still a
//! valid JSON object, so `jq` keeps working on manifests.
//!
//! The checksum is what lets resume distinguish the two corruption
//! shapes that matter:
//!
//! * **Torn tail** — the process died mid-append, leaving a partial (or
//!   checksum-failing) *last* line. Expected under kills; the line is
//!   discarded and its shard re-runs.
//! * **Interior corruption** — a frame *before* the last line fails the
//!   checksum or does not parse. That is never produced by our append
//!   discipline (a latched write error stops all further appends, so
//!   only the tail can tear) and means the file was damaged at rest.
//!   Resume refuses with a typed [`CampaignError::Corrupt`] naming the
//!   1-based line, rather than silently re-running shards whose results
//!   exist.

use std::collections::BTreeMap;

use redsim_util::hash::fx64;
use redsim_util::Json;

use crate::CampaignError;

/// Manifest format version. Bumped to 2 when record frames gained
/// per-record checksums; a version-1 manifest fails the header match
/// and is reported as a mismatch, never half-parsed.
pub const MANIFEST_VERSION: u64 = 2;

/// Length of the fixed frame prefix `{"crc":"<16 hex>","rec":`.
const FRAME_PREFIX_LEN: usize = 8 + 16 + 8;

/// The manifest header line for a campaign.
#[must_use]
pub fn header_line(fingerprint: u64, shards: usize) -> String {
    Json::obj()
        .field("kind", "header")
        .field("version", MANIFEST_VERSION)
        .field("fingerprint", format!("{fingerprint:016x}").as_str())
        .field("shards", shards)
        .to_string()
}

/// Wraps a record payload in its checksummed frame.
#[must_use]
pub fn frame_record(payload: &str) -> String {
    format!(
        "{{\"crc\":\"{:016x}\",\"rec\":{payload}}}",
        fx64(payload.as_bytes())
    )
}

/// Validates one frame and returns the payload slice.
///
/// # Errors
///
/// A human-readable description of the defect (bad prefix, bad hex,
/// checksum mismatch) — the caller decides whether the position makes
/// it a tolerable torn tail or fatal interior corruption.
pub fn unframe_record(line: &str) -> Result<&str, String> {
    let Some(rest) = line.strip_prefix("{\"crc\":\"") else {
        return Err("frame does not start with {\"crc\":\"".to_owned());
    };
    if rest.len() < 16 + 8 + 1 {
        return Err("frame truncated before the payload".to_owned());
    }
    let (hex, rest) = rest.split_at(16);
    let Ok(want) = u64::from_str_radix(hex, 16) else {
        return Err(format!("checksum field {hex:?} is not 16 hex digits"));
    };
    let Some(rest) = rest.strip_prefix("\",\"rec\":") else {
        return Err("frame missing \",\"rec\": after the checksum".to_owned());
    };
    let Some(payload) = rest.strip_suffix('}') else {
        return Err("frame missing its closing brace".to_owned());
    };
    let got = fx64(payload.as_bytes());
    if got != want {
        return Err(format!(
            "checksum mismatch: header says {want:016x}, payload hashes to {got:016x}"
        ));
    }
    debug_assert_eq!(line.len(), FRAME_PREFIX_LEN + payload.len() + 1);
    Ok(payload)
}

/// Parses a progress manifest back into `id → verbatim payload line`.
///
/// A frame that fails validation (or whose payload does not parse as a
/// shard record) is tolerated only as the *last* line — the torn tail
/// of a kill mid-append; its shard simply re-runs. The same defect on
/// an interior line is at-rest damage and yields
/// [`CampaignError::Corrupt`] naming the line. Duplicate ids keep the
/// last record, so a shard recorded again after a torn first attempt
/// settles on the complete record.
///
/// # Errors
///
/// [`CampaignError::Mismatch`] when the header belongs to a different
/// campaign or a record's id is out of range;
/// [`CampaignError::Corrupt`] on a damaged interior record.
pub fn parse_manifest(
    text: &str,
    expect_header: &str,
    shards: usize,
) -> Result<BTreeMap<usize, String>, CampaignError> {
    let mut lines = text.lines().enumerate().peekable();
    match lines.next() {
        None => return Ok(BTreeMap::new()),
        Some((_, h)) if h == expect_header => {}
        Some((_, h)) => {
            return Err(CampaignError::Mismatch(format!(
                "header {h:?} does not match this campaign (expected {expect_header:?})"
            )));
        }
    }
    let mut done = BTreeMap::new();
    while let Some((idx, line)) = lines.next() {
        let last = lines.peek().is_none();
        let defect = match unframe_record(line) {
            Err(d) => Some(d),
            Ok(payload) => match Json::parse(payload) {
                Err(e) => Some(format!("payload is not valid JSON: {e}")),
                Ok(j) => {
                    if j.get("kind").and_then(Json::as_str) != Some("shard") {
                        // A checksummed non-shard record is a format
                        // extension, not damage; skip it either way.
                        continue;
                    }
                    match j.get("id").and_then(Json::as_u64) {
                        None => Some("shard record has no id".to_owned()),
                        Some(id) => {
                            let id = id as usize;
                            if id >= shards {
                                return Err(CampaignError::Mismatch(format!(
                                    "record id {id} out of range for {shards} shards"
                                )));
                            }
                            done.insert(id, payload.to_owned());
                            None
                        }
                    }
                }
            },
        };
        if let Some(detail) = defect {
            if last {
                continue; // torn tail: the shard re-runs
            }
            return Err(CampaignError::Corrupt {
                line: idx + 1,
                detail,
            });
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REC0: &str = r#"{"kind":"shard","id":0,"scenario":0,"rep":0,"label":"l","ok":true}"#;
    const REC2: &str =
        r#"{"kind":"shard","id":2,"scenario":0,"rep":0,"label":"l","ok":false,"error":"x"}"#;

    #[test]
    fn frames_round_trip_and_stay_valid_json() {
        let framed = frame_record(REC0);
        assert_eq!(unframe_record(&framed).expect("valid frame"), REC0);
        let j = Json::parse(&framed).expect("frame is itself JSON");
        assert_eq!(
            j.get("rec")
                .and_then(|r| r.get("id"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn a_flipped_payload_byte_fails_the_checksum() {
        let framed = frame_record(REC0).replace("\"ok\":true", "\"ok\":false");
        let err = unframe_record(&framed).expect_err("corrupt");
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn torn_tail_is_tolerated_but_interior_damage_is_typed() {
        let header = header_line(0xabcd, 4);
        let good = frame_record(REC2);
        let torn = &frame_record(REC0)[..25];

        // Torn last line: skipped, the good record survives.
        let text = format!("{header}\n{good}\n{torn}");
        let done = parse_manifest(&text, &header, 4).expect("parses");
        assert_eq!(done.len(), 1);
        assert_eq!(done[&2], REC2);

        // The same damage on an interior line names line 2 (1-based).
        let text = format!("{header}\n{torn}\n{good}\n");
        match parse_manifest(&text, &header, 4) {
            Err(CampaignError::Corrupt { line, detail }) => {
                assert_eq!(line, 2);
                assert!(!detail.is_empty());
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A bit-flip in an interior payload is equally fatal.
        let flipped = frame_record(REC0).replace("\"ok\":true", "\"ok\":felse");
        let text = format!("{header}\n{flipped}\n{good}\n");
        assert!(matches!(
            parse_manifest(&text, &header, 4),
            Err(CampaignError::Corrupt { line: 2, .. })
        ));
    }

    #[test]
    fn foreign_headers_and_out_of_range_ids_are_mismatches() {
        let header = header_line(0xabcd, 4);
        let text = format!("{header}\n{}\n", frame_record(REC2));
        let foreign = header_line(0x1234, 4);
        assert!(matches!(
            parse_manifest(&text, &foreign, 4),
            Err(CampaignError::Mismatch(_))
        ));
        assert!(matches!(
            parse_manifest(&text, &header_line(0xabcd, 2), 2),
            Err(CampaignError::Mismatch(_))
        ));
    }

    #[test]
    fn duplicate_ids_keep_the_last_record() {
        let header = header_line(1, 4);
        let first = r#"{"kind":"shard","id":1,"ok":false,"error":"first"}"#;
        let second = r#"{"kind":"shard","id":1,"ok":true}"#;
        let text = format!(
            "{header}\n{}\n{}\n",
            frame_record(first),
            frame_record(second)
        );
        let done = parse_manifest(&text, &header, 4).expect("parses");
        assert_eq!(done[&1], second);
    }

    #[test]
    fn version_1_manifests_are_rejected_at_the_header() {
        let v1 = r#"{"kind":"header","fingerprint":"000000000000abcd","shards":4}"#;
        let header = header_line(0xabcd, 4);
        assert!(matches!(
            parse_manifest(&format!("{v1}\n"), &header, 4),
            Err(CampaignError::Mismatch(_))
        ));
    }
}
