//! Full fault-lifecycle coverage table: every §3.4 scenario classified
//! into the four-way lifecycle (detected / masked / silent / hang) with
//! AVF-style derived metrics, replicated across independent fault seeds.
//!
//! Runs as a resumable campaign: progress checkpoints to an append-only
//! JSONL manifest and `--resume` picks up a killed run, provably
//! producing the byte-identical final report.
//!
//! Flags on top of the shared bench CLI (`--quick`, `--json`,
//! `--threads N`, `--seeds N`):
//!
//! * `--out PATH` — base path for the campaign files (default
//!   `target/campaign/fig_coverage`); the manifest lands at
//!   `PATH.progress.jsonl`, the report at `PATH.report.json`;
//! * `--resume` — skip shards the manifest already records;
//! * `--interrupt-after K` — test hook: stop after `K` new shards with
//!   exit code 3;
//! * `--watchdog N` — per-shard deadline in simulated cycles (default
//!   50,000,000; livelocked shards classify pending faults as `Hang`);
//! * `--metrics-window N` — per-shard IPC time-series window in cycles
//!   (default 10,000; must be positive — `0` is a usage error, exit 2);
//! * `--fu-rate R` / `--forward-rate R` / `--irb-rate R` — override the
//!   strike rate of scenarios injecting at that site (validated, bad
//!   rates exit 2);
//! * `--retry-max N` — attempts per shard before quarantine (default 3);
//! * `--backoff-ms N` — base retry backoff in milliseconds (default 25,
//!   doubling per attempt, capped at 1s);
//! * `--host-deadline-ms N` — host wall-clock deadline per shard
//!   attempt (default none; distinct from `--watchdog`, which bounds
//!   *simulated* cycles);
//! * `--fsync MODE` — manifest durability: `always`, `critical`
//!   (default) or `never`;
//! * `--chaos-seed S` — chaos harness: route all campaign IO through a
//!   fault-injecting backend seeded with `S`;
//! * `--chaos-rate R` — per-op fault rate for the chaos backend
//!   (default 0.02);
//! * `--chaos-kill-after N` — chaos harness: emulate a SIGKILL at the
//!   `N`-th IO operation.
//!
//! Exit codes: 0 success; 1 failed shards; 2 usage/mismatch/corrupt
//! manifest; 3 interrupted (resume to continue); 4 completed with
//! quarantined shards; 5 host IO failure (resume to continue).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use redsim_bench::{emit, pm, Cli, Table};
use redsim_campaign::{
    exit_codes, run_campaign, CampaignError, CampaignOptions, CampaignOutcome, CampaignSpec,
    HangDumpOptions, Scenario,
};
use redsim_core::{
    ExecMode, FaultConfig, ForwardingPolicy, StallBreakdown, StallSummary, Throughput,
};
use redsim_util::io::{ChaosConfig, ChaosIo, FsyncPolicy, RealIo};
use redsim_util::Json;
use redsim_workloads::Workload;

fn rate_override(cli: &Cli, flag: &str) -> Option<f64> {
    let v = cli.value(flag)?;
    match v.parse::<f64>() {
        Ok(x) => Some(x),
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {v:?}");
            std::process::exit(2);
        }
    }
}

fn spec_from_cli(cli: &Cli) -> CampaignSpec {
    let shared = ForwardingPolicy::PrimaryToBoth;
    let per_stream = ForwardingPolicy::PerStream;
    let fu = FaultConfig {
        fu_rate: 2e-4,
        seed: 11,
        ..FaultConfig::none()
    };
    let irb = FaultConfig {
        irb_rate: 0.05,
        seed: 13,
        ..FaultConfig::none()
    };
    let bus = FaultConfig {
        forward_rate: 1e-4,
        seed: 17,
        ..FaultConfig::none()
    };
    let sc = |name: &str, mode, faults, forwarding| Scenario {
        name: name.to_owned(),
        mode,
        faults,
        forwarding,
    };
    let mut scenarios = vec![
        sc("sie/fu", ExecMode::Sie, fu, shared),
        sc("die/fu", ExecMode::Die, fu, shared),
        sc("die-irb/fu", ExecMode::DieIrb, fu, shared),
        sc("die-irb/irb", ExecMode::DieIrb, irb, shared),
        sc("die-irb/bus-shared", ExecMode::DieIrb, bus, shared),
        sc("die/bus-per-stream", ExecMode::Die, bus, per_stream),
        sc("die-irb/bus-per-stream", ExecMode::DieIrb, bus, per_stream),
    ];
    let (fu_o, fwd_o, irb_o) = (
        rate_override(cli, "--fu-rate"),
        rate_override(cli, "--forward-rate"),
        rate_override(cli, "--irb-rate"),
    );
    for s in &mut scenarios {
        if s.faults.fu_rate > 0.0 {
            if let Some(r) = fu_o {
                s.faults.fu_rate = r;
            }
        }
        if s.faults.forward_rate > 0.0 {
            if let Some(r) = fwd_o {
                s.faults.forward_rate = r;
            }
        }
        if s.faults.irb_rate > 0.0 {
            if let Some(r) = irb_o {
                s.faults.irb_rate = r;
            }
        }
        if let Err(e) = s.faults.validate() {
            eprintln!(
                "error: scenario {:?}: invalid fault configuration: {e}",
                s.name
            );
            std::process::exit(2);
        }
    }
    let watchdog = match cli.value("--watchdog") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("error: --watchdog expects a positive cycle count, got {v:?}");
                std::process::exit(2);
            }
        },
        None => Some(50_000_000),
    };
    // Parsed and validated by the shared CLI (`Cli::try_from_vec`
    // rejects 0 and non-integers at exit 2, like `--threads`).
    let metrics_window = Some(cli.metrics_window.unwrap_or(10_000));
    CampaignSpec {
        scenarios,
        workloads: vec![
            Workload::Gzip,
            Workload::Gcc,
            Workload::Twolf,
            Workload::Equake,
        ],
        seeds: cli.seeds,
        quick: cli.quick,
        watchdog,
        metrics_window,
    }
}

/// Parses an integer-valued flag or exits with the usage code.
fn int_flag<T: std::str::FromStr>(cli: &Cli, flag: &str, what: &str) -> Option<T> {
    cli.value(flag).map(|v| match v.parse::<T>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects {what}, got {v:?}");
            std::process::exit(exit_codes::USAGE);
        }
    })
}

fn main() {
    let cli = Cli::parse();
    let spec = spec_from_cli(&cli);
    let out = PathBuf::from(cli.value("--out").unwrap_or("target/campaign/fig_coverage"));
    let mut opts = CampaignOptions::new(
        out.with_extension("progress.jsonl"),
        out.with_extension("report.json"),
    );
    opts.threads = cli.threads;
    opts.resume = cli.flag("--resume");
    opts.interrupt_after = int_flag(&cli, "--interrupt-after", "a shard count");
    opts.hang_dumps = Some(HangDumpOptions {
        base: out.clone(),
        capacity: 1 << 15,
    });
    if let Some(n) = int_flag::<u32>(&cli, "--retry-max", "a positive attempt count") {
        if n == 0 {
            eprintln!("error: --retry-max expects a positive attempt count, got \"0\"");
            std::process::exit(exit_codes::USAGE);
        }
        opts.retry.max_attempts = n;
    }
    if let Some(ms) = int_flag::<u64>(&cli, "--backoff-ms", "milliseconds") {
        opts.retry.backoff = Duration::from_millis(ms);
    }
    opts.host_deadline =
        int_flag::<u64>(&cli, "--host-deadline-ms", "milliseconds").map(Duration::from_millis);
    if let Some(mode) = cli.value("--fsync") {
        opts.fsync = FsyncPolicy::parse(mode).unwrap_or_else(|| {
            eprintln!("error: --fsync expects always|critical|never, got {mode:?}");
            std::process::exit(exit_codes::USAGE);
        });
    }
    if let Some(seed) = int_flag::<u64>(&cli, "--chaos-seed", "a seed") {
        let rate = match cli.value("--chaos-rate") {
            None => 0.02,
            Some(v) => match v.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => r,
                _ => {
                    eprintln!("error: --chaos-rate expects a rate in [0,1], got {v:?}");
                    std::process::exit(exit_codes::USAGE);
                }
            },
        };
        let cfg = ChaosConfig {
            kill_after_ops: int_flag(&cli, "--chaos-kill-after", "an op count"),
            ..ChaosConfig::uniform(seed, rate)
        };
        opts.io = Arc::new(ChaosIo::new(Arc::new(RealIo), cfg));
    }

    let report = match run_campaign(&spec, &opts) {
        Ok(CampaignOutcome::Complete(r)) => r,
        Ok(CampaignOutcome::Interrupted { completed, total }) => {
            eprintln!(
                "campaign interrupted: {completed}/{total} shards recorded in {}; \
                 rerun with --resume to continue",
                opts.progress_path.display()
            );
            std::process::exit(exit_codes::INTERRUPTED);
        }
        Err(e @ CampaignError::Io(_)) => {
            eprintln!("error: {e} (rerun with --resume to continue)");
            std::process::exit(exit_codes::IO);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_codes::USAGE);
        }
    };

    // Campaign-wide stall accounting, folded back out of the manifest
    // records (the shards ran inside `run_campaign`, not our harness).
    let mut stalls = StallSummary::default();
    for line in &report.records {
        let j = Json::parse(line).expect("report records parse");
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            continue;
        }
        stalls.cycles += j.get("cycles").and_then(Json::as_u64).unwrap_or(0);
        stalls.productive_cycles += j
            .get("active_commit_cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if let Some(b) = j.get("stalls").and_then(StallBreakdown::from_json) {
            stalls.stalls.add(&b);
        }
    }

    // Per-scenario rows, aggregated per replica across workloads so
    // `--seeds N` yields N samples per cell (mean±stddev via `pm`).
    let seeds = spec.seeds as usize;
    let mut table = Table::new(vec![
        "scenario",
        "injected",
        "detected",
        "masked",
        "silent",
        "hang",
        "coverage",
        "avf",
        "mean-det-lat",
    ]);
    for (si, sc) in spec.scenarios.iter().enumerate() {
        let mut injected = vec![0u64; seeds];
        let mut detected = vec![0u64; seeds];
        let mut masked = vec![0u64; seeds];
        let mut silent = vec![0u64; seeds];
        let mut hung = vec![0u64; seeds];
        let mut lat_sum = vec![0u64; seeds];
        for line in &report.records {
            let j = Json::parse(line).expect("report records parse");
            if j.get("scenario").and_then(Json::as_u64) != Some(si as u64)
                || j.get("ok").and_then(Json::as_bool) != Some(true)
            {
                continue;
            }
            let rep = j.get("rep").and_then(Json::as_u64).expect("rep") as usize;
            let l = j.get("lifecycle").expect("lifecycle");
            let g = |k: &str| l.get(k).and_then(Json::as_u64).unwrap_or(0);
            injected[rep] += g("injected");
            detected[rep] += g("detected");
            masked[rep] += g("masked");
            silent[rep] += g("silent");
            hung[rep] += g("hung");
            lat_sum[rep] += g("detection_latency_sum");
        }
        let f = |v: &[u64]| -> Vec<f64> { v.iter().map(|&x| x as f64).collect() };
        let coverage: Vec<f64> = detected
            .iter()
            .zip(&silent)
            .map(|(&d, &s)| {
                if d + s > 0 {
                    d as f64 / (d + s) as f64 * 100.0
                } else {
                    100.0
                }
            })
            .collect();
        let avf: Vec<f64> = injected
            .iter()
            .zip(detected.iter().zip(&silent))
            .map(|(&i, (&d, &s))| {
                if i > 0 {
                    (d + s) as f64 / i as f64
                } else {
                    0.0
                }
            })
            .collect();
        let lat: Vec<f64> = detected
            .iter()
            .zip(&lat_sum)
            .map(|(&d, &ls)| if d > 0 { ls as f64 / d as f64 } else { 0.0 })
            .collect();
        table.row(vec![
            sc.name.clone(),
            pm(&f(&injected), 0),
            pm(&f(&detected), 0),
            pm(&f(&masked), 0),
            pm(&f(&silent), 0),
            pm(&f(&hung), 0),
            pm(&coverage, 1) + "%",
            pm(&avf, 3),
            pm(&lat, 1),
        ]);
    }

    emit(
        &cli,
        "Fault-lifecycle coverage by scenario (§3.4, four-way classification)",
        &format!(
            "{} workloads x {} fault seed(s) per scenario; report: {}",
            spec.workloads.len(),
            spec.seeds,
            opts.report_path.display()
        ),
        &table,
        &stalls,
        &report.failed,
        &Throughput::default(),
    );
    if !report.quarantined.is_empty() {
        for q in &report.quarantined {
            eprintln!(
                "quarantined: shard {} ({}): {}",
                q.index, q.label, q.message
            );
        }
        std::process::exit(exit_codes::QUARANTINED);
    }
    if !report.failed.is_empty() {
        std::process::exit(exit_codes::SHARD_FAILURES);
    }
}
