//! End-to-end robustness properties of the campaign runner: resume
//! produces byte-identical reports, failed shards are contained, and
//! livelocked shards are classified as hangs by the watchdog.

use std::path::PathBuf;

use redsim_campaign::{
    hang_trace_path, run_campaign, CampaignError, CampaignOptions, CampaignOutcome, CampaignReport,
    CampaignSpec, HangDumpOptions, Scenario,
};
use redsim_core::{ExecMode, FaultConfig, ForwardingPolicy};
use redsim_util::Json;
use redsim_workloads::Workload;

fn scenario(name: &str, mode: ExecMode, faults: FaultConfig) -> Scenario {
    Scenario {
        name: name.to_owned(),
        mode,
        faults,
        forwarding: ForwardingPolicy::PrimaryToBoth,
    }
}

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        scenarios: vec![
            scenario(
                "die/fu",
                ExecMode::Die,
                FaultConfig {
                    fu_rate: 2e-4,
                    seed: 11,
                    ..FaultConfig::none()
                },
            ),
            scenario(
                "die-irb/irb",
                ExecMode::DieIrb,
                FaultConfig {
                    irb_rate: 0.05,
                    seed: 13,
                    ..FaultConfig::none()
                },
            ),
        ],
        workloads: vec![Workload::Gzip, Workload::Mcf],
        seeds: 2,
        quick: true,
        watchdog: Some(5_000_000),
        // Exercise the windowed-metrics path end to end: the resume
        // determinism assertions below now cover the window series too.
        metrics_window: Some(4096),
    }
}

fn opts(dir: &str, threads: usize) -> CampaignOptions {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("campaign-{}-{dir}", std::process::id()));
    let mut o = CampaignOptions::new(base.join("c.progress.jsonl"), base.join("c.report.json"));
    o.threads = threads;
    o
}

fn complete(outcome: CampaignOutcome) -> CampaignReport {
    match outcome {
        CampaignOutcome::Complete(r) => r,
        CampaignOutcome::Interrupted { completed, total } => {
            panic!("expected completion, interrupted at {completed}/{total}")
        }
    }
}

#[test]
fn interrupted_resumed_and_reparallelized_reports_are_byte_identical() {
    let spec = small_spec();

    // Reference: one uninterrupted run.
    let full = opts("full", 2);
    let reference = complete(run_campaign(&spec, &full).expect("uninterrupted run"));
    assert_eq!(
        std::fs::read_to_string(&full.report_path).expect("report on disk"),
        reference.report
    );

    // Interrupt after 3 of 8 shards, then resume with a different
    // thread count; the final report must match byte for byte.
    let mut split = opts("split", 1);
    split.interrupt_after = Some(3);
    match run_campaign(&spec, &split).expect("interrupted run") {
        CampaignOutcome::Interrupted { completed, total } => {
            assert_eq!(completed, 3);
            assert_eq!(total, 8);
        }
        CampaignOutcome::Complete(_) => panic!("expected interruption"),
    }
    // Simulate a kill mid-write: leave a torn partial line behind.
    let torn = std::fs::read_to_string(&split.progress_path).expect("progress exists")
        + "{\"kind\":\"shard\",\"id\":9";
    std::fs::write(&split.progress_path, torn).expect("tear the manifest");

    split.interrupt_after = None;
    split.resume = true;
    split.threads = 4;
    let resumed = complete(run_campaign(&spec, &split).expect("resumed run"));
    assert_eq!(resumed.report, reference.report, "resume is byte-identical");
    assert_eq!(
        std::fs::read_to_string(&split.report_path).expect("report on disk"),
        reference.report
    );
}

#[test]
fn resume_against_a_different_campaign_is_rejected() {
    let spec = small_spec();
    let mut o = opts("foreign", 1);
    o.interrupt_after = Some(1);
    run_campaign(&spec, &o).expect("first shard");

    let mut other = small_spec();
    other.seeds = 1;
    o.resume = true;
    o.interrupt_after = None;
    match run_campaign(&other, &o) {
        Err(CampaignError::Mismatch(_)) => {}
        r => panic!("expected a fingerprint mismatch, got {r:?}"),
    }
}

#[test]
fn failed_shards_are_recorded_and_the_rest_complete() {
    // fu_rate 2.0 is invalid: Simulator::try_with_faults rejects it, so
    // every shard of the first scenario fails while the second runs.
    let spec = CampaignSpec {
        scenarios: vec![
            scenario(
                "broken",
                ExecMode::Die,
                FaultConfig {
                    fu_rate: 2.0,
                    seed: 1,
                    ..FaultConfig::none()
                },
            ),
            scenario(
                "healthy",
                ExecMode::Sie,
                FaultConfig {
                    fu_rate: 2e-4,
                    seed: 11,
                    ..FaultConfig::none()
                },
            ),
        ],
        workloads: vec![Workload::Gzip],
        seeds: 1,
        quick: true,
        watchdog: Some(5_000_000),
        metrics_window: None,
    };
    let o = opts("failing", 2);
    let report = complete(run_campaign(&spec, &o).expect("campaign completes"));
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.failed[0].index, 0);
    assert!(report.failed[0].label.starts_with("broken/"));
    assert!(
        report.failed[0]
            .message
            .contains("invalid fault configuration"),
        "panic message recorded: {}",
        report.failed[0].message
    );
    let healthy = Json::parse(&report.records[1]).expect("record parses");
    assert_eq!(healthy.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        healthy
            .get("lifecycle")
            .and_then(|l| l.get("injected"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn livelocked_shard_is_classified_as_hang_by_the_watchdog() {
    // DIE with fu_rate 1.0 corrupts every result, so every commit-time
    // pair comparison fails and the pipeline rewinds forever; the
    // watchdog must contain it and classify pending faults as hangs.
    let spec = CampaignSpec {
        scenarios: vec![scenario(
            "livelock",
            ExecMode::Die,
            FaultConfig {
                fu_rate: 1.0,
                seed: 3,
                ..FaultConfig::none()
            },
        )],
        workloads: vec![Workload::Gzip],
        seeds: 1,
        quick: true,
        watchdog: Some(20_000),
        metrics_window: None,
    };
    let mut o = opts("livelock", 1);
    o.hang_dumps = Some(HangDumpOptions {
        base: o.report_path.clone(),
        capacity: 4096,
    });
    let report = complete(run_campaign(&spec, &o).expect("watchdog contains the shard"));
    assert!(
        report.failed.is_empty(),
        "a hang is a classification, not an error"
    );
    let rec = Json::parse(&report.records[0]).expect("record parses");
    assert_eq!(
        rec.get("watchdog_fired").and_then(Json::as_bool),
        Some(true)
    );
    let stalls = rec.get("stalls").expect("shard records carry stalls");
    let productive = rec
        .get("active_commit_cycles")
        .and_then(Json::as_u64)
        .expect("active_commit_cycles");
    let attributed: u64 = [
        "frontend_empty",
        "waiting_deps",
        "issue_starved",
        "fu_contention",
        "irb_port",
        "execution",
        "commit_blocked",
        "rewind",
    ]
    .iter()
    .map(|k| stalls.get(k).and_then(Json::as_u64).unwrap_or(0))
    .sum();
    assert_eq!(
        productive + attributed,
        rec.get("cycles").and_then(Json::as_u64).expect("cycles"),
        "stall attribution conserves cycles in the manifest"
    );
    let l = rec.get("lifecycle").expect("lifecycle");
    let g = |k: &str| l.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert!(g("hung") > 0, "pending faults became hangs");
    assert_eq!(
        g("injected"),
        g("detected") + g("masked") + g("silent") + g("hung"),
        "conservation holds in the manifest too"
    );

    // The hung shard left a flight-recorder sidecar: valid Chrome-trace
    // JSON with at least one event from the replay's final cycles.
    let sidecar = hang_trace_path(&o.report_path, 0);
    assert_eq!(report.hang_traces, vec![sidecar.clone()]);
    let trace = std::fs::read_to_string(&sidecar).expect("sidecar on disk");
    let parsed = Json::parse(trace.trim_end()).expect("sidecar is valid json");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::items)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "flight recorder captured the tail");
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("rewind")),
        "a livelocked DIE shard rewinds in its final window"
    );

    // The replay is deterministic: a second campaign at a different
    // thread count reproduces the sidecar byte for byte.
    let mut o2 = opts("livelock2", 4);
    o2.hang_dumps = Some(HangDumpOptions {
        base: o2.report_path.clone(),
        capacity: 4096,
    });
    complete(run_campaign(&spec, &o2).expect("second run"));
    let trace2 =
        std::fs::read_to_string(hang_trace_path(&o2.report_path, 0)).expect("second sidecar");
    assert_eq!(trace, trace2, "sidecar bytes are thread-count invariant");
}
