//! Chaos-recovery properties of the campaign runner: transient host
//! faults are absorbed, retry is deterministic, quarantine degrades
//! gracefully, and at-rest manifest damage is a typed refusal.
//!
//! The kill-at-every-write-boundary sweep lives in the workspace-level
//! `tests/chaos_recovery.rs`; this file covers the per-property pieces
//! the sweep builds on.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use redsim_campaign::{
    run_campaign, CampaignError, CampaignOptions, CampaignOutcome, CampaignReport, CampaignSpec,
    FlakePlan, Scenario,
};
use redsim_core::{ExecMode, FaultConfig, ForwardingPolicy};
use redsim_util::io::{ChaosConfig, ChaosIo, RealIo};
use redsim_util::Json;
use redsim_workloads::Workload;

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        scenarios: vec![Scenario {
            name: "die/fu".to_owned(),
            mode: ExecMode::Die,
            faults: FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
            forwarding: ForwardingPolicy::PrimaryToBoth,
        }],
        workloads: vec![Workload::Gzip],
        seeds: 2,
        quick: true,
        watchdog: Some(5_000_000),
        metrics_window: None,
    }
}

fn opts(dir: &str, threads: usize) -> CampaignOptions {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("chaos-{}-{dir}", std::process::id()));
    let mut o = CampaignOptions::new(base.join("c.progress.jsonl"), base.join("c.report.json"));
    o.threads = threads;
    o
}

fn complete(outcome: CampaignOutcome) -> CampaignReport {
    match outcome {
        CampaignOutcome::Complete(r) => r,
        CampaignOutcome::Interrupted { completed, total } => {
            panic!("expected completion, interrupted at {completed}/{total}")
        }
    }
}

fn reference_report(spec: &CampaignSpec) -> String {
    let o = opts("reference", 2);
    complete(run_campaign(spec, &o).expect("clean run")).report
}

#[test]
fn transient_host_faults_are_absorbed_without_a_retry() {
    // EINTR and short writes at a heavy rate: the retrying write loop
    // must absorb every one of them — same report, first try, no
    // resume needed.
    let spec = small_spec();
    let reference = reference_report(&spec);

    let mut o = opts("transient", 2);
    o.io = Arc::new(ChaosIo::new(
        Arc::new(RealIo),
        ChaosConfig::transient_only(0xfeed, 0.4),
    ));
    let report = complete(run_campaign(&spec, &o).expect("transient faults absorbed"));
    assert_eq!(report.report, reference);
    assert_eq!(
        std::fs::read_to_string(&o.report_path).expect("report on disk"),
        reference
    );
}

#[test]
fn interior_manifest_corruption_is_a_typed_refusal_naming_the_line() {
    let spec = small_spec();
    let mut o = opts("corrupt", 1);
    complete(run_campaign(&spec, &o).expect("clean run"));

    // Flip a payload byte on the *first* record (line 2, 1-based) —
    // interior, because the second record follows it.
    let text = std::fs::read_to_string(&o.progress_path).expect("manifest");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert_eq!(lines.len(), 3, "header plus two records");
    lines[1] = lines[1].replace("\"ok\":true", "\"ok\":trve");
    std::fs::write(&o.progress_path, lines.join("\n") + "\n").expect("damage the manifest");

    o.resume = true;
    match run_campaign(&spec, &o) {
        Err(CampaignError::Corrupt { line, detail }) => {
            assert_eq!(line, 2, "the damaged line is named");
            assert!(detail.contains("checksum mismatch"), "{detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn flaky_shards_retry_to_byte_identical_reports_at_any_thread_count() {
    // Shard 0 fails twice (< the 3-attempt budget) with an injected
    // transient fault. Success records carry no attempt count, so the
    // flaky run's report matches the clean one byte for byte — at one
    // thread and at four.
    let spec = small_spec();
    let reference = reference_report(&spec);
    let policy = redsim_campaign::RetryPolicy {
        backoff: Duration::from_millis(1),
        ..Default::default()
    };

    for threads in [1, 4] {
        let mut o = opts(&format!("flaky-t{threads}"), threads);
        o.retry = policy.clone();
        o.flake = Some(FlakePlan {
            shards: vec![0],
            failures: 2,
        });
        let report = complete(run_campaign(&spec, &o).expect("retries succeed"));
        assert_eq!(
            report.report, reference,
            "retry schedule leaks into the report at {threads} threads"
        );
        assert!(report.failed.is_empty());
    }
}

#[test]
fn an_exhausted_retry_budget_quarantines_the_shard_deterministically() {
    // Shard 1 fails every attempt: the supervisor quarantines it after
    // the 3-attempt budget, the other shard completes, and the verdict
    // (kind, attempts, quarantined flag) is recorded in the manifest.
    let spec = small_spec();
    let run = |threads: usize, dir: &str| {
        let mut o = opts(dir, threads);
        o.retry.backoff = Duration::from_millis(1);
        o.flake = Some(FlakePlan {
            shards: vec![1],
            failures: u32::MAX,
        });
        complete(run_campaign(&spec, &o).expect("campaign degrades, not aborts"))
    };
    let report = run(1, "quarantine");

    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].index, 1);
    assert_eq!(
        report.quarantined[0].kind,
        redsim_campaign::JobErrorKind::Injected
    );
    let rec = Json::parse(&report.records[1]).expect("record parses");
    assert_eq!(rec.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(rec.get("ekind").and_then(Json::as_str), Some("injected"));
    assert_eq!(rec.get("attempts").and_then(Json::as_u64), Some(3));
    assert_eq!(rec.get("quarantined").and_then(Json::as_bool), Some(true));
    let summary = Json::parse(&report.report).expect("report parses");
    assert_eq!(
        summary.get("quarantined").and_then(Json::as_u64),
        Some(1),
        "the report counts quarantined shards"
    );

    // The verdict is thread-count invariant.
    let again = run(4, "quarantine4");
    assert_eq!(again.report, report.report);
}

#[test]
fn an_expired_host_deadline_quarantines_with_the_deadline_kind() {
    // A zero host deadline raises every attempt's cancellation flag
    // before the simulator starts, so cancellation lands at the first
    // poll (cycle 64) — fully deterministic, no thread timing anywhere.
    let spec = small_spec();
    let run = |threads: usize, dir: &str| {
        let mut o = opts(dir, threads);
        o.retry.backoff = Duration::from_millis(1);
        o.host_deadline = Some(Duration::ZERO);
        complete(run_campaign(&spec, &o).expect("deadline quarantines, not aborts"))
    };
    let report = run(1, "deadline");

    assert_eq!(report.quarantined.len(), 2, "every shard hit the deadline");
    for rec in &report.records {
        let j = Json::parse(rec).expect("record parses");
        assert_eq!(j.get("ekind").and_then(Json::as_str), Some("deadline"));
        assert_eq!(j.get("quarantined").and_then(Json::as_bool), Some(true));
        assert!(
            j.get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.contains("host wall-clock deadline")),
            "deadline message recorded: {rec}"
        );
    }
    let again = run(4, "deadline4");
    assert_eq!(again.report, report.report);
}
