#![warn(missing_docs)]

//! # redsim-bench
//!
//! The experiment harness: every table and figure of the DIE-IRB paper
//! has a regeneration binary in `src/bin/` built on the helpers here.
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig2`             | Figure 2 — % IPC loss vs SIE for the 8 DIE resource configs |
//! | `table_config`     | the §4 base-machine configuration table |
//! | `fig_recovery`     | the headline SIE / DIE / DIE-IRB / DIE-2xALU comparison |
//! | `fig_hitrate`      | IRB PC-hit and reuse-test pass rates per workload |
//! | `fig_size_sweep`   | DIE-IRB sensitivity to IRB capacity |
//! | `fig_ports`        | DIE-IRB sensitivity to IRB port provisioning |
//! | `fig_conflict`     | conflict-miss reduction (victim buffer / associativity) |
//! | `fig_faults`       | fault-injection detection coverage (§3.4 scenarios) |
//! | `fig_name_vs_value`| value-based vs name-based reuse test |
//! | `fig_sie_irb`      | IRB on SIE vs IRB on DIE (why DIE benefits more) |
//! | `fig_priority`     | scheduling-vs-reuse ablation of DIE-IRB's gain |
//! | `fig_cluster`      | the clustered alternative of §3 vs DIE-IRB vs SIE-2xALU |
//! | `fig_scheduler`    | §3.3's data-capture vs non-data-capture reuse tests |
//! | `fig_fidelity`     | wrong-path fetch + store-to-load forwarding sensitivity |
//!
//! All binaries accept `--quick` (or the env var `REDSIM_QUICK=1`) to run
//! the tiny workload instances, and print aligned text tables to stdout.

use redsim_core::{ExecMode, MachineConfig, SimStats, Simulator, VecSource};
use redsim_isa::trace::DynInst;
use redsim_workloads::{Params, Workload};

/// Harness context: workload sizing and per-workload trace caching.
#[derive(Debug, Default)]
pub struct Harness {
    quick: bool,
    cached: Option<(Workload, Params, Vec<DynInst>)>,
}

impl Harness {
    /// Creates a harness; `--quick` in `args` or `REDSIM_QUICK=1` in the
    /// environment selects the tiny workload instances.
    #[must_use]
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("REDSIM_QUICK").is_some();
        Harness {
            quick,
            cached: None,
        }
    }

    /// Creates a quick-mode harness (used by the smoke bench).
    #[must_use]
    pub fn quick() -> Self {
        Harness {
            quick: true,
            cached: None,
        }
    }

    /// Whether quick mode is on.
    #[must_use]
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The workload parameters this harness runs.
    #[must_use]
    pub fn params(&self, w: Workload) -> Params {
        if self.quick {
            w.tiny_params()
        } else {
            w.default_params()
        }
    }

    /// The committed-path trace of a workload, cached so that sweeps
    /// re-run the timing model over the identical instruction stream.
    pub fn trace(&mut self, w: Workload) -> Vec<DynInst> {
        let params = self.params(w);
        if let Some((cw, cp, t)) = &self.cached {
            if *cw == w && *cp == params {
                return t.clone();
            }
        }
        let program = w.program(params).expect("workload kernels assemble");
        let mut emu = redsim_isa::emu::Emulator::new(&program);
        let trace = emu.run_trace(200_000_000).expect("workload kernels halt");
        self.cached = Some((w, params, trace.clone()));
        trace
    }

    /// Runs one workload under one mode and machine configuration.
    pub fn run(&mut self, w: Workload, mode: ExecMode, cfg: &MachineConfig) -> SimStats {
        let trace = self.trace(w);
        let mut source = VecSource::new(trace);
        Simulator::new(cfg.clone(), mode)
            .run_source(&mut source)
            .expect("simulation completes")
    }
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// A fixed-width text table printer for the figure binaries.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%x".contains(ch));
                if numeric && i > 0 {
                    line.push_str(&format!("{cell:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<w$}", w = widths[i]));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Formats an IPC with three decimals.
#[must_use]
pub fn ipc(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["app", "ipc"]);
        t.row(vec!["gzip", "1.234"]);
        t.row(vec!["a", "2.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn harness_trace_is_cached_and_stable() {
        let mut h = Harness::quick();
        let a = h.trace(Workload::Gzip);
        let b = h.trace(Workload::Gzip);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn harness_run_produces_stats() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let s = h.run(Workload::Gzip, ExecMode::Sie, &cfg);
        assert!(s.ipc() > 0.0);
    }
}
