#![warn(missing_docs)]

//! # redsim-bench
//!
//! The experiment harness: every table and figure of the DIE-IRB paper
//! has a regeneration binary in `src/bin/` built on the helpers here.
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig2`             | Figure 2 — % IPC loss vs SIE for the 8 DIE resource configs |
//! | `table_config`     | the §4 base-machine configuration table |
//! | `fig_recovery`     | the headline SIE / DIE / DIE-IRB / DIE-2xALU comparison |
//! | `fig_hitrate`      | IRB PC-hit and reuse-test pass rates per workload |
//! | `fig_size_sweep`   | DIE-IRB sensitivity to IRB capacity |
//! | `fig_ports`        | DIE-IRB sensitivity to IRB port provisioning |
//! | `fig_conflict`     | conflict-miss reduction (victim buffer / associativity) |
//! | `fig_faults`       | fault-injection detection coverage (§3.4 scenarios) |
//! | `fig_name_vs_value`| value-based vs name-based reuse test |
//! | `fig_sie_irb`      | IRB on SIE vs IRB on DIE (why DIE benefits more) |
//! | `fig_priority`     | scheduling-vs-reuse ablation of DIE-IRB's gain |
//! | `fig_cluster`      | the clustered alternative of §3 vs DIE-IRB vs SIE-2xALU |
//! | `fig_scheduler`    | §3.3's data-capture vs non-data-capture reuse tests |
//! | `fig_fidelity`     | wrong-path fetch + store-to-load forwarding sensitivity |
//!
//! All binaries share one command line (see [`Cli`]):
//!
//! * `--quick` (or `REDSIM_QUICK=1`) — run the tiny workload instances;
//! * `--json` — emit the result table as a JSON object instead of text;
//! * `--threads N` — fan the simulation grid across `N` worker threads
//!   (default: all available cores). Every simulation is single-threaded
//!   and deterministic, so the results are identical for any `N`.
//!
//! The binaries build their experiment grid as a list of [`Job`]s and
//! hand it to [`Harness::sweep`], which materializes each workload's
//! committed trace once (shared as `Arc<[DynInst]>`) and runs the grid
//! in parallel.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use redsim_core::{
    ExecMode, FaultConfig, MachineConfig, SimStats, Simulator, SliceSource, Throughput,
};
use redsim_isa::trace::DynInst;
use redsim_util::Json;
use redsim_workloads::{Params, Workload};

/// Shared command line of the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Run tiny workload instances (`--quick` or `REDSIM_QUICK=1`).
    pub quick: bool,
    /// Emit JSON instead of the aligned text table (`--json`).
    pub json: bool,
    /// Worker threads for [`Harness::sweep`] (`--threads N`).
    pub threads: usize,
    args: Vec<String>,
}

impl Cli {
    /// Parses the process arguments.
    #[must_use]
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (for tests).
    #[must_use]
    pub fn from_vec(args: Vec<String>) -> Self {
        let quick =
            args.iter().any(|a| a == "--quick") || std::env::var_os("REDSIM_QUICK").is_some();
        let json = args.iter().any(|a| a == "--json");
        let threads = args
            .windows(2)
            .find(|w| w[0] == "--threads")
            .and_then(|w| w[1].parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Cli {
            quick,
            json,
            threads,
            args,
        }
    }

    /// Whether a bare flag (e.g. `--verbose`) is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following a `--key value` pair, if present.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].as_str())
    }
}

/// One cell of the experiment grid: a workload run under a mode and
/// machine configuration, optionally with fault injection.
#[derive(Debug, Clone)]
pub struct Job {
    /// The workload whose committed trace to replay.
    pub workload: Workload,
    /// Execution mode (SIE / DIE / DIE-IRB / ...).
    pub mode: ExecMode,
    /// Machine configuration.
    pub config: MachineConfig,
    /// Transient-fault injection, if any.
    pub faults: Option<FaultConfig>,
}

impl Job {
    /// Creates a fault-free job.
    #[must_use]
    pub fn new(workload: Workload, mode: ExecMode, config: &MachineConfig) -> Self {
        Job {
            workload,
            mode,
            config: config.clone(),
            faults: None,
        }
    }

    /// Adds fault injection to the job.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Runs one job, reporting its stats and the wall-clock throughput of
/// the timing simulation (trace construction is excluded — the caller
/// materializes traces up front).
fn run_job(trace: &[DynInst], job: &Job) -> (SimStats, Throughput) {
    let mut source = SliceSource::new(trace);
    let mut sim = Simulator::new(job.config.clone(), job.mode);
    if let Some(fc) = job.faults {
        sim = sim.with_faults(fc);
    }
    let t0 = std::time::Instant::now();
    let stats = sim.run_source(&mut source).expect("simulation completes");
    let perf = Throughput {
        wall_seconds: t0.elapsed().as_secs_f64(),
        sim_cycles: stats.cycles,
        committed_insts: stats.committed_insts,
    };
    (stats, perf)
}

/// Harness context: workload sizing, per-workload trace caching, and
/// accumulated wall-clock throughput of every simulation run.
#[derive(Debug, Default)]
pub struct Harness {
    quick: bool,
    cache: HashMap<Workload, Arc<[DynInst]>>,
    perf: Throughput,
}

impl Harness {
    /// Creates a harness; `quick` selects the tiny workload instances.
    #[must_use]
    pub fn new(quick: bool) -> Self {
        Harness {
            quick,
            cache: HashMap::new(),
            perf: Throughput::default(),
        }
    }

    /// Creates a harness sized by the shared command line.
    #[must_use]
    pub fn from_cli(cli: &Cli) -> Self {
        Self::new(cli.quick)
    }

    /// Creates a quick-mode harness (used by the smoke bench).
    #[must_use]
    pub fn quick() -> Self {
        Self::new(true)
    }

    /// Whether quick mode is on.
    #[must_use]
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The workload parameters this harness runs.
    #[must_use]
    pub fn params(&self, w: Workload) -> Params {
        if self.quick {
            w.tiny_params()
        } else {
            w.default_params()
        }
    }

    /// The committed-path trace of a workload. Built once per workload
    /// (the functional emulator is the expensive part) and shared by
    /// reference count, so sweeps re-run the timing model over the
    /// identical instruction stream without copying it.
    pub fn trace(&mut self, w: Workload) -> Arc<[DynInst]> {
        if let Some(t) = self.cache.get(&w) {
            return Arc::clone(t);
        }
        let params = self.params(w);
        let program = w.program(params).expect("workload kernels assemble");
        let mut emu = redsim_isa::emu::Emulator::new(&program);
        let trace: Arc<[DynInst]> = emu
            .run_trace(200_000_000)
            .expect("workload kernels halt")
            .into();
        self.cache.insert(w, Arc::clone(&trace));
        trace
    }

    /// Wall-clock throughput accumulated over every simulation this
    /// harness has run (timing simulation only; functional trace
    /// construction is excluded).
    #[must_use]
    pub fn perf(&self) -> &Throughput {
        &self.perf
    }

    /// Runs one workload under one mode and machine configuration.
    pub fn run(&mut self, w: Workload, mode: ExecMode, cfg: &MachineConfig) -> SimStats {
        let trace = self.trace(w);
        let (stats, perf) = run_job(&trace, &Job::new(w, mode, cfg));
        self.perf.add(&perf);
        stats
    }

    /// Runs an experiment grid, fanning the jobs across `threads`
    /// worker threads.
    ///
    /// Traces are materialized up front (once per distinct workload);
    /// the workers then share them read-only. Results come back in job
    /// order, and because every simulation is single-threaded and
    /// deterministic, the output is bit-identical for any thread count.
    pub fn sweep(&mut self, jobs: &[Job], threads: usize) -> Vec<SimStats> {
        let traces: Vec<Arc<[DynInst]>> = jobs.iter().map(|j| self.trace(j.workload)).collect();
        let threads = threads.clamp(1, jobs.len().max(1));
        let results: Vec<(SimStats, Throughput)> = if threads == 1 {
            jobs.iter()
                .zip(&traces)
                .map(|(j, t)| run_job(t, j))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<(SimStats, Throughput)>> =
                jobs.iter().map(|_| OnceLock::new()).collect();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let stats = run_job(&traces[i], &jobs[i]);
                        assert!(slots[i].set(stats).is_ok(), "each job runs once");
                    });
                }
            });
            slots
                .into_iter()
                .map(|c| c.into_inner().expect("worker filled every slot"))
                .collect()
        };
        // Accumulate in job order so the total is thread-count
        // independent apart from the wall-clock values themselves.
        results
            .into_iter()
            .map(|(stats, perf)| {
                self.perf.add(&perf);
                stats
            })
            .collect()
    }
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// A fixed-width text table printer for the figure binaries.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%x".contains(ch));
                if numeric && i > 0 {
                    line.push_str(&format!("{cell:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<w$}", w = widths[i]));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// The table as a JSON object: `{"header": [...], "rows": [[...]]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let header: Json = self.header.iter().map(|h| Json::from(h.as_str())).collect();
        let rows: Json = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| Json::from(c.as_str())).collect::<Json>())
            .collect();
        Json::obj().field("header", header).field("rows", rows)
    }
}

/// Prints a figure's result table, honouring `--json`.
///
/// In text mode this reproduces the binaries' traditional layout: the
/// title, a parenthesized note including the quick-mode flag, a blank
/// line, then the aligned table. `perf` (usually [`Harness::perf`])
/// reports the host-side wall-clock throughput of the runs behind the
/// figure: in JSON it lands in a trailing `"perf"` field; in text mode
/// it goes to *stderr*, keeping stdout captures byte-stable across
/// machines.
pub fn emit(cli: &Cli, title: &str, note: &str, table: &Table, perf: &Throughput) {
    if cli.json {
        let out = Json::obj()
            .field("title", title)
            .field("note", note)
            .field("quick", cli.quick)
            .field("table", table.to_json())
            .field("perf", perf.to_json());
        println!("{out}");
    } else {
        println!("{title}");
        if note.is_empty() {
            println!("(quick mode: {})\n", cli.quick);
        } else {
            println!("({note}, quick mode: {})\n", cli.quick);
        }
        print!("{}", table.render());
        if perf.wall_seconds > 0.0 {
            eprintln!(
                "perf: {:.2}s wall, {:.2}M cycles/s, {:.2}M insts/s \
                 ({} sim cycles, {} committed insts)",
                perf.wall_seconds,
                perf.cycles_per_sec() / 1e6,
                perf.insts_per_sec() / 1e6,
                perf.sim_cycles,
                perf.committed_insts,
            );
        }
    }
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Formats an IPC with three decimals.
#[must_use]
pub fn ipc(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["app", "ipc"]);
        t.row(vec!["gzip", "1.234"]);
        t.row(vec!["a", "2.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn empty_table_renders_without_panicking() {
        // Regression: `2 * (cols - 1)` underflowed for a header-less
        // table; the separator math must saturate instead.
        let t = Table::new(Vec::<String>::new());
        let s = t.render();
        assert_eq!(s, "\n\n");
        let mut one = Table::new(vec!["only"]);
        one.row(vec!["x"]);
        assert!(one.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn table_to_json_shape() {
        let mut t = Table::new(vec!["app", "ipc"]);
        t.row(vec!["gzip", "1.234"]);
        assert_eq!(
            t.to_json().to_string(),
            r#"{"header":["app","ipc"],"rows":[["gzip","1.234"]]}"#
        );
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn cli_parses_shared_flags() {
        let cli = Cli::from_vec(
            [
                "--quick",
                "--json",
                "--threads",
                "3",
                "--forwarding",
                "per-stream",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        );
        assert!(cli.quick);
        assert!(cli.json);
        assert_eq!(cli.threads, 3);
        assert!(cli.flag("--quick"));
        assert_eq!(cli.value("--forwarding"), Some("per-stream"));
        assert_eq!(cli.value("--missing"), None);
    }

    #[test]
    fn harness_trace_is_cached_and_stable() {
        let mut h = Harness::quick();
        let a = h.trace(Workload::Gzip);
        let b = h.trace(Workload::Gzip);
        assert!(Arc::ptr_eq(&a, &b), "second call reuses the cached trace");
        assert!(!a.is_empty());
    }

    #[test]
    fn harness_run_produces_stats() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let s = h.run(Workload::Gzip, ExecMode::Sie, &cfg);
        assert!(s.ipc() > 0.0);
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let jobs = vec![
            Job::new(Workload::Gzip, ExecMode::Sie, &cfg),
            Job::new(Workload::Gzip, ExecMode::Die, &cfg),
            Job::new(Workload::Mcf, ExecMode::DieIrb, &cfg),
        ];
        let swept = h.sweep(&jobs, 1);
        assert_eq!(swept[0], h.run(Workload::Gzip, ExecMode::Sie, &cfg));
        assert_eq!(swept[1], h.run(Workload::Gzip, ExecMode::Die, &cfg));
        assert_eq!(swept[2], h.run(Workload::Mcf, ExecMode::DieIrb, &cfg));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let mut jobs = Vec::new();
        for w in [Workload::Gzip, Workload::Mcf] {
            for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
                jobs.push(Job::new(w, mode, &cfg));
            }
        }
        jobs.push(
            Job::new(Workload::Gzip, ExecMode::Die, &cfg).with_faults(FaultConfig {
                fu_rate: 1e-4,
                seed: 7,
                ..FaultConfig::none()
            }),
        );
        let serial = h.sweep(&jobs, 1);
        let parallel = h.sweep(&jobs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_of_empty_grid_is_empty() {
        let mut h = Harness::quick();
        assert!(h.sweep(&[], 8).is_empty());
    }
}
