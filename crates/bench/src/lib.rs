#![warn(missing_docs)]

//! # redsim-bench
//!
//! The experiment harness: every table and figure of the DIE-IRB paper
//! has a regeneration binary in `src/bin/` built on the helpers here.
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig2`             | Figure 2 — % IPC loss vs SIE for the 8 DIE resource configs |
//! | `table_config`     | the §4 base-machine configuration table |
//! | `fig_recovery`     | the headline SIE / DIE / DIE-IRB / DIE-2xALU comparison |
//! | `fig_hitrate`      | IRB PC-hit and reuse-test pass rates per workload |
//! | `fig_size_sweep`   | DIE-IRB sensitivity to IRB capacity |
//! | `fig_ports`        | DIE-IRB sensitivity to IRB port provisioning |
//! | `fig_conflict`     | conflict-miss reduction (victim buffer / associativity) |
//! | `fig_faults`       | fault-injection detection coverage (§3.4 scenarios) |
//! | `fig_name_vs_value`| value-based vs name-based reuse test |
//! | `fig_sie_irb`      | IRB on SIE vs IRB on DIE (why DIE benefits more) |
//! | `fig_priority`     | scheduling-vs-reuse ablation of DIE-IRB's gain |
//! | `fig_cluster`      | the clustered alternative of §3 vs DIE-IRB vs SIE-2xALU |
//! | `fig_scheduler`    | §3.3's data-capture vs non-data-capture reuse tests |
//! | `fig_fidelity`     | wrong-path fetch + store-to-load forwarding sensitivity |
//!
//! All binaries share one command line (see [`Cli`]):
//!
//! * `--quick` (or `REDSIM_QUICK=1`) — run the tiny workload instances;
//! * `--json` — emit the result table as a JSON object instead of text;
//! * `--threads N` — fan the simulation grid across `N` worker threads
//!   (default: all available cores). Every simulation is single-threaded
//!   and deterministic, so the results are identical for any `N`.
//!
//! The binaries build their experiment grid as a list of [`Job`]s and
//! hand it to [`Harness::sweep`], which materializes each workload's
//! committed trace once (shared as `Arc<[DynInst]>`) and runs the grid
//! in parallel.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use redsim_core::{
    ExecMode, FaultConfig, Instrumentation, MachineConfig, MetricsCollector, NullTracer, SimStats,
    Simulator, SliceSource, StallSummary, Throughput, WindowSample,
};
use redsim_isa::trace::DynInst;
use redsim_util::Json;
use redsim_workloads::{Params, Workload};

pub mod diff;

/// Shared command line of the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Run tiny workload instances (`--quick` or `REDSIM_QUICK=1`).
    pub quick: bool,
    /// Emit JSON instead of the aligned text table (`--json`).
    pub json: bool,
    /// Worker threads for [`Harness::sweep`] (`--threads N`).
    pub threads: usize,
    /// Replications across independent seeds (`--seeds N`, default 1).
    /// Figure binaries that support it report mean ± stddev columns.
    pub seeds: u32,
    /// Windowed-metrics sampling period in simulated cycles
    /// (`--metrics-window N`), for the binaries that forward it into
    /// [`Job::with_metrics_window`]. `None` when the flag is absent —
    /// each binary picks its own default. Zero is rejected at the front
    /// door: a zero-cycle window reaches the sampler as a degenerate
    /// tiling, never a useful series.
    pub metrics_window: Option<u64>,
    args: Vec<String>,
}

/// A rejected shared-CLI argument. The binaries print the message and
/// exit 2 — the same typed-error path `FaultConfig::validate` feeds —
/// instead of silently substituting a default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--threads` needs a positive integer (0 used to be clamped to 1
    /// deep inside the sweep; it is a usage error and is rejected at
    /// the front door).
    InvalidThreads(String),
    /// `--seeds` needs a positive integer.
    InvalidSeeds(String),
    /// `--metrics-window` needs a positive cycle count (0 used to leak
    /// through as a zero-cycle window — a degenerate tiling the sampler
    /// should never see).
    InvalidMetricsWindow(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::InvalidThreads(v) => {
                write!(f, "--threads expects a positive integer, got {v:?}")
            }
            CliError::InvalidSeeds(v) => {
                write!(f, "--seeds expects a positive integer, got {v:?}")
            }
            CliError::InvalidMetricsWindow(v) => {
                write!(
                    f,
                    "--metrics-window expects a positive cycle count, got {v:?}"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Truthiness of an environment flag: unset, empty, `0` and `false`
/// (ASCII case-insensitive) are off; anything else is on.
/// `REDSIM_QUICK=0` must mean *off* — the old `var_os(..).is_some()`
/// check got this wrong. This is the workspace's only environment
/// truthiness check (audited when the bug was fixed).
fn env_flag(name: &str) -> bool {
    env_value_enabled(std::env::var_os(name).as_deref())
}

/// The pure decision behind [`env_flag`], split out so tests can cover
/// it without racing on process-global environment state.
fn env_value_enabled(value: Option<&std::ffi::OsStr>) -> bool {
    let Some(v) = value else { return false };
    let s = v.to_string_lossy();
    !(s.is_empty() || s == "0" || s.eq_ignore_ascii_case("false"))
}

impl Cli {
    /// Parses the process arguments; invalid values print the
    /// [`CliError`] and exit with code 2.
    #[must_use]
    pub fn parse() -> Self {
        Self::try_from_vec(std::env::args().skip(1).collect()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// Parses an explicit argument vector (for tests).
    ///
    /// # Panics
    ///
    /// Panics on arguments [`Cli::try_from_vec`] rejects.
    #[must_use]
    pub fn from_vec(args: Vec<String>) -> Self {
        Self::try_from_vec(args).expect("valid shared CLI arguments")
    }

    /// Parses an explicit argument vector, rejecting invalid values
    /// with a typed error instead of substituting defaults.
    ///
    /// # Errors
    ///
    /// [`CliError`] when `--threads`, `--seeds` or `--metrics-window`
    /// is zero or not an integer.
    pub fn try_from_vec(args: Vec<String>) -> Result<Self, CliError> {
        let quick = args.iter().any(|a| a == "--quick") || env_flag("REDSIM_QUICK");
        let json = args.iter().any(|a| a == "--json");
        let threads = match args.windows(2).find(|w| w[0] == "--threads") {
            Some(w) => w[1]
                .parse()
                .ok()
                .filter(|&n: &usize| n > 0)
                .ok_or_else(|| CliError::InvalidThreads(w[1].clone()))?,
            None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        };
        let seeds = match args.windows(2).find(|w| w[0] == "--seeds") {
            Some(w) => w[1]
                .parse()
                .ok()
                .filter(|&n: &u32| n > 0)
                .ok_or_else(|| CliError::InvalidSeeds(w[1].clone()))?,
            None => 1,
        };
        let metrics_window = match args.windows(2).find(|w| w[0] == "--metrics-window") {
            Some(w) => Some(
                w[1].parse()
                    .ok()
                    .filter(|&n: &u64| n > 0)
                    .ok_or_else(|| CliError::InvalidMetricsWindow(w[1].clone()))?,
            ),
            None => None,
        };
        Ok(Cli {
            quick,
            json,
            threads,
            seeds,
            metrics_window,
            args,
        })
    }

    /// Whether a bare flag (e.g. `--verbose`) is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following a `--key value` pair, if present.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].as_str())
    }
}

/// One cell of the experiment grid: a workload run under a mode and
/// machine configuration, optionally with fault injection.
#[derive(Debug, Clone)]
pub struct Job {
    /// The workload whose committed trace to replay.
    pub workload: Workload,
    /// Execution mode (SIE / DIE / DIE-IRB / ...).
    pub mode: ExecMode,
    /// Machine configuration.
    pub config: MachineConfig,
    /// Transient-fault injection, if any.
    pub faults: Option<FaultConfig>,
    /// Watchdog deadline in simulated cycles
    /// ([`Simulator::with_watchdog`]); a job that reaches it comes back
    /// with `watchdog_fired` set instead of running forever.
    pub watchdog: Option<u64>,
    /// Workload input seed override (replication across `--seeds`);
    /// `None` uses the workload's default parameters.
    pub input_seed: Option<u64>,
    /// Windowed-metrics collection: `Some(n)` samples the time series
    /// every `n` simulated cycles and returns the windows alongside the
    /// stats (surfaced through the [`Harness::try_sweep_with`]
    /// callback). `None` — the default — runs metrics-free.
    pub metrics_window: Option<u64>,
    /// Host-side cancellation flag ([`Simulator::with_cancel`]): a
    /// supervisor raising it aborts the run with a
    /// [`JobErrorKind::Deadline`] failure. `None` — the default — runs
    /// uncancellable.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Reuse attribution ([`Simulator::with_attribution`]): when set
    /// the stats carry the opcode-class × PC × loop breakdown of every
    /// IRB event. Off by default (byte-identical stats when off).
    pub attribution: bool,
}

impl Job {
    /// Creates a fault-free job.
    #[must_use]
    pub fn new(workload: Workload, mode: ExecMode, config: &MachineConfig) -> Self {
        Job {
            workload,
            mode,
            config: config.clone(),
            faults: None,
            watchdog: None,
            input_seed: None,
            metrics_window: None,
            cancel: None,
            attribution: false,
        }
    }

    /// Adds fault injection to the job.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets a watchdog deadline in simulated cycles.
    #[must_use]
    pub fn with_watchdog(mut self, max_cycles: u64) -> Self {
        self.watchdog = Some(max_cycles);
        self
    }

    /// Overrides the workload's input-generation seed.
    #[must_use]
    pub fn with_input_seed(mut self, seed: u64) -> Self {
        self.input_seed = Some(seed);
        self
    }

    /// Enables windowed-metrics collection every `window_cycles`
    /// simulated cycles.
    #[must_use]
    pub fn with_metrics_window(mut self, window_cycles: u64) -> Self {
        self.metrics_window = Some(window_cycles);
        self
    }

    /// Attaches a host-side cancellation flag; a supervisor raising it
    /// mid-run turns the job into a [`JobErrorKind::Deadline`] failure.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Enables reuse attribution for the run.
    #[must_use]
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// A short human-readable label (error reports, manifests).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{:?}", self.workload.name(), self.mode)
    }
}

/// How a sweep job died. The split drives the campaign supervisor's
/// retry decision: *transient* kinds (a host-side effect that can
/// plausibly differ on a re-run) are retried with backoff; *persistent*
/// kinds (a property of the job itself — the same inputs will fail the
/// same way) fail immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The timing simulation returned a [`redsim_core::SimError`]
    /// (deadlock, emulation fault). Deterministic, so persistent.
    Sim,
    /// The workload trace could not be materialized (assembly or
    /// functional-emulation failure). Deterministic, so persistent.
    Trace,
    /// The job panicked (caught by the sweep's `catch_unwind`
    /// isolation). Treated as transient: a panic can be a host effect
    /// (allocation failure) and the retry cap bounds the cost of
    /// re-trying a deterministic one.
    Panic,
    /// A host wall-clock deadline cancelled the run
    /// ([`Job::with_cancel`]). Transient: host load varies.
    Deadline,
    /// A host IO failure while persisting the job's results. Transient.
    Io,
    /// A fault injected by a test harness (chaos schedules, flake
    /// plans). Transient by construction.
    Injected,
}

impl JobErrorKind {
    /// Whether the supervisor should retry a failure of this kind.
    #[must_use]
    pub fn is_transient(self) -> bool {
        match self {
            JobErrorKind::Sim | JobErrorKind::Trace => false,
            JobErrorKind::Panic
            | JobErrorKind::Deadline
            | JobErrorKind::Io
            | JobErrorKind::Injected => true,
        }
    }

    /// The manifest/JSON spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobErrorKind::Sim => "sim",
            JobErrorKind::Trace => "trace",
            JobErrorKind::Panic => "panic",
            JobErrorKind::Deadline => "deadline",
            JobErrorKind::Io => "io",
            JobErrorKind::Injected => "injected",
        }
    }

    /// Parses the manifest spelling; unknown strings fall back to
    /// [`JobErrorKind::Sim`] (the conservative, non-retried kind) so a
    /// record written by a newer binary never triggers retry storms.
    #[must_use]
    pub fn parse_lossy(s: &str) -> Self {
        match s {
            "trace" => JobErrorKind::Trace,
            "panic" => JobErrorKind::Panic,
            "deadline" => JobErrorKind::Deadline,
            "io" => JobErrorKind::Io,
            "injected" => JobErrorKind::Injected,
            _ => JobErrorKind::Sim,
        }
    }
}

/// One failure of one job *attempt*, before it is tied to a grid index:
/// the kind (retry classification), a display message, and — for panics
/// — the payload preserved verbatim for post-mortems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Retry classification.
    pub kind: JobErrorKind,
    /// Human-readable rendering (for panics: `panic: {payload}`).
    pub message: String,
    /// The `catch_unwind` payload, verbatim, when the failure was a
    /// panic with a `String`/`&str` payload.
    pub panic_payload: Option<String>,
}

impl JobFailure {
    /// A non-panic failure of the given kind.
    #[must_use]
    pub fn new(kind: JobErrorKind, message: impl Into<String>) -> Self {
        JobFailure {
            kind,
            message: message.into(),
            panic_payload: None,
        }
    }
}

/// One failed sweep job: which grid cell died and why. Produced by
/// [`Harness::try_sweep`] instead of aborting the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the job in the submitted grid.
    pub index: usize,
    /// The job's [`Job::label`].
    pub label: String,
    /// The simulation error or panic message.
    pub message: String,
    /// Retry classification of the failure.
    pub kind: JobErrorKind,
    /// For panics with a `String`/`&str` payload: the payload verbatim,
    /// so quarantined shards stay debuggable post-mortem.
    pub panic_payload: Option<String>,
}

impl JobError {
    /// Ties an attempt failure to its grid cell.
    #[must_use]
    pub fn from_failure(index: usize, label: String, failure: JobFailure) -> Self {
        JobError {
            index,
            label,
            message: failure.message,
            kind: failure.kind,
            panic_payload: failure.panic_payload,
        }
    }

    /// The record as a JSON object (the `"errors"` array of `--json`
    /// output).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("index", self.index)
            .field("label", self.label.as_str())
            .field("message", self.message.as_str())
            .field("kind", self.kind.as_str());
        if let Some(p) = &self.panic_payload {
            j = j.field("panic", p.as_str());
        }
        j
    }
}

/// Maps a simulation error to its retry classification: a raised
/// cancellation flag is the host deadline firing (transient); anything
/// else is a deterministic property of the job (persistent).
fn classify_sim_error(e: &redsim_core::SimError) -> JobErrorKind {
    match e {
        redsim_core::SimError::HostCancelled { .. } => JobErrorKind::Deadline,
        _ => JobErrorKind::Sim,
    }
}

/// Runs one job, reporting its stats and the wall-clock throughput of
/// the timing simulation (trace construction is excluded — the caller
/// materializes traces up front).
///
/// # Errors
///
/// A typed [`JobFailure`] carrying the retry classification (deadlock,
/// budget exhaustion, a fired host deadline...).
fn run_job(
    trace: &[DynInst],
    job: &Job,
) -> Result<(SimStats, Throughput, Vec<WindowSample>), JobFailure> {
    let mut source = SliceSource::new(trace);
    let mut sim = Simulator::new(job.config.clone(), job.mode);
    if let Some(fc) = job.faults {
        sim = sim.try_with_faults(fc).map_err(|e| {
            JobFailure::new(
                JobErrorKind::Sim,
                format!("invalid fault configuration: {e}"),
            )
        })?;
    }
    if let Some(w) = job.watchdog {
        sim = sim.with_watchdog(w);
    }
    if let Some(c) = &job.cancel {
        sim = sim.with_cancel(Arc::clone(c));
    }
    if job.attribution {
        sim = sim.with_attribution();
    }
    let sim_err = |e: redsim_core::SimError| JobFailure::new(classify_sim_error(&e), e.to_string());
    let t0 = std::time::Instant::now();
    let (stats, windows) = if let Some(window) = job.metrics_window {
        let mut collector = MetricsCollector::new(window);
        let mut tracer = NullTracer;
        let stats = sim
            .run_source_instrumented(
                &mut source,
                Instrumentation {
                    tracer: &mut tracer,
                    metrics: &mut collector,
                    profiler: None,
                },
            )
            .map_err(sim_err)?;
        (stats, collector.into_samples())
    } else {
        let stats = sim.run_source(&mut source).map_err(sim_err)?;
        (stats, Vec::new())
    };
    let perf = Throughput {
        wall_seconds: t0.elapsed().as_secs_f64(),
        sim_cycles: stats.cycles,
        committed_insts: stats.committed_insts,
    };
    Ok((stats, perf, windows))
}

/// Runs one job with panic isolation: a panicking simulation (a model
/// bug, an invalid configuration) becomes a [`JobFailure`] instead of
/// tearing down the sweep. A `String`/`&str` panic payload is preserved
/// verbatim in [`JobFailure::panic_payload`] — the display message
/// prefixes it with `panic: `, but post-mortems get the raw text.
///
/// This is the attempt-level entry point the campaign shard supervisor
/// retries around; the sweep path below shares it.
///
/// # Errors
///
/// Every failure mode of the job — simulation error, fired deadline,
/// panic — as a typed [`JobFailure`].
pub fn run_job_isolated(
    trace: &[DynInst],
    job: &Job,
) -> Result<(SimStats, Throughput, Vec<WindowSample>), JobFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_job(trace, job))) {
        Ok(r) => r,
        Err(payload) => {
            let payload = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned());
            let msg = payload
                .clone()
                .unwrap_or_else(|| "panic with non-string payload".to_owned());
            Err(JobFailure {
                kind: JobErrorKind::Panic,
                message: format!("panic: {msg}"),
                panic_payload: payload,
            })
        }
    }
}

/// Harness context: workload sizing, per-workload trace caching, and
/// accumulated wall-clock throughput of every simulation run.
#[derive(Debug, Default)]
pub struct Harness {
    quick: bool,
    cache: HashMap<(Workload, Option<u64>), Arc<[DynInst]>>,
    perf: Throughput,
    stalls: StallSummary,
}

impl Harness {
    /// Creates a harness; `quick` selects the tiny workload instances.
    #[must_use]
    pub fn new(quick: bool) -> Self {
        Harness {
            quick,
            cache: HashMap::new(),
            perf: Throughput::default(),
            stalls: StallSummary::default(),
        }
    }

    /// Creates a harness sized by the shared command line.
    #[must_use]
    pub fn from_cli(cli: &Cli) -> Self {
        Self::new(cli.quick)
    }

    /// Creates a quick-mode harness (used by the smoke bench).
    #[must_use]
    pub fn quick() -> Self {
        Self::new(true)
    }

    /// Whether quick mode is on.
    #[must_use]
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The workload parameters this harness runs.
    #[must_use]
    pub fn params(&self, w: Workload) -> Params {
        if self.quick {
            w.tiny_params()
        } else {
            w.default_params()
        }
    }

    /// The committed-path trace of a workload. Built once per workload
    /// (the functional emulator is the expensive part) and shared by
    /// reference count, so sweeps re-run the timing model over the
    /// identical instruction stream without copying it.
    pub fn trace(&mut self, w: Workload) -> Arc<[DynInst]> {
        self.trace_for(w, None)
    }

    /// Like [`Harness::trace`], with an optional input-seed override.
    /// Each `(workload, seed)` pair is built once and cached.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to assemble or execute; use
    /// [`Harness::try_trace_for`] to get the structured error instead.
    pub fn trace_for(&mut self, w: Workload, input_seed: Option<u64>) -> Arc<[DynInst]> {
        match self.try_trace_for(w, input_seed) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Harness::trace_for`]: a workload that fails
    /// to assemble or to reach `halt` within the instruction budget
    /// reports a [`redsim_workloads::WorkloadError`] instead of
    /// panicking. Failures are not cached, so a retry re-runs the
    /// emulator.
    pub fn try_trace_for(
        &mut self,
        w: Workload,
        input_seed: Option<u64>,
    ) -> Result<Arc<[DynInst]>, redsim_workloads::WorkloadError> {
        if let Some(t) = self.cache.get(&(w, input_seed)) {
            return Ok(Arc::clone(t));
        }
        let mut params = self.params(w);
        if let Some(seed) = input_seed {
            params.seed = seed;
        }
        let trace: Arc<[DynInst]> = w.trace(params, 200_000_000)?.into();
        self.cache.insert((w, input_seed), Arc::clone(&trace));
        Ok(trace)
    }

    /// Wall-clock throughput accumulated over every simulation this
    /// harness has run (timing simulation only; functional trace
    /// construction is excluded).
    #[must_use]
    pub fn perf(&self) -> &Throughput {
        &self.perf
    }

    /// Cycle-accounting aggregate (productive vs attributed stall
    /// cycles) over every simulation this harness has run. Deterministic
    /// — unlike [`Harness::perf`] it carries no wall-clock values, so
    /// it is safe to include in golden outputs.
    #[must_use]
    pub fn stall_summary(&self) -> &StallSummary {
        &self.stalls
    }

    /// Runs one workload under one mode and machine configuration.
    pub fn run(&mut self, w: Workload, mode: ExecMode, cfg: &MachineConfig) -> SimStats {
        let trace = self.trace(w);
        let (stats, perf, _) =
            run_job(&trace, &Job::new(w, mode, cfg)).expect("simulation completes");
        self.perf.add(&perf);
        self.stalls.add_run(&stats);
        stats
    }

    /// Runs an experiment grid, fanning the jobs across `threads`
    /// worker threads.
    ///
    /// Traces are materialized up front (once per distinct workload);
    /// the workers then share them read-only. Results come back in job
    /// order, and because every simulation is single-threaded and
    /// deterministic, the output is bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any job fails; use [`Harness::try_sweep`] to degrade
    /// gracefully instead.
    pub fn sweep(&mut self, jobs: &[Job], threads: usize) -> Vec<SimStats> {
        let (stats, errors) = self.try_sweep(jobs, threads);
        assert!(
            errors.is_empty(),
            "sweep job failed: {} ({})",
            errors[0].label,
            errors[0].message
        );
        stats
    }

    /// Runs an experiment grid without aborting on individual-job
    /// failure: a job that returns a simulation error *or panics* is
    /// isolated, its slot in the returned stats is a default-valued
    /// placeholder, and a structured [`JobError`] records what
    /// happened. The remaining jobs still run to completion.
    pub fn try_sweep(&mut self, jobs: &[Job], threads: usize) -> (Vec<SimStats>, Vec<JobError>) {
        self.try_sweep_with(jobs, threads, |_, _| {})
    }

    /// [`Harness::try_sweep`] with a per-job completion callback.
    ///
    /// `on_done(index, result)` fires once per job, from the worker
    /// thread that finished it, as soon as the result is known —
    /// completion *order* is thread-schedule dependent, but each call's
    /// content is deterministic. On success the callback also receives
    /// the job's windowed-metrics series (empty unless the job set
    /// [`Job::with_metrics_window`]). The campaign runner uses this to
    /// checkpoint progress incrementally.
    ///
    /// A job whose *trace* cannot be materialized (workload assembly or
    /// emulation failure) is reported as a [`JobError`] like any other
    /// failure; the remaining jobs still run.
    pub fn try_sweep_with(
        &mut self,
        jobs: &[Job],
        threads: usize,
        on_done: impl Fn(usize, Result<(&SimStats, &[WindowSample]), &JobError>) + Sync,
    ) -> (Vec<SimStats>, Vec<JobError>) {
        let traces: Vec<Result<Arc<[DynInst]>, JobFailure>> = jobs
            .iter()
            .map(|j| {
                self.try_trace_for(j.workload, j.input_seed)
                    .map_err(|e| JobFailure::new(JobErrorKind::Trace, e.to_string()))
            })
            .collect();
        let threads = threads.clamp(1, jobs.len().max(1));
        type JobOk = (SimStats, Throughput, Vec<WindowSample>);
        let run_one = |i: usize| -> Result<JobOk, JobError> {
            let outcome = match &traces[i] {
                Ok(trace) => run_job_isolated(trace, &jobs[i]),
                Err(e) => Err(e.clone()),
            };
            match outcome {
                Ok(r) => {
                    on_done(i, Ok((&r.0, r.2.as_slice())));
                    Ok(r)
                }
                Err(failure) => {
                    let err = JobError::from_failure(i, jobs[i].label(), failure);
                    on_done(i, Err(&err));
                    Err(err)
                }
            }
        };
        let results: Vec<Result<JobOk, JobError>> = if threads == 1 {
            (0..jobs.len()).map(run_one).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<Result<JobOk, JobError>>> =
                jobs.iter().map(|_| OnceLock::new()).collect();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        assert!(slots[i].set(run_one(i)).is_ok(), "each job runs once");
                    });
                }
            });
            slots
                .into_iter()
                .map(|c| c.into_inner().expect("worker filled every slot"))
                .collect()
        };
        // Accumulate in job order so the total is thread-count
        // independent apart from the wall-clock values themselves.
        let mut errors = Vec::new();
        let stats = results
            .into_iter()
            .map(|r| match r {
                Ok((stats, perf, _)) => {
                    self.perf.add(&perf);
                    self.stalls.add_run(&stats);
                    stats
                }
                Err(e) => {
                    errors.push(e);
                    SimStats::default()
                }
            })
            .collect();
        (stats, errors)
    }
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// samples.
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Formats replicated samples as `mean±stddev` with `decimals` fraction
/// digits; a single sample renders without the `±` suffix.
#[must_use]
pub fn pm(xs: &[f64], decimals: usize) -> String {
    if xs.len() < 2 {
        format!("{:.decimals$}", mean(xs))
    } else {
        format!("{:.decimals$}±{:.decimals$}", mean(xs), stddev(xs))
    }
}

/// A fixed-width text table printer for the figure binaries.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%x".contains(ch));
                if numeric && i > 0 {
                    line.push_str(&format!("{cell:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<w$}", w = widths[i]));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// The table as a JSON object: `{"header": [...], "rows": [[...]]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let header: Json = self.header.iter().map(|h| Json::from(h.as_str())).collect();
        let rows: Json = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| Json::from(c.as_str())).collect::<Json>())
            .collect();
        Json::obj().field("header", header).field("rows", rows)
    }
}

/// Prints a figure's result table, honouring `--json`.
///
/// In text mode this reproduces the binaries' traditional layout: the
/// title, a parenthesized note including the quick-mode flag, a blank
/// line, then the aligned table. `perf` (usually [`Harness::perf`])
/// reports the host-side wall-clock throughput of the runs behind the
/// figure: in JSON it lands in a trailing `"perf"` field; in text mode
/// it goes to *stderr*, keeping stdout captures byte-stable across
/// machines.
///
/// `errors` (usually the second half of [`Harness::try_sweep`]) lists
/// the grid cells that failed: in JSON they become an `"errors"` array
/// before `"perf"`; in text mode each is reported on stderr. Callers
/// are expected to exit nonzero when the slice is non-empty.
///
/// `stalls` (usually [`Harness::stall_summary`]) is the deterministic
/// cycle-accounting aggregate behind the figure: in JSON it lands in a
/// `"stalls"` field after `"table"`; in text mode it prints one stderr
/// line, keeping stdout captures byte-stable.
pub fn emit(
    cli: &Cli,
    title: &str,
    note: &str,
    table: &Table,
    stalls: &StallSummary,
    errors: &[JobError],
    perf: &Throughput,
) {
    if cli.json {
        let out = Json::obj()
            .field("title", title)
            .field("note", note)
            .field("quick", cli.quick)
            .field("table", table.to_json())
            .field("stalls", stalls.to_json())
            .field(
                "errors",
                errors.iter().map(JobError::to_json).collect::<Json>(),
            )
            .field("perf", perf.to_json());
        println!("{out}");
    } else {
        println!("{title}");
        if note.is_empty() {
            println!("(quick mode: {})\n", cli.quick);
        } else {
            println!("({note}, quick mode: {})\n", cli.quick);
        }
        print!("{}", table.render());
        for e in errors {
            eprintln!("error: job {} ({}): {}", e.index, e.label, e.message);
        }
        if stalls.cycles > 0 {
            let b = &stalls.stalls;
            eprintln!(
                "stalls: {} of {} cycles productive; frontend {}, deps {}, issue {}, \
                 fu {}, irb-port {}, exec {}, commit {}, rewind {}",
                stalls.productive_cycles,
                stalls.cycles,
                b.frontend_empty,
                b.waiting_deps,
                b.issue_starved,
                b.fu_contention,
                b.irb_port,
                b.execution,
                b.commit_blocked,
                b.rewind,
            );
        }
        if perf.wall_seconds > 0.0 {
            eprintln!(
                "perf: {:.2}s wall, {:.2}M cycles/s, {:.2}M insts/s \
                 ({} sim cycles, {} committed insts)",
                perf.wall_seconds,
                perf.cycles_per_sec() / 1e6,
                perf.insts_per_sec() / 1e6,
                perf.sim_cycles,
                perf.committed_insts,
            );
        }
    }
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Formats an IPC with three decimals.
#[must_use]
pub fn ipc(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["app", "ipc"]);
        t.row(vec!["gzip", "1.234"]);
        t.row(vec!["a", "2.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn empty_table_renders_without_panicking() {
        // Regression: `2 * (cols - 1)` underflowed for a header-less
        // table; the separator math must saturate instead.
        let t = Table::new(Vec::<String>::new());
        let s = t.render();
        assert_eq!(s, "\n\n");
        let mut one = Table::new(vec!["only"]);
        one.row(vec!["x"]);
        assert!(one.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn table_to_json_shape() {
        let mut t = Table::new(vec!["app", "ipc"]);
        t.row(vec!["gzip", "1.234"]);
        assert_eq!(
            t.to_json().to_string(),
            r#"{"header":["app","ipc"],"rows":[["gzip","1.234"]]}"#
        );
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn cli_parses_shared_flags() {
        let cli = Cli::from_vec(
            [
                "--quick",
                "--json",
                "--threads",
                "3",
                "--forwarding",
                "per-stream",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        );
        assert!(cli.quick);
        assert!(cli.json);
        assert_eq!(cli.threads, 3);
        assert!(cli.flag("--quick"));
        assert_eq!(cli.value("--forwarding"), Some("per-stream"));
        assert_eq!(cli.value("--missing"), None);
    }

    #[test]
    fn env_flag_truthiness_treats_zero_and_false_as_off() {
        use std::ffi::OsStr;
        // Regression: REDSIM_QUICK=0 used to enable quick mode because
        // the check was `var_os(..).is_some()`.
        assert!(!env_value_enabled(None));
        assert!(!env_value_enabled(Some(OsStr::new(""))));
        assert!(!env_value_enabled(Some(OsStr::new("0"))));
        assert!(!env_value_enabled(Some(OsStr::new("false"))));
        assert!(!env_value_enabled(Some(OsStr::new("FALSE"))));
        assert!(!env_value_enabled(Some(OsStr::new("False"))));
        assert!(env_value_enabled(Some(OsStr::new("1"))));
        assert!(env_value_enabled(Some(OsStr::new("true"))));
        assert!(env_value_enabled(Some(OsStr::new("yes"))));
        // "00" is deliberately on: only the exact spellings are off.
        assert!(env_value_enabled(Some(OsStr::new("00"))));
    }

    #[test]
    fn cli_rejects_nonpositive_thread_and_seed_counts() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(
            Cli::try_from_vec(args(&["--threads", "0"])).err(),
            Some(CliError::InvalidThreads("0".into()))
        );
        assert_eq!(
            Cli::try_from_vec(args(&["--threads", "many"])).err(),
            Some(CliError::InvalidThreads("many".into()))
        );
        assert_eq!(
            Cli::try_from_vec(args(&["--seeds", "0"])).err(),
            Some(CliError::InvalidSeeds("0".into()))
        );
        assert_eq!(
            Cli::try_from_vec(args(&["--seeds", "-3"])).err(),
            Some(CliError::InvalidSeeds("-3".into()))
        );
        let ok = Cli::try_from_vec(args(&["--threads", "2", "--seeds", "3"])).expect("valid");
        assert_eq!((ok.threads, ok.seeds), (2, 3));
        let e = CliError::InvalidThreads("0".into());
        assert!(e.to_string().contains("--threads"));
    }

    #[test]
    fn cli_rejects_a_zero_metrics_window() {
        // Regression: `--metrics-window 0` used to flow through to the
        // sampler (or be silently reinterpreted per binary) instead of
        // being a typed usage error like `--threads 0` / `--seeds 0`.
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(
            Cli::try_from_vec(args(&["--metrics-window", "0"])).err(),
            Some(CliError::InvalidMetricsWindow("0".into()))
        );
        assert_eq!(
            Cli::try_from_vec(args(&["--metrics-window", "lots"])).err(),
            Some(CliError::InvalidMetricsWindow("lots".into()))
        );
        let ok = Cli::try_from_vec(args(&["--metrics-window", "512"])).expect("valid");
        assert_eq!(ok.metrics_window, Some(512));
        assert_eq!(
            Cli::try_from_vec(vec![]).expect("valid").metrics_window,
            None
        );
        let e = CliError::InvalidMetricsWindow("0".into());
        assert!(e.to_string().contains("--metrics-window"));
    }

    #[test]
    #[should_panic(expected = "valid shared CLI arguments")]
    fn from_vec_panics_on_rejected_arguments() {
        let _ = Cli::from_vec(vec!["--threads".into(), "0".into()]);
    }

    #[test]
    fn harness_accumulates_a_conserving_stall_summary() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let s1 = h.run(Workload::Gzip, ExecMode::Sie, &cfg);
        let jobs = vec![Job::new(Workload::Gzip, ExecMode::DieIrb, &cfg)];
        let swept = h.sweep(&jobs, 1);
        let sum = h.stall_summary();
        assert_eq!(sum.cycles, s1.cycles + swept[0].cycles);
        assert_eq!(
            sum.productive_cycles + sum.stalls.total(),
            sum.cycles,
            "aggregated cycle accounting must still partition"
        );
    }

    #[test]
    fn harness_trace_is_cached_and_stable() {
        let mut h = Harness::quick();
        let a = h.trace(Workload::Gzip);
        let b = h.trace(Workload::Gzip);
        assert!(Arc::ptr_eq(&a, &b), "second call reuses the cached trace");
        assert!(!a.is_empty());
    }

    #[test]
    fn harness_run_produces_stats() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let s = h.run(Workload::Gzip, ExecMode::Sie, &cfg);
        assert!(s.ipc() > 0.0);
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let jobs = vec![
            Job::new(Workload::Gzip, ExecMode::Sie, &cfg),
            Job::new(Workload::Gzip, ExecMode::Die, &cfg),
            Job::new(Workload::Mcf, ExecMode::DieIrb, &cfg),
        ];
        let swept = h.sweep(&jobs, 1);
        assert_eq!(swept[0], h.run(Workload::Gzip, ExecMode::Sie, &cfg));
        assert_eq!(swept[1], h.run(Workload::Gzip, ExecMode::Die, &cfg));
        assert_eq!(swept[2], h.run(Workload::Mcf, ExecMode::DieIrb, &cfg));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let mut jobs = Vec::new();
        for w in [Workload::Gzip, Workload::Mcf] {
            for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
                jobs.push(Job::new(w, mode, &cfg));
            }
        }
        jobs.push(
            Job::new(Workload::Gzip, ExecMode::Die, &cfg).with_faults(FaultConfig {
                fu_rate: 1e-4,
                seed: 7,
                ..FaultConfig::none()
            }),
        );
        let serial = h.sweep(&jobs, 1);
        let parallel = h.sweep(&jobs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_of_empty_grid_is_empty() {
        let mut h = Harness::quick();
        assert!(h.sweep(&[], 8).is_empty());
    }

    #[test]
    fn stddev_and_pm_formatting() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(stddev(&[2.0, 4.0]), f64::sqrt(2.0));
        assert_eq!(pm(&[1.25], 2), "1.25");
        assert_eq!(pm(&[1.0, 2.0], 1), "1.5±0.7");
    }

    #[test]
    fn input_seed_changes_the_cached_trace() {
        let mut h = Harness::quick();
        let base = h.trace_for(Workload::Gzip, None);
        let same = h.trace_for(Workload::Gzip, None);
        assert!(Arc::ptr_eq(&base, &same));
        let other = h.trace_for(Workload::Gzip, Some(99));
        assert!(!Arc::ptr_eq(&base, &other), "seeds get distinct traces");
    }

    #[test]
    fn try_sweep_isolates_a_panicking_job() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        // fu_rate 2.0 is invalid; `run_job` rejects it through
        // `Simulator::try_with_faults`, exercising the error path.
        let bad = FaultConfig {
            fu_rate: 2.0,
            ..FaultConfig::none()
        };
        let jobs = vec![
            Job::new(Workload::Gzip, ExecMode::Sie, &cfg),
            Job::new(Workload::Gzip, ExecMode::Die, &cfg).with_faults(bad),
            Job::new(Workload::Gzip, ExecMode::DieIrb, &cfg),
        ];
        let (stats, errors) = h.try_sweep(&jobs, 2);
        assert_eq!(stats.len(), 3);
        assert!(stats[0].ipc() > 0.0, "healthy jobs still complete");
        assert!(stats[2].ipc() > 0.0, "healthy jobs still complete");
        assert_eq!(
            stats[1],
            SimStats::default(),
            "failed slot is a placeholder"
        );
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].index, 1);
        assert_eq!(errors[0].label, "gzip/Die");
        assert!(
            errors[0].message.contains("invalid fault configuration"),
            "panic message survives: {}",
            errors[0].message
        );
    }

    #[test]
    #[should_panic(expected = "sweep job failed")]
    fn sweep_still_panics_on_job_failure() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let bad = FaultConfig {
            fu_rate: -1.0,
            ..FaultConfig::none()
        };
        let jobs = vec![Job::new(Workload::Gzip, ExecMode::Die, &cfg).with_faults(bad)];
        let _ = h.sweep(&jobs, 1);
    }

    #[test]
    fn try_sweep_with_reports_every_completion() {
        use std::sync::Mutex;
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let jobs = vec![
            Job::new(Workload::Gzip, ExecMode::Sie, &cfg),
            Job::new(Workload::Gzip, ExecMode::Die, &cfg),
        ];
        let seen = Mutex::new(Vec::new());
        let (stats, errors) = h.try_sweep_with(&jobs, 2, |i, r| {
            seen.lock().unwrap().push((i, r.is_ok()));
        });
        assert!(errors.is_empty());
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, true), (1, true)]);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn metrics_windows_flow_through_the_callback() {
        use std::sync::Mutex;
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let jobs = vec![
            Job::new(Workload::Gzip, ExecMode::Sie, &cfg).with_metrics_window(512),
            Job::new(Workload::Gzip, ExecMode::Sie, &cfg),
        ];
        let committed = Mutex::new(0u64);
        let (stats, errors) = h.try_sweep_with(&jobs, 1, |i, r| {
            let (s, windows) = r.expect("jobs succeed");
            if i == 0 {
                assert!(!windows.is_empty(), "windowed job yields samples");
                let cycle_sum: u64 = windows.iter().map(WindowSample::cycles).sum();
                assert_eq!(cycle_sum, s.cycles, "windows tile the whole run");
                *committed.lock().unwrap() =
                    windows.iter().map(|w| w.counters.committed_insts).sum();
            } else {
                assert!(windows.is_empty(), "metrics-free job yields none");
            }
        });
        assert!(errors.is_empty());
        assert_eq!(*committed.lock().unwrap(), stats[0].committed_insts);
        assert_eq!(
            stats[0], stats[1],
            "metrics collection is observationally pure"
        );
    }

    #[test]
    fn panic_payloads_are_preserved_verbatim() {
        let mut h = Harness::quick();
        let trace = h.trace(Workload::Gzip);
        let mut cfg = MachineConfig::paper_baseline();
        cfg.fetch_width = 0; // Simulator::new panics in validate().
        let job = Job::new(Workload::Gzip, ExecMode::Sie, &cfg);
        let err = match run_job_isolated(&trace, &job) {
            Err(e) => e,
            Ok(_) => panic!("an invalid config must fail the job"),
        };
        assert_eq!(err.kind, JobErrorKind::Panic);
        assert_eq!(
            err.panic_payload.as_deref(),
            Some("fetch width must be positive"),
            "the payload survives without any prefix or rewording"
        );
        assert_eq!(err.message, "panic: fetch width must be positive");
    }

    #[test]
    fn error_kinds_classify_and_round_trip() {
        assert!(!JobErrorKind::Sim.is_transient());
        assert!(!JobErrorKind::Trace.is_transient());
        assert!(JobErrorKind::Panic.is_transient());
        assert!(JobErrorKind::Deadline.is_transient());
        assert!(JobErrorKind::Io.is_transient());
        assert!(JobErrorKind::Injected.is_transient());
        for k in [
            JobErrorKind::Sim,
            JobErrorKind::Trace,
            JobErrorKind::Panic,
            JobErrorKind::Deadline,
            JobErrorKind::Io,
            JobErrorKind::Injected,
        ] {
            assert_eq!(JobErrorKind::parse_lossy(k.as_str()), k);
        }
        // Unknown spellings degrade to the non-retried kind.
        assert_eq!(JobErrorKind::parse_lossy("gamma-ray"), JobErrorKind::Sim);
    }

    #[test]
    fn a_raised_cancel_flag_fails_the_job_as_a_deadline() {
        use std::sync::atomic::AtomicBool;
        let mut h = Harness::quick();
        let trace = h.trace(Workload::Gzip);
        let cfg = MachineConfig::paper_baseline();
        let flag = Arc::new(AtomicBool::new(true)); // already expired
        let job = Job::new(Workload::Gzip, ExecMode::Sie, &cfg).with_cancel(Arc::clone(&flag));
        let err = match run_job_isolated(&trace, &job) {
            Err(e) => e,
            Ok(_) => panic!("a pre-raised flag must cancel the run"),
        };
        assert_eq!(err.kind, JobErrorKind::Deadline);
        assert!(
            err.message.contains("host wall-clock deadline"),
            "message names the mechanism: {}",
            err.message
        );
        // An unarmed job over the same trace is untouched by the flag.
        let clean = Job::new(Workload::Gzip, ExecMode::Sie, &cfg);
        let (stats, _, _) = run_job_isolated(&trace, &clean).expect("clean run completes");
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn job_error_json_carries_kind_and_panic_payload() {
        let err = JobError {
            index: 3,
            label: "gzip/Sie".into(),
            message: "panic: boom".into(),
            kind: JobErrorKind::Panic,
            panic_payload: Some("boom".into()),
        };
        let s = err.to_json().to_string();
        assert!(s.contains(r#""kind":"panic""#), "{s}");
        assert!(s.contains(r#""panic":"boom""#), "{s}");
        let plain = JobError {
            index: 0,
            label: "gzip/Sie".into(),
            message: "pipeline made no progress near cycle 7".into(),
            kind: JobErrorKind::Sim,
            panic_payload: None,
        };
        let s = plain.to_json().to_string();
        assert!(s.contains(r#""kind":"sim""#), "{s}");
        assert!(!s.contains(r#""panic""#), "no payload field when none: {s}");
    }

    #[test]
    fn watchdog_job_comes_back_flagged_not_failed() {
        let mut h = Harness::quick();
        let cfg = MachineConfig::paper_baseline();
        let jobs = vec![Job::new(Workload::Gzip, ExecMode::Sie, &cfg).with_watchdog(50)];
        let (stats, errors) = h.try_sweep(&jobs, 1);
        assert!(errors.is_empty(), "a tripped watchdog is not a job error");
        assert!(stats[0].watchdog_fired);
    }
}
