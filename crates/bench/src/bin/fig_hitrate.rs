//! Reconstructed Fig. B: IRB behaviour per workload under DIE-IRB —
//! PC-hit rate, reuse-test pass rate, the fraction of duplicate-stream
//! work that bypassed the functional units, and port starvation.

use redsim_bench::{emit, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();

    let jobs: Vec<Job> = Workload::ALL
        .iter()
        .map(|&w| Job::new(w, ExecMode::DieIrb, &base))
        .collect();
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "pc-hit",
        "reuse-pass",
        "dup-bypassed",
        "lookups-starved",
        "inserts-starved",
        "conflict-evictions",
    ]);
    let (mut hits, mut passes, mut bypasses) = (Vec::new(), Vec::new(), Vec::new());
    for (w, s) in Workload::ALL.iter().zip(&results) {
        let hit = s.irb.buffer.hit_rate() * 100.0;
        let pass = s.irb.reuse_pass_rate() * 100.0;
        let bypass = s.bypass_fraction() * 100.0;
        hits.push(hit);
        passes.push(pass);
        bypasses.push(bypass);
        table.row(vec![
            w.name().to_owned(),
            pct(hit),
            pct(pass),
            pct(bypass),
            s.irb.lookups_port_starved.to_string(),
            s.irb.inserts_port_starved.to_string(),
            s.irb.buffer.conflict_evictions.to_string(),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        pct(mean(&hits)),
        pct(mean(&passes)),
        pct(mean(&bypasses)),
        String::new(),
        String::new(),
        String::new(),
    ]);

    emit(
        &cli,
        "IRB hit and reuse rates under DIE-IRB (reconstructed Fig. B)",
        "1024-entry direct-mapped, 4R/2W/2RW",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
