//! Reconstructed Fig. F: transient-fault detection coverage, exercising
//! the §3.4 redundancy analysis:
//!
//! * functional-unit strikes — detected by the commit pair comparison;
//! * IRB-array strikes — detected because a corrupt reused result still
//!   faces the primary stream's ALU execution at commit (the reason the
//!   IRB needs no dedicated protection);
//! * shared-forwarding-bus strikes — the acknowledged residual: under
//!   primary-to-both forwarding both copies consume the same corrupt
//!   operand and agree (Fig. 6(c)); under per-stream forwarding the same
//!   strike is caught (Fig. 6(b));
//! * SIE under the same strikes — silent data corruption, the contrast
//!   motivating redundancy at all.

use redsim_bench::{emit, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, FaultConfig, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let apps = [
        Workload::Gzip,
        Workload::Gcc,
        Workload::Twolf,
        Workload::Equake,
    ];

    let scenarios: Vec<(&str, ExecMode, FaultConfig)> = vec![
        (
            "DIE / FU strikes",
            ExecMode::Die,
            FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE-IRB / FU strikes",
            ExecMode::DieIrb,
            FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE-IRB / IRB strikes",
            ExecMode::DieIrb,
            FaultConfig {
                irb_rate: 0.05,
                seed: 13,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE-IRB / bus strikes (shared fwd)",
            ExecMode::DieIrb,
            FaultConfig {
                forward_rate: 1e-4,
                seed: 17,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE / bus strikes (per-stream fwd)",
            ExecMode::Die,
            FaultConfig {
                forward_rate: 1e-4,
                seed: 17,
                ..FaultConfig::none()
            },
        ),
        (
            "SIE / FU strikes",
            ExecMode::Sie,
            FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
        ),
    ];

    let mut jobs = Vec::new();
    for (_, mode, fc) in &scenarios {
        for w in apps {
            jobs.push(Job::new(w, *mode, &base).with_faults(*fc));
        }
    }
    let results = h.sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "scenario",
        "app",
        "injected",
        "detected",
        "escaped",
        "silent(SIE)",
        "coverage",
    ]);
    for ((name, _, _), runs) in scenarios.iter().zip(results.chunks_exact(apps.len())) {
        for (w, stats) in apps.iter().zip(runs) {
            let f = stats.faults;
            let injected = f.injected_fu + f.injected_forward + f.injected_irb;
            table.row(vec![
                (*name).to_owned(),
                w.name().to_owned(),
                injected.to_string(),
                f.detected.to_string(),
                f.escaped.to_string(),
                f.silent_sie.to_string(),
                pct(f.coverage() * 100.0),
            ]);
        }
    }

    emit(
        &cli,
        "Transient-fault detection coverage (reconstructed Fig. F, §3.4)",
        "",
        &table,
        h.perf(),
    );
}
