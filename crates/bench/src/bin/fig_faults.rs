//! Reconstructed Fig. F: transient-fault detection coverage, exercising
//! the §3.4 redundancy analysis:
//!
//! * functional-unit strikes — detected by the commit pair comparison;
//! * IRB-array strikes — detected because a corrupt reused result still
//!   faces the primary stream's ALU execution at commit (the reason the
//!   IRB needs no dedicated protection);
//! * shared-forwarding-bus strikes — the acknowledged residual: under
//!   primary-to-both forwarding both copies consume the same corrupt
//!   operand and agree (Fig. 6(c)); under per-stream forwarding the same
//!   strike is caught (Fig. 6(b));
//! * SIE under the same strikes — silent data corruption, the contrast
//!   motivating redundancy at all.
//!
//! `--fu-rate R`, `--forward-rate R` and `--irb-rate R` override the
//! strike rate of every scenario that injects at the matching site
//! (rejected with a clear message if the rate is not in `[0, 1]`).
//! `--seeds N` replicates every scenario across `N` independent fault
//! seeds and reports mean±stddev per column.

use redsim_bench::{emit, pm, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, FaultConfig, MachineConfig, SimStats};
use redsim_workloads::Workload;

/// Parses a `--*-rate` override, exiting with a clear message if the
/// value is not a number (range checking is `FaultConfig::validate`'s
/// job so the typed error covers both entry paths).
fn rate_override(cli: &Cli, flag: &str) -> Option<f64> {
    let v = cli.value(flag)?;
    match v.parse::<f64>() {
        Ok(x) => Some(x),
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {v:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let cli = Cli::parse();
    let fu = rate_override(&cli, "--fu-rate");
    let fwd = rate_override(&cli, "--forward-rate");
    let irb = rate_override(&cli, "--irb-rate");
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let apps = [
        Workload::Gzip,
        Workload::Gcc,
        Workload::Twolf,
        Workload::Equake,
    ];

    let mut scenarios: Vec<(&str, ExecMode, FaultConfig)> = vec![
        (
            "DIE / FU strikes",
            ExecMode::Die,
            FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE-IRB / FU strikes",
            ExecMode::DieIrb,
            FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE-IRB / IRB strikes",
            ExecMode::DieIrb,
            FaultConfig {
                irb_rate: 0.05,
                seed: 13,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE-IRB / bus strikes (shared fwd)",
            ExecMode::DieIrb,
            FaultConfig {
                forward_rate: 1e-4,
                seed: 17,
                ..FaultConfig::none()
            },
        ),
        (
            "DIE / bus strikes (per-stream fwd)",
            ExecMode::Die,
            FaultConfig {
                forward_rate: 1e-4,
                seed: 17,
                ..FaultConfig::none()
            },
        ),
        (
            "SIE / FU strikes",
            ExecMode::Sie,
            FaultConfig {
                fu_rate: 2e-4,
                seed: 11,
                ..FaultConfig::none()
            },
        ),
    ];

    // Apply CLI rate overrides to the scenarios that inject at the
    // matching site, then validate each configuration up front so a bad
    // rate fails fast with the typed error instead of mid-sweep.
    for (name, _, fc) in &mut scenarios {
        if fc.fu_rate > 0.0 {
            if let Some(r) = fu {
                fc.fu_rate = r;
            }
        }
        if fc.forward_rate > 0.0 {
            if let Some(r) = fwd {
                fc.forward_rate = r;
            }
        }
        if fc.irb_rate > 0.0 {
            if let Some(r) = irb {
                fc.irb_rate = r;
            }
        }
        if let Err(e) = fc.validate() {
            eprintln!("error: scenario {name:?}: invalid fault configuration: {e}");
            std::process::exit(2);
        }
    }

    let seeds = u64::from(cli.seeds);
    let mut jobs = Vec::new();
    for (_, mode, fc) in &scenarios {
        for w in apps {
            for rep in 0..seeds {
                let fc = FaultConfig {
                    seed: fc.seed + 1000 * rep,
                    ..*fc
                };
                jobs.push(Job::new(w, *mode, &base).with_faults(fc));
            }
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "scenario",
        "app",
        "injected",
        "detected",
        "escaped",
        "silent(SIE)",
        "coverage",
    ]);
    let per_scenario = apps.len() * seeds as usize;
    for ((name, _, _), runs) in scenarios.iter().zip(results.chunks_exact(per_scenario)) {
        for (w, reps) in apps.iter().zip(runs.chunks_exact(seeds as usize)) {
            let col =
                |get: &dyn Fn(&SimStats) -> f64| -> Vec<f64> { reps.iter().map(get).collect() };
            let injected = col(&|s| {
                (s.faults.injected_fu + s.faults.injected_forward + s.faults.injected_irb) as f64
            });
            let detected = col(&|s| s.faults.detected as f64);
            let escaped = col(&|s| s.faults.escaped as f64);
            let silent = col(&|s| s.faults.silent_sie as f64);
            let coverage = col(&|s| s.faults.coverage() * 100.0);
            table.row(vec![
                (*name).to_owned(),
                w.name().to_owned(),
                pm(&injected, 0),
                pm(&detected, 0),
                pm(&escaped, 0),
                pm(&silent, 0),
                pm(&coverage, 1) + "%",
            ]);
        }
    }

    emit(
        &cli,
        "Transient-fault detection coverage (reconstructed Fig. F, §3.4)",
        &format!("{seeds} fault seed(s) per scenario"),
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
