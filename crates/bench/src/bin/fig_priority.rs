//! Scheduling-vs-reuse ablation: how much of DIE-IRB's gain comes from
//! giving the primary stream issue priority (a scheduling policy that
//! needs no IRB at all) versus from the reuse bypass itself.
//!
//! Configurations: plain DIE (symmetric oldest-first), DIE with
//! primary-first selection but no IRB, and full DIE-IRB.

use redsim_bench::{ipc, mean, Harness, Table};
use redsim_core::{ExecMode, IssuePolicy, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let mut h = Harness::from_args();
    let base = MachineConfig::paper_baseline();
    let mut priority = base.clone();
    priority.issue_policy = IssuePolicy::PrimaryFirst;

    let mut table = Table::new(vec![
        "app",
        "SIE",
        "DIE",
        "DIE+priority",
        "DIE-IRB",
    ]);
    let mut cols: [Vec<f64>; 4] = Default::default();
    for w in Workload::ALL {
        let sie = h.run(w, ExecMode::Sie, &base);
        let die = h.run(w, ExecMode::Die, &base);
        let die_prio = h.run(w, ExecMode::Die, &priority);
        let die_irb = h.run(w, ExecMode::DieIrb, &base);
        for (c, s) in cols.iter_mut().zip([&sie, &die, &die_prio, &die_irb]) {
            c.push(s.ipc());
        }
        table.row(vec![
            w.name().to_owned(),
            ipc(sie.ipc()),
            ipc(die.ipc()),
            ipc(die_prio.ipc()),
            ipc(die_irb.ipc()),
        ]);
    }
    let mut cells = vec!["mean".to_owned()];
    cells.extend(cols.iter().map(|c| ipc(mean(c))));
    table.row(cells);

    println!("Scheduling vs reuse: where DIE-IRB's gain comes from");
    println!("(quick mode: {})\n", h.is_quick());
    print!("{}", table.render());
}
