//! Scheduling-vs-reuse ablation: how much of DIE-IRB's gain comes from
//! giving the primary stream issue priority (a scheduling policy that
//! needs no IRB at all) versus from the reuse bypass itself.
//!
//! Configurations: plain DIE (symmetric oldest-first), DIE with
//! primary-first selection but no IRB, and full DIE-IRB.

use redsim_bench::{emit, ipc, mean, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, IssuePolicy, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let mut priority = base.clone();
    priority.issue_policy = IssuePolicy::PrimaryFirst;

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        jobs.push(Job::new(w, ExecMode::Die, &base));
        jobs.push(Job::new(w, ExecMode::Die, &priority));
        jobs.push(Job::new(w, ExecMode::DieIrb, &base));
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec!["app", "SIE", "DIE", "DIE+priority", "DIE-IRB"]);
    let mut cols: [Vec<f64>; 4] = Default::default();
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(4)) {
        let mut cells = vec![w.name().to_owned()];
        for (c, s) in cols.iter_mut().zip(runs) {
            c.push(s.ipc());
            cells.push(ipc(s.ipc()));
        }
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned()];
    cells.extend(cols.iter().map(|c| ipc(mean(c))));
    table.row(cells);

    emit(
        &cli,
        "Scheduling vs reuse: where DIE-IRB's gain comes from",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
