//! Ablation G (§3.3): value-based vs name-based reuse tests. Name-based
//! reuse invalidates an entry whenever one of its source registers is
//! overwritten, avoiding operand comparators — at the cost of hit rate.

use redsim_bench::{emit, ipc, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_irb::ReusePolicy;
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let value_cfg = MachineConfig::paper_baseline();
    let mut name_cfg = value_cfg.clone();
    name_cfg.irb.policy = ReusePolicy::Name;

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::DieIrb, &value_cfg));
        jobs.push(Job::new(w, ExecMode::DieIrb, &name_cfg));
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "value IPC",
        "value pass",
        "name IPC",
        "name pass",
    ]);
    let (mut v_ipc, mut n_ipc) = (Vec::new(), Vec::new());
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(2)) {
        let (v, n) = (&runs[0], &runs[1]);
        v_ipc.push(v.ipc());
        n_ipc.push(n.ipc());
        table.row(vec![
            w.name().to_owned(),
            ipc(v.ipc()),
            pct(v.irb.reuse_pass_rate() * 100.0),
            ipc(n.ipc()),
            pct(n.irb.reuse_pass_rate() * 100.0),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        ipc(mean(&v_ipc)),
        String::new(),
        ipc(mean(&n_ipc)),
        String::new(),
    ]);

    emit(
        &cli,
        "Value-based vs name-based reuse (Ablation G, §3.3)",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
