//! Ablation G (§3.3): value-based vs name-based reuse tests. Name-based
//! reuse invalidates an entry whenever one of its source registers is
//! overwritten, avoiding operand comparators — at the cost of hit rate.

use redsim_bench::{ipc, mean, pct, Harness, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_irb::ReusePolicy;
use redsim_workloads::Workload;

fn main() {
    let mut h = Harness::from_args();
    let value_cfg = MachineConfig::paper_baseline();
    let mut name_cfg = value_cfg.clone();
    name_cfg.irb.policy = ReusePolicy::Name;

    let mut table = Table::new(vec![
        "app",
        "value IPC",
        "value pass",
        "name IPC",
        "name pass",
    ]);
    let (mut v_ipc, mut n_ipc) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let v = h.run(w, ExecMode::DieIrb, &value_cfg);
        let n = h.run(w, ExecMode::DieIrb, &name_cfg);
        v_ipc.push(v.ipc());
        n_ipc.push(n.ipc());
        table.row(vec![
            w.name().to_owned(),
            ipc(v.ipc()),
            pct(v.irb.reuse_pass_rate() * 100.0),
            ipc(n.ipc()),
            pct(n.irb.reuse_pass_rate() * 100.0),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        ipc(mean(&v_ipc)),
        String::new(),
        ipc(mean(&n_ipc)),
        String::new(),
    ]);

    println!("Value-based vs name-based reuse (Ablation G, §3.3)");
    println!("(quick mode: {})\n", h.is_quick());
    print!("{}", table.render());
}
