//! §3.3's scheduler discussion, measured: the data-capture issue window
//! (reuse test in parallel with operand capture), the pipelined
//! non-data-capture adaptation (reuse test one cycle after wakeup,
//! following the register-file read), and the naive non-data-capture
//! design where a passing reuse test wastes the already-allocated
//! functional unit — forfeiting the bandwidth benefit entirely.

use redsim_bench::{emit, ipc, mean, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig, SchedulerModel};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let models = [
        ("data-capture", SchedulerModel::DataCapture),
        ("ndc-pipelined", SchedulerModel::NonDataCapturePipelined),
        ("ndc-naive", SchedulerModel::NonDataCaptureNaive),
    ];

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Die, &base));
        for (_, m) in &models {
            let mut cfg = base.clone();
            cfg.scheduler = *m;
            jobs.push(Job::new(w, ExecMode::DieIrb, &cfg));
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut header: Vec<String> = vec!["app".into(), "DIE".into()];
    for (n, _) in &models {
        header.push(format!("{n} IPC"));
        header.push(format!("{n} bypass"));
    }
    let mut table = Table::new(header);

    let per_app = 1 + models.len();
    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    let mut die_col = Vec::new();
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(per_app)) {
        let die = &runs[0];
        die_col.push(die.ipc());
        let mut cells = vec![w.name().to_owned(), ipc(die.ipc())];
        for (i, s) in runs[1..].iter().enumerate() {
            per_model[i].push(s.ipc());
            cells.push(ipc(s.ipc()));
            cells.push(s.fu_bypasses.to_string());
        }
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned(), ipc(mean(&die_col))];
    for v in &per_model {
        cells.push(ipc(mean(v)));
        cells.push(String::new());
    }
    table.row(cells);

    emit(
        &cli,
        "DIE-IRB under the three scheduler models of §3.3",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
