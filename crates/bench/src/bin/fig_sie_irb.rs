//! Ablation H: the same IRB attached to SIE vs to DIE. Reproduces the
//! observation (Sodani & Sohi via Citron et al., recounted in §1) that
//! bandwidth amplification barely helps a balanced single-stream core,
//! while it strongly helps the overloaded DIE core — the paper's reason
//! for revisiting instruction reuse.

use redsim_bench::{mean, pct, Harness, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let mut h = Harness::from_args();
    let base = MachineConfig::paper_baseline();

    let mut longlat = base.clone();
    longlat.reuse_long_latency_only = true;

    let mut table = Table::new(vec![
        "app",
        "SIE-IRB speedup over SIE",
        "SIE-IRB (long-latency ops only)",
        "DIE-IRB speedup over DIE",
    ]);
    let (mut sie_gain, mut sie_ll_gain, mut die_gain) =
        (Vec::new(), Vec::new(), Vec::new());
    for w in Workload::ALL {
        let sie = h.run(w, ExecMode::Sie, &base);
        let sie_irb = h.run(w, ExecMode::SieIrb, &base);
        let sie_irb_ll = h.run(w, ExecMode::SieIrb, &longlat);
        let die = h.run(w, ExecMode::Die, &base);
        let die_irb = h.run(w, ExecMode::DieIrb, &base);
        let s = (sie_irb.ipc() / sie.ipc() - 1.0) * 100.0;
        let sl = (sie_irb_ll.ipc() / sie.ipc() - 1.0) * 100.0;
        let d = (die_irb.ipc() / die.ipc() - 1.0) * 100.0;
        sie_gain.push(s);
        sie_ll_gain.push(sl);
        die_gain.push(d);
        table.row(vec![w.name().to_owned(), pct(s), pct(sl), pct(d)]);
    }
    table.row(vec![
        "mean".to_owned(),
        pct(mean(&sie_gain)),
        pct(mean(&sie_ll_gain)),
        pct(mean(&die_gain)),
    ]);

    println!("IRB on SIE vs IRB on DIE (Ablation H)");
    println!("(quick mode: {})\n", h.is_quick());
    print!("{}", table.render());
}
