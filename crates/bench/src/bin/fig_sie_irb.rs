//! Ablation H: the same IRB attached to SIE vs to DIE. Reproduces the
//! observation (Sodani & Sohi via Citron et al., recounted in §1) that
//! bandwidth amplification barely helps a balanced single-stream core,
//! while it strongly helps the overloaded DIE core — the paper's reason
//! for revisiting instruction reuse.

use redsim_bench::{emit, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();

    let mut longlat = base.clone();
    longlat.reuse_long_latency_only = true;

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        jobs.push(Job::new(w, ExecMode::SieIrb, &base));
        jobs.push(Job::new(w, ExecMode::SieIrb, &longlat));
        jobs.push(Job::new(w, ExecMode::Die, &base));
        jobs.push(Job::new(w, ExecMode::DieIrb, &base));
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "SIE-IRB speedup over SIE",
        "SIE-IRB (long-latency ops only)",
        "DIE-IRB speedup over DIE",
    ]);
    let (mut sie_gain, mut sie_ll_gain, mut die_gain) = (Vec::new(), Vec::new(), Vec::new());
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(5)) {
        let [sie, sie_irb, sie_irb_ll, die, die_irb] = runs else {
            unreachable!("chunks_exact(5)")
        };
        let s = (sie_irb.ipc() / sie.ipc() - 1.0) * 100.0;
        let sl = (sie_irb_ll.ipc() / sie.ipc() - 1.0) * 100.0;
        let d = (die_irb.ipc() / die.ipc() - 1.0) * 100.0;
        sie_gain.push(s);
        sie_ll_gain.push(sl);
        die_gain.push(d);
        table.row(vec![w.name().to_owned(), pct(s), pct(sl), pct(d)]);
    }
    table.row(vec![
        "mean".to_owned(),
        pct(mean(&sie_gain)),
        pct(mean(&sie_ll_gain)),
        pct(mean(&die_gain)),
    ]);

    emit(
        &cli,
        "IRB on SIE vs IRB on DIE (Ablation H)",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
