//! Fidelity ablation: how much do the optional model refinements —
//! wrong-path I-cache pollution and store-to-load forwarding — move the
//! results the paper cares about? Both effects apply to SIE and DIE
//! alike, so the *relative* DIE loss should be nearly invariant.

use redsim_bench::{ipc, mean, pct, Harness, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let mut h = Harness::from_args();
    let base = MachineConfig::paper_baseline();
    let mut full = base.clone();
    full.wrong_path_fetch = true;
    full.stl_forwarding = true;

    let mut table = Table::new(vec![
        "app",
        "SIE base",
        "SIE full-fidelity",
        "DIE loss base",
        "DIE loss full-fidelity",
    ]);
    let (mut base_loss, mut full_loss) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let sie_b = h.run(w, ExecMode::Sie, &base);
        let die_b = h.run(w, ExecMode::Die, &base);
        let sie_f = h.run(w, ExecMode::Sie, &full);
        let die_f = h.run(w, ExecMode::Die, &full);
        let lb = die_b.ipc_loss_vs(&sie_b);
        let lf = die_f.ipc_loss_vs(&sie_f);
        base_loss.push(lb);
        full_loss.push(lf);
        table.row(vec![
            w.name().to_owned(),
            ipc(sie_b.ipc()),
            ipc(sie_f.ipc()),
            pct(lb),
            pct(lf),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        String::new(),
        pct(mean(&base_loss)),
        pct(mean(&full_loss)),
    ]);

    println!("Fidelity ablation: wrong-path i-fetch + store-to-load forwarding");
    println!("(quick mode: {})\n", h.is_quick());
    print!("{}", table.render());
}
