//! Fidelity ablation: how much do the optional model refinements —
//! wrong-path I-cache pollution and store-to-load forwarding — move the
//! results the paper cares about? Both effects apply to SIE and DIE
//! alike, so the *relative* DIE loss should be nearly invariant.

use redsim_bench::{emit, ipc, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let mut full = base.clone();
    full.wrong_path_fetch = true;
    full.stl_forwarding = true;

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        jobs.push(Job::new(w, ExecMode::Die, &base));
        jobs.push(Job::new(w, ExecMode::Sie, &full));
        jobs.push(Job::new(w, ExecMode::Die, &full));
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "SIE base",
        "SIE full-fidelity",
        "DIE loss base",
        "DIE loss full-fidelity",
    ]);
    let (mut base_loss, mut full_loss) = (Vec::new(), Vec::new());
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(4)) {
        let [sie_b, die_b, sie_f, die_f] = runs else {
            unreachable!("chunks_exact(4)")
        };
        let lb = die_b.ipc_loss_vs(sie_b);
        let lf = die_f.ipc_loss_vs(sie_f);
        base_loss.push(lb);
        full_loss.push(lf);
        table.row(vec![
            w.name().to_owned(),
            ipc(sie_b.ipc()),
            ipc(sie_f.ipc()),
            pct(lb),
            pct(lf),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        String::new(),
        pct(mean(&base_loss)),
        pct(mean(&full_loss)),
    ]);

    emit(
        &cli,
        "Fidelity ablation: wrong-path i-fetch + store-to-load forwarding",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
