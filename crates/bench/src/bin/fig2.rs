//! Figure 2: percentage IPC loss with respect to SIE for the base DIE
//! and the seven resource-doubled DIE configurations, across the twelve
//! workloads plus the mean.
//!
//! Expected shape (paper §2.2): the base DIE loses 1–43% (~22% mean);
//! `2xALU` is the single most effective doubling; doubling all three
//! resources (`2xALU-2xRUU-2xWidths`) brings DIE back to roughly SIE.

use redsim_bench::{emit, ipc, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let configs: Vec<(&str, MachineConfig)> = vec![
        ("DIE", base.clone()),
        ("DIE-2xALU", base.clone().with_double_alus()),
        ("DIE-2xRUU", base.clone().with_double_ruu()),
        ("DIE-2xWidths", base.clone().with_double_widths()),
        (
            "DIE-2xALU-2xRUU",
            base.clone().with_double_alus().with_double_ruu(),
        ),
        (
            "DIE-2xALU-2xWidths",
            base.clone().with_double_alus().with_double_widths(),
        ),
        (
            "DIE-2xRUU-2xWidths",
            base.clone().with_double_ruu().with_double_widths(),
        ),
        (
            "DIE-2xALU-2xRUU-2xWidths",
            base.clone()
                .with_double_alus()
                .with_double_ruu()
                .with_double_widths(),
        ),
    ];

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        for (_, cfg) in &configs {
            jobs.push(Job::new(w, ExecMode::Die, cfg));
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut header: Vec<String> = vec!["app".into(), "SIE-IPC".into()];
    header.extend(configs.iter().map(|(n, _)| format!("{n} loss")));
    let mut table = Table::new(header);

    let per_app = 1 + configs.len();
    let mut losses: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(per_app)) {
        let sie = &runs[0];
        let mut cells = vec![w.name().to_owned(), ipc(sie.ipc())];
        for (i, die) in runs[1..].iter().enumerate() {
            let loss = die.ipc_loss_vs(sie);
            losses[i].push(loss);
            cells.push(pct(loss));
        }
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned(), String::new()];
    cells.extend(losses.iter().map(|l| pct(mean(l))));
    table.row(cells);

    emit(
        &cli,
        "Figure 2: % IPC loss with respect to SIE",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
