//! The clustered alternative (§3): give the duplicate stream its own
//! replicated functional-unit cluster instead of an IRB. The paper
//! rejects this as "bordering on spatial redundancy" — those replicated
//! units could have sped up SIE instead. This table quantifies the
//! argument: DIE-Cluster is compared both against DIE-IRB (which spends
//! almost no hardware) and against SIE-2xALU (what the same transistors
//! buy without redundancy).

use redsim_bench::{emit, ipc, mean, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let twoalu = base.clone().with_double_alus();

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        jobs.push(Job::new(w, ExecMode::Die, &base));
        jobs.push(Job::new(w, ExecMode::DieIrb, &base));
        jobs.push(Job::new(w, ExecMode::DieCluster, &base));
        jobs.push(Job::new(w, ExecMode::Sie, &twoalu));
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "SIE",
        "DIE",
        "DIE-IRB",
        "DIE-Cluster",
        "SIE-2xALU",
    ]);
    let mut cols: [Vec<f64>; 5] = Default::default();
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(5)) {
        let mut cells = vec![w.name().to_owned()];
        for (c, s) in cols.iter_mut().zip(runs) {
            c.push(s.ipc());
            cells.push(ipc(s.ipc()));
        }
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned()];
    cells.extend(cols.iter().map(|c| ipc(mean(c))));
    table.row(cells);

    emit(
        &cli,
        "Clustered DIE vs DIE-IRB vs what the transistors buy in SIE (§3)",
        &format!(
            "cluster: replicated 4/2/2/1 FUs + {}-cycle inter-cluster data delay",
            base.cluster_delay
        ),
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
