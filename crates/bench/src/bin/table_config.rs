//! The §4 base-machine configuration table, printed from the live
//! `MachineConfig::paper_baseline()` so the docs can never drift from
//! the code.

use redsim_bench::{Cli, Table};
use redsim_core::MachineConfig;

fn main() {
    let cli = Cli::parse();
    let c = MachineConfig::paper_baseline();
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec![
        "fetch / decode / issue / commit width".to_owned(),
        format!(
            "{} / {} / {} / {}",
            c.fetch_width, c.decode_width, c.issue_width, c.commit_width
        ),
    ]);
    t.row(vec![
        "RUU (unified ROB+IW)".to_owned(),
        format!("{} entries", c.ruu_size),
    ]);
    t.row(vec!["LSQ".to_owned(), format!("{} entries", c.lsq_size)]);
    t.row(vec![
        "int ALU / int mul-div / fp add / fp mul-div-sqrt".to_owned(),
        format!(
            "{} / {} / {} / {}",
            c.fu.int_alu, c.fu.int_mul_div, c.fu.fp_add, c.fu.fp_mul_div_sqrt
        ),
    ]);
    t.row(vec![
        "latencies (alu/mul/div/fadd/fmul/fdiv/fsqrt)".to_owned(),
        format!(
            "{}/{}/{}/{}/{}/{}/{}",
            c.latency.int_alu,
            c.latency.int_mul,
            c.latency.int_div,
            c.latency.fp_add,
            c.latency.fp_mul,
            c.latency.fp_div,
            c.latency.fp_sqrt
        ),
    ]);
    t.row(vec![
        "L1I".to_owned(),
        format!(
            "{} KB {}-way {}B, {} cycle(s)",
            c.hierarchy.l1i.size_bytes / 1024,
            c.hierarchy.l1i.assoc,
            c.hierarchy.l1i.line_bytes,
            c.hierarchy.l1i.hit_latency
        ),
    ]);
    t.row(vec![
        "L1D".to_owned(),
        format!(
            "{} KB {}-way {}B, {} cycle(s), {} port(s)",
            c.hierarchy.l1d.size_bytes / 1024,
            c.hierarchy.l1d.assoc,
            c.hierarchy.l1d.line_bytes,
            c.hierarchy.l1d.hit_latency,
            c.dcache.ports
        ),
    ]);
    t.row(vec![
        "L2 (unified)".to_owned(),
        format!(
            "{} KB {}-way {}B, {} cycles",
            c.hierarchy.l2.size_bytes / 1024,
            c.hierarchy.l2.assoc,
            c.hierarchy.l2.line_bytes,
            c.hierarchy.l2.hit_latency
        ),
    ]);
    t.row(vec![
        "memory".to_owned(),
        format!("{} cycles", c.hierarchy.mem_latency),
    ]);
    t.row(vec![
        "branch predictor".to_owned(),
        format!("{:?}", c.direction),
    ]);
    t.row(vec![
        "BTB / RAS".to_owned(),
        format!(
            "{} sets x {} ways / {} deep",
            c.btb.sets, c.btb.assoc, c.ras_depth
        ),
    ]);
    t.row(vec![
        "mispredict / BTB-miss penalty".to_owned(),
        format!("{} / {} cycles", c.mispredict_penalty, c.btb_miss_penalty),
    ]);
    t.row(vec![
        "IRB".to_owned(),
        format!(
            "{} entries, {}-way, {}R/{}W/{}RW ports, {}-stage lookup, {:?} reuse",
            c.irb.entries,
            c.irb.assoc,
            c.irb.ports.read,
            c.irb.ports.write,
            c.irb.ports.read_write,
            c.irb.lookup_stages,
            c.irb.policy
        ),
    ]);

    if cli.json {
        let out = redsim_util::Json::obj()
            .field("title", "Base machine configuration (paper §4)")
            .field("table", t.to_json());
        println!("{out}");
    } else {
        println!("Base machine configuration (paper §4)\n");
        print!("{}", t.render());
    }
}
