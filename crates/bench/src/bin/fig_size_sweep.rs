//! Reconstructed Fig. C: DIE-IRB IPC sensitivity to IRB capacity
//! (64–4096 entries, direct-mapped), against the DIE and SIE anchors.

use redsim_bench::{emit, ipc, mean, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

const SIZES: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 4096];

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Die, &base));
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        for &entries in &SIZES {
            let mut cfg = base.clone();
            cfg.irb.entries = entries;
            jobs.push(Job::new(w, ExecMode::DieIrb, &cfg));
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut header: Vec<String> = vec!["app".into(), "DIE".into()];
    header.extend(SIZES.iter().map(|s| format!("IRB-{s}")));
    header.push("SIE".into());
    let mut table = Table::new(header);

    let per_app = 2 + SIZES.len();
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(per_app)) {
        let (die, sie) = (&runs[0], &runs[1]);
        let mut cells = vec![w.name().to_owned(), ipc(die.ipc())];
        for (i, s) in runs[2..].iter().enumerate() {
            per_size[i].push(s.ipc());
            cells.push(ipc(s.ipc()));
        }
        cells.push(ipc(sie.ipc()));
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned(), String::new()];
    cells.extend(per_size.iter().map(|v| ipc(mean(v))));
    cells.push(String::new());
    table.row(cells);

    emit(
        &cli,
        "DIE-IRB IPC vs IRB capacity (reconstructed Fig. C)",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
