//! Reconstructed Fig. C: DIE-IRB IPC sensitivity to IRB capacity
//! (64–4096 entries, direct-mapped), against the DIE and SIE anchors.

use redsim_bench::{ipc, mean, Harness, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_workloads::Workload;

const SIZES: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 4096];

fn main() {
    let mut h = Harness::from_args();
    let base = MachineConfig::paper_baseline();

    let mut header: Vec<String> = vec!["app".into(), "DIE".into()];
    header.extend(SIZES.iter().map(|s| format!("IRB-{s}")));
    header.push("SIE".into());
    let mut table = Table::new(header);

    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    for w in Workload::ALL {
        let die = h.run(w, ExecMode::Die, &base);
        let sie = h.run(w, ExecMode::Sie, &base);
        let mut cells = vec![w.name().to_owned(), ipc(die.ipc())];
        for (i, &entries) in SIZES.iter().enumerate() {
            let mut cfg = base.clone();
            cfg.irb.entries = entries;
            let s = h.run(w, ExecMode::DieIrb, &cfg);
            per_size[i].push(s.ipc());
            cells.push(ipc(s.ipc()));
        }
        cells.push(ipc(sie.ipc()));
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned(), String::new()];
    cells.extend(per_size.iter().map(|v| ipc(mean(v))));
    cells.push(String::new());
    table.row(cells);

    println!("DIE-IRB IPC vs IRB capacity (reconstructed Fig. C)");
    println!("(quick mode: {})\n", h.is_quick());
    print!("{}", table.render());
}
