//! Reconstructed Fig. D: DIE-IRB sensitivity to IRB port provisioning.
//! The paper argues (§3.2) that modest ports suffice because only the
//! duplicate stream reads the IRB and the effective dispatch rate of a
//! DIE core is half that of SIE.

use redsim_bench::{emit, ipc, mean, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_irb::PortConfig;
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let ports: Vec<(&str, PortConfig)> = vec![
        (
            "1R/1W",
            PortConfig {
                read: 1,
                write: 1,
                read_write: 0,
            },
        ),
        (
            "2R/1W",
            PortConfig {
                read: 2,
                write: 1,
                read_write: 0,
            },
        ),
        (
            "2R/2W",
            PortConfig {
                read: 2,
                write: 2,
                read_write: 0,
            },
        ),
        ("4R/2W/2RW", PortConfig::paper_baseline()),
        (
            "8R/4W",
            PortConfig {
                read: 8,
                write: 4,
                read_write: 0,
            },
        ),
        ("unlimited", PortConfig::unlimited()),
    ];

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        for (_, pc) in &ports {
            let mut cfg = base.clone();
            cfg.irb.ports = *pc;
            jobs.push(Job::new(w, ExecMode::DieIrb, &cfg));
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut header: Vec<String> = vec!["app".into()];
    header.extend(ports.iter().map(|(n, _)| (*n).to_owned()));
    let mut table = Table::new(header);

    let mut per_port: Vec<Vec<f64>> = vec![Vec::new(); ports.len()];
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(ports.len())) {
        let mut cells = vec![w.name().to_owned()];
        for (i, s) in runs.iter().enumerate() {
            per_port[i].push(s.ipc());
            cells.push(ipc(s.ipc()));
        }
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned()];
    cells.extend(per_port.iter().map(|v| ipc(mean(v))));
    table.row(cells);

    emit(
        &cli,
        "DIE-IRB IPC vs IRB port provisioning (reconstructed Fig. D)",
        "",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
