//! The headline result (reconstructed Fig. A): IPC of SIE, DIE, DIE-IRB
//! and DIE-2xALU per workload, with the fraction of the ALU-bandwidth
//! loss (the DIE → DIE-2xALU gap) and of the overall loss (DIE → SIE)
//! that the IRB wins back.
//!
//! Paper claims (abstract): DIE-IRB regains ~50% of the ALU-bandwidth
//! IPC loss and ~23% of the overall IPC loss, on average.
//!
//! `--forwarding per-stream` runs the ablation where the IRB keeps
//! per-stream forwarding (the issue-window complexity the paper avoids).
//! `--seeds N` replicates every workload across `N` independent input
//! seeds (distinct generated inputs, hence distinct traces) and reports
//! mean±stddev per cell.

use redsim_bench::{emit, mean, pct, pm, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, ForwardingPolicy, MachineConfig};
use redsim_workloads::Workload;

const MODES: usize = 4;

fn main() {
    let cli = Cli::parse();
    let per_stream = cli.value("--forwarding") == Some("per-stream");
    let mut h = Harness::from_cli(&cli);
    let mut base = MachineConfig::paper_baseline();
    if per_stream {
        base.forwarding = ForwardingPolicy::PerStream;
    }
    let twoalu = base.clone().with_double_alus();

    // Replica 0 runs the workload's default input; replica r > 0 shifts
    // the input-generation seed, producing a genuinely different trace.
    let seeds = cli.seeds as usize;
    let mut jobs = Vec::new();
    for w in Workload::ALL {
        let default_seed = h.params(w).seed;
        for rep in 0..seeds as u64 {
            let input = (rep > 0).then(|| default_seed + rep);
            let mk = |mode, cfg: &MachineConfig| {
                let j = Job::new(w, mode, cfg);
                match input {
                    Some(s) => j.with_input_seed(s),
                    None => j,
                }
            };
            jobs.push(mk(ExecMode::Sie, &base));
            jobs.push(mk(ExecMode::Die, &base));
            jobs.push(mk(ExecMode::DieIrb, &base));
            jobs.push(mk(ExecMode::Die, &twoalu));
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "SIE",
        "DIE",
        "DIE-IRB",
        "DIE-2xALU",
        "alu-loss-recovered",
        "overall-loss-recovered",
    ]);
    let (mut alu_rec, mut all_rec) = (Vec::new(), Vec::new());
    let (mut die_losses, mut irb_losses) = (Vec::new(), Vec::new());
    let per_app = MODES * seeds;
    for (w, reps) in Workload::ALL.iter().zip(results.chunks_exact(per_app)) {
        // Per-replica IPCs and derived recovery fractions.
        let mut cols: [Vec<f64>; MODES] = Default::default();
        let (mut a_rep, mut o_rep) = (Vec::new(), Vec::new());
        for runs in reps.chunks_exact(MODES) {
            let [sie, die, irb, die2x] = runs else {
                unreachable!("chunks_exact(MODES)")
            };
            for (c, s) in cols.iter_mut().zip(runs) {
                c.push(s.ipc());
            }
            let alu_gap = die2x.ipc() - die.ipc();
            let overall_gap = sie.ipc() - die.ipc();
            a_rep.push(if alu_gap > 1e-9 {
                (irb.ipc() - die.ipc()) / alu_gap * 100.0
            } else {
                0.0
            });
            o_rep.push(if overall_gap > 1e-9 {
                (irb.ipc() - die.ipc()) / overall_gap * 100.0
            } else {
                0.0
            });
            die_losses.push(die.ipc_loss_vs(sie));
            irb_losses.push(irb.ipc_loss_vs(sie));
        }
        alu_rec.extend_from_slice(&a_rep);
        all_rec.extend_from_slice(&o_rep);
        table.row(vec![
            w.name().to_owned(),
            pm(&cols[0], 3),
            pm(&cols[1], 3),
            pm(&cols[2], 3),
            pm(&cols[3], 3),
            pm(&a_rep, 1) + "%",
            pm(&o_rep, 1) + "%",
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        pct(mean(&die_losses)) + " loss",
        pct(mean(&irb_losses)) + " loss",
        String::new(),
        pct(mean(&alu_rec)),
        pct(mean(&all_rec)),
    ]);

    emit(
        &cli,
        "Headline recovery (reconstructed Fig. A): SIE vs DIE vs DIE-IRB vs DIE-2xALU",
        &format!(
            "forwarding: {}",
            if per_stream {
                "per-stream"
            } else {
                "primary-to-both"
            }
        ),
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
