//! The headline result (reconstructed Fig. A): IPC of SIE, DIE, DIE-IRB
//! and DIE-2xALU per workload, with the fraction of the ALU-bandwidth
//! loss (the DIE → DIE-2xALU gap) and of the overall loss (DIE → SIE)
//! that the IRB wins back.
//!
//! Paper claims (abstract): DIE-IRB regains ~50% of the ALU-bandwidth
//! IPC loss and ~23% of the overall IPC loss, on average.
//!
//! `--forwarding per-stream` runs the ablation where the IRB keeps
//! per-stream forwarding (the issue-window complexity the paper avoids).

use redsim_bench::{emit, ipc, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, ForwardingPolicy, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let per_stream = cli.value("--forwarding") == Some("per-stream");
    let mut h = Harness::from_cli(&cli);
    let mut base = MachineConfig::paper_baseline();
    if per_stream {
        base.forwarding = ForwardingPolicy::PerStream;
    }
    let twoalu = base.clone().with_double_alus();

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        jobs.push(Job::new(w, ExecMode::Sie, &base));
        jobs.push(Job::new(w, ExecMode::Die, &base));
        jobs.push(Job::new(w, ExecMode::DieIrb, &base));
        jobs.push(Job::new(w, ExecMode::Die, &twoalu));
    }
    let results = h.sweep(&jobs, cli.threads);

    let mut table = Table::new(vec![
        "app",
        "SIE",
        "DIE",
        "DIE-IRB",
        "DIE-2xALU",
        "alu-loss-recovered",
        "overall-loss-recovered",
    ]);
    let (mut alu_rec, mut all_rec) = (Vec::new(), Vec::new());
    let (mut die_losses, mut irb_losses) = (Vec::new(), Vec::new());
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(4)) {
        let [sie, die, irb, die2x] = runs else {
            unreachable!("chunks_exact(4)")
        };
        let alu_gap = die2x.ipc() - die.ipc();
        let overall_gap = sie.ipc() - die.ipc();
        let a = if alu_gap > 1e-9 {
            (irb.ipc() - die.ipc()) / alu_gap * 100.0
        } else {
            0.0
        };
        let o = if overall_gap > 1e-9 {
            (irb.ipc() - die.ipc()) / overall_gap * 100.0
        } else {
            0.0
        };
        alu_rec.push(a);
        all_rec.push(o);
        die_losses.push(die.ipc_loss_vs(sie));
        irb_losses.push(irb.ipc_loss_vs(sie));
        table.row(vec![
            w.name().to_owned(),
            ipc(sie.ipc()),
            ipc(die.ipc()),
            ipc(irb.ipc()),
            ipc(die2x.ipc()),
            pct(a),
            pct(o),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        pct(mean(&die_losses)) + " loss",
        pct(mean(&irb_losses)) + " loss",
        String::new(),
        pct(mean(&alu_rec)),
        pct(mean(&all_rec)),
    ]);

    emit(
        &cli,
        "Headline recovery (reconstructed Fig. A): SIE vs DIE vs DIE-IRB vs DIE-2xALU",
        &format!(
            "forwarding: {}",
            if per_stream {
                "per-stream"
            } else {
                "primary-to-both"
            }
        ),
        &table,
        h.perf(),
    );
}
