//! The headline result (reconstructed Fig. A): IPC of SIE, DIE, DIE-IRB
//! and DIE-2xALU per workload, with the fraction of the ALU-bandwidth
//! loss (the DIE → DIE-2xALU gap) and of the overall loss (DIE → SIE)
//! that the IRB wins back.
//!
//! Paper claims (abstract): DIE-IRB regains ~50% of the ALU-bandwidth
//! IPC loss and ~23% of the overall IPC loss, on average.
//!
//! `--forwarding per-stream` runs the ablation where the IRB keeps
//! per-stream forwarding (the issue-window complexity the paper avoids).

use redsim_bench::{ipc, mean, pct, Harness, Table};
use redsim_core::{ExecMode, ForwardingPolicy, MachineConfig};
use redsim_workloads::Workload;

fn main() {
    let per_stream = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .any(|w| w[0] == "--forwarding" && w[1] == "per-stream")
    };
    let mut h = Harness::from_args();
    let mut base = MachineConfig::paper_baseline();
    if per_stream {
        base.forwarding = ForwardingPolicy::PerStream;
    }
    let twoalu = base.clone().with_double_alus();

    let mut table = Table::new(vec![
        "app",
        "SIE",
        "DIE",
        "DIE-IRB",
        "DIE-2xALU",
        "alu-loss-recovered",
        "overall-loss-recovered",
    ]);
    let (mut alu_rec, mut all_rec) = (Vec::new(), Vec::new());
    let (mut die_losses, mut irb_losses) = (Vec::new(), Vec::new());
    for w in Workload::ALL {
        let sie = h.run(w, ExecMode::Sie, &base);
        let die = h.run(w, ExecMode::Die, &base);
        let irb = h.run(w, ExecMode::DieIrb, &base);
        let die2x = h.run(w, ExecMode::Die, &twoalu);
        let alu_gap = die2x.ipc() - die.ipc();
        let overall_gap = sie.ipc() - die.ipc();
        let a = if alu_gap > 1e-9 {
            (irb.ipc() - die.ipc()) / alu_gap * 100.0
        } else {
            0.0
        };
        let o = if overall_gap > 1e-9 {
            (irb.ipc() - die.ipc()) / overall_gap * 100.0
        } else {
            0.0
        };
        alu_rec.push(a);
        all_rec.push(o);
        die_losses.push(die.ipc_loss_vs(&sie));
        irb_losses.push(irb.ipc_loss_vs(&sie));
        table.row(vec![
            w.name().to_owned(),
            ipc(sie.ipc()),
            ipc(die.ipc()),
            ipc(irb.ipc()),
            ipc(die2x.ipc()),
            pct(a),
            pct(o),
        ]);
    }
    table.row(vec![
        "mean".to_owned(),
        String::new(),
        pct(mean(&die_losses)) + " loss",
        pct(mean(&irb_losses)) + " loss",
        String::new(),
        pct(mean(&alu_rec)),
        pct(mean(&all_rec)),
    ]);

    println!("Headline recovery (reconstructed Fig. A): SIE vs DIE vs DIE-IRB vs DIE-2xALU");
    println!(
        "(forwarding: {}, quick mode: {})\n",
        if per_stream { "per-stream" } else { "primary-to-both" },
        h.is_quick()
    );
    print!("{}", table.render());
}
