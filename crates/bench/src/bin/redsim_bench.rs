//! `redsim-bench` — bench-summary tooling.
//!
//! ```text
//! redsim-bench diff <base.json> <new.json> [--threshold PCT] [--phases]
//! redsim-bench perturb <in.json> <out.json> --factor F
//! ```
//!
//! `diff` compares two `BENCH_simulator.json` summaries (see
//! [`redsim_bench::diff`]) and exits 0 when the geomean min-of-N ratio
//! stays inside the threshold (default 5%), 1 on a regression, 2 on a
//! usage or parse error. `--phases` appends the host-phase comparison,
//! naming the pipeline phase responsible for the wall-clock change
//! (summaries that predate `host_phases` report it as unavailable).
//! `perturb` rewrites a summary with every timing scaled by
//! `--factor` — CI uses it to prove the gate trips.

use std::process::ExitCode;

use redsim_bench::diff::{diff, perturb, phase_diff, BenchSummary, DEFAULT_THRESHOLD};

const USAGE: &str = "usage:
  redsim-bench diff <base.json> <new.json> [--threshold PCT] [--phases]
  redsim-bench perturb <in.json> <out.json> --factor F";

fn fail(msg: &str) -> ExitCode {
    eprintln!("redsim-bench: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The non-flag arguments, with each `--flag`'s value skipped (every
/// flag this tool accepts takes one).
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(&args[i]);
            i += 1;
        }
    }
    out
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<f64>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let v = args
        .get(i + 1)
        .ok_or(format!("{flag} needs a value"))?
        .parse::<f64>()
        .map_err(|e| format!("{flag}: {e}"))?;
    Ok(Some(v))
}

fn run_diff(args: &[String]) -> ExitCode {
    // `--phases` is the one bare flag; strip it before the positional
    // walk, which assumes every flag carries a value.
    let phases_on = args.iter().any(|a| a == "--phases");
    let args: Vec<String> = args.iter().filter(|a| *a != "--phases").cloned().collect();
    let args = &args[..];
    let paths = positionals(args);
    let [base_path, new_path] = paths[..] else {
        return fail("diff takes exactly two summary files");
    };
    let threshold = match flag_value(args, "--threshold") {
        Ok(t) => t.map_or(DEFAULT_THRESHOLD, |pct| pct / 100.0),
        Err(e) => return fail(&e),
    };
    let load = |path: &str| -> Result<BenchSummary, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        BenchSummary::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let report = diff(&base, &new, threshold);
    print!("{}", report.render());
    if phases_on {
        match phase_diff(&base, &new) {
            Some(p) => print!("{}", p.render()),
            None => println!("host phases: not recorded in both summaries"),
        }
    }
    if report.regressed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_perturb(args: &[String]) -> ExitCode {
    let paths = positionals(args);
    let [in_path, out_path] = paths[..] else {
        return fail("perturb takes an input and an output file");
    };
    let factor = match flag_value(args, "--factor") {
        Ok(Some(f)) => f,
        Ok(None) => return fail("perturb needs --factor"),
        Err(e) => return fail(&e),
    };
    let text = match std::fs::read_to_string(in_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{in_path}: {e}")),
    };
    let out = match perturb(&text, factor) {
        Ok(o) => o,
        Err(e) => return fail(&format!("{in_path}: {e}")),
    };
    if let Err(e) = std::fs::write(out_path, out) {
        return fail(&format!("{out_path}: {e}"));
    }
    println!("wrote {out_path} (timings x{factor})");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => run_diff(&args[1..]),
        Some("perturb") => run_perturb(&args[1..]),
        _ => fail("missing or unknown subcommand"),
    }
}
