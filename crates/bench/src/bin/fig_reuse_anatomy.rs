//! Reuse anatomy: where the IRB's reuse actually comes from. Runs every
//! workload under all five execution modes and both scheduling engines
//! with reuse attribution enabled, then breaks the hit and pass rates
//! down by opcode class (alu/mul/div/mem/branch) and by loop structure.
//!
//! In `--json` mode the output carries, beyond the standard figure
//! fields, an `"anatomy"` array with one entry per job: the raw
//! per-class counters, the aggregate `IrbSummary` totals they must sum
//! to (the conservation contract `attribution-smoke` checks), and the
//! per-loop breakdown.

use redsim_bench::{emit, pct, Cli, Harness, Job, Table};
use redsim_core::{
    attribution_to_json, AttrCounters, ExecMode, MachineConfig, SchedEngine, SimStats,
    REUSE_CLASSES, REUSE_CLASS_NAMES,
};
use redsim_util::Json;
use redsim_workloads::Workload;

const MODES: [ExecMode; 5] = [
    ExecMode::Sie,
    ExecMode::SieIrb,
    ExecMode::Die,
    ExecMode::DieIrb,
    ExecMode::DieCluster,
];

const ENGINES: [(&str, SchedEngine); 2] = [
    ("event", SchedEngine::EventDriven),
    ("scan", SchedEngine::ScanReference),
];

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();

    // Job order: (engine, mode) major, workload minor, so each
    // (engine, mode) cell is one contiguous chunk of the results.
    let mut jobs = Vec::new();
    for (_, engine) in &ENGINES {
        for mode in MODES {
            let mut cfg = base.clone();
            cfg.engine = *engine;
            for w in Workload::ALL {
                jobs.push(Job::new(w, mode, &cfg).with_attribution());
            }
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut header: Vec<String> = vec!["mode".into(), "engine".into(), "lookups".into()];
    for name in REUSE_CLASS_NAMES {
        header.push(format!("{name}-hit"));
    }
    header.push("pass".into());
    let mut table = Table::new(header);

    let per_cell = Workload::ALL.len();
    let mut anatomy = Vec::new();
    for ((engine_name, _), engine_chunk) in ENGINES
        .iter()
        .zip(results.chunks_exact(per_cell * MODES.len()))
    {
        for (mode, runs) in MODES.iter().zip(engine_chunk.chunks_exact(per_cell)) {
            // Aggregate the per-class counters across workloads for the
            // table row; the JSON keeps every job separate.
            let mut classes = [AttrCounters::default(); REUSE_CLASSES];
            let (mut passed, mut failed) = (0u64, 0u64);
            for s in runs {
                if let Some(a) = &s.attribution {
                    for (acc, c) in classes.iter_mut().zip(&a.classes) {
                        acc.add(c);
                    }
                }
                passed += s.irb.reuse_passed;
                failed += s.irb.reuse_failed;
            }
            let lookups: u64 = classes.iter().map(|c| c.lookups).sum();
            let mut cells = vec![
                format!("{mode:?}"),
                (*engine_name).to_owned(),
                lookups.to_string(),
            ];
            for c in &classes {
                let rate = if c.lookups == 0 {
                    0.0
                } else {
                    c.hits as f64 / c.lookups as f64 * 100.0
                };
                cells.push(pct(rate));
            }
            let tests = passed + failed;
            cells.push(pct(if tests == 0 {
                0.0
            } else {
                passed as f64 / tests as f64 * 100.0
            }));
            table.row(cells);

            for (w, s) in Workload::ALL.iter().zip(runs) {
                anatomy.push(anatomy_entry(w.name(), *mode, engine_name, s));
            }
        }
    }

    if cli.json {
        let out = Json::obj()
            .field(
                "title",
                "Reuse anatomy: opcode class x loop structure (all modes, both engines)",
            )
            .field("note", "attribution enabled; conservation vs IrbSummary")
            .field("quick", cli.quick)
            .field("table", table.to_json())
            .field("anatomy", anatomy.into_iter().collect::<Json>())
            .field("stalls", h.stall_summary().to_json())
            .field(
                "errors",
                errors
                    .iter()
                    .map(redsim_bench::JobError::to_json)
                    .collect::<Json>(),
            )
            .field("perf", h.perf().to_json());
        println!("{out}");
        for e in &errors {
            eprintln!("error: job {} ({}): {}", e.index, e.label, e.message);
        }
    } else {
        emit(
            &cli,
            "Reuse anatomy: opcode class x loop structure (all modes, both engines)",
            "attribution enabled; conservation vs IrbSummary",
            &table,
            h.stall_summary(),
            &errors,
            h.perf(),
        );
    }
    if !errors.is_empty() {
        std::process::exit(1);
    }
}

/// One job's anatomy record: the full attribution section plus the
/// aggregate IRB totals its per-class counters must sum to exactly.
fn anatomy_entry(workload: &str, mode: ExecMode, engine: &str, s: &SimStats) -> Json {
    let attribution = s
        .attribution
        .as_deref()
        .map(attribution_to_json)
        .unwrap_or_else(Json::obj);
    Json::obj()
        .field("workload", workload)
        .field("mode", format!("{mode:?}"))
        .field("engine", engine)
        .field(
            "irb",
            Json::obj()
                .field("lookups", s.irb.buffer.lookups)
                .field("hits", s.irb.buffer.pc_hits + s.irb.buffer.victim_hits)
                .field("reuse_passed", s.irb.reuse_passed)
                .field("reuse_failed", s.irb.reuse_failed)
                .field("reuse_pass_permille", s.irb.reuse_pass_permille())
                .field("hit_permille", s.irb.hit_permille()),
        )
        .field("attribution", attribution)
}
