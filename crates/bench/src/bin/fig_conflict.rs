//! Reconstructed Fig. E: the conflict-miss-reduction mechanism. The
//! comparison runs at a *small* IRB capacity (64 entries), where the
//! kernels' static footprints actually conflict — at the paper's 1024
//! entries our kernels fit outright and every organization ties, which
//! is itself the paper's point that 1024 entries suffice. Direct-mapped
//! vs a 16-entry victim buffer vs 2-way and 4-way of the same capacity.

use redsim_bench::{emit, ipc, mean, pct, Cli, Harness, Job, Table};
use redsim_core::{ExecMode, MachineConfig};
use redsim_irb::IrbConfig;
use redsim_workloads::Workload;

fn main() {
    let cli = Cli::parse();
    let mut h = Harness::from_cli(&cli);
    let base = MachineConfig::paper_baseline();
    let small = IrbConfig {
        entries: 64,
        ..IrbConfig::paper_baseline()
    };
    let orgs: Vec<(&str, IrbConfig)> = vec![
        ("DM", small),
        (
            "DM+victim16",
            IrbConfig {
                victim_entries: 16,
                ..small
            },
        ),
        ("2-way", IrbConfig { assoc: 2, ..small }),
        ("4-way", IrbConfig { assoc: 4, ..small }),
        ("DM-1024 (paper)", IrbConfig::paper_baseline()),
    ];

    let mut jobs = Vec::new();
    for w in Workload::ALL {
        for (_, irb) in &orgs {
            let mut cfg = base.clone();
            cfg.irb = *irb;
            jobs.push(Job::new(w, ExecMode::DieIrb, &cfg));
        }
    }
    let (results, errors) = h.try_sweep(&jobs, cli.threads);

    let mut header: Vec<String> = vec!["app".into()];
    for (n, _) in &orgs {
        header.push(format!("{n} IPC"));
        header.push(format!("{n} pass"));
    }
    let mut table = Table::new(header);

    let mut per_org: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
    for (w, runs) in Workload::ALL.iter().zip(results.chunks_exact(orgs.len())) {
        let mut cells = vec![w.name().to_owned()];
        for (i, s) in runs.iter().enumerate() {
            per_org[i].push(s.ipc());
            cells.push(ipc(s.ipc()));
            cells.push(pct(s.irb.reuse_pass_rate() * 100.0));
        }
        table.row(cells);
    }
    let mut cells = vec!["mean".to_owned()];
    for v in &per_org {
        cells.push(ipc(mean(v)));
        cells.push(String::new());
    }
    table.row(cells);

    emit(
        &cli,
        "IRB conflict-miss reduction (reconstructed Fig. E)",
        "64 entries per organization + the 1024-entry reference",
        &table,
        h.stall_summary(),
        &errors,
        h.perf(),
    );
    if !errors.is_empty() {
        std::process::exit(1);
    }
}
