//! Noise-aware comparison of two bench summaries.
//!
//! `redsim-bench diff <base.json> <new.json>` compares two
//! `BENCH_simulator.json` files case by case on their min-of-N
//! timings. Each case carries a *noise band* derived from the recorded
//! min/mean/max spread of both runs — a per-case slowdown inside the
//! band is reported but not alarming, since min-of-N on a shared CI
//! box easily wobbles that much. The pass/fail gate is the **geomean**
//! of the per-case ratios: a geomean slowdown beyond the threshold
//! (default [`DEFAULT_THRESHOLD`], i.e. 5%) means the whole suite got
//! slower in a way noise does not explain, and the diff exits
//! non-zero.
//!
//! The companion `perturb` helper scales every timing in a summary by
//! a factor; CI uses it to synthesize a known regression and prove the
//! gate actually trips.

use redsim_util::Json;

/// Geomean slowdown beyond this fraction fails the diff (0.05 = 5%).
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// One timed case from a bench summary file.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseTiming {
    /// Case name (`simulator/Sie_gzip_tiny`, ...).
    pub name: String,
    /// Minimum iteration time, milliseconds — the comparison basis.
    pub min_ms: f64,
    /// Mean iteration time, milliseconds.
    pub mean_ms: f64,
    /// Maximum iteration time, milliseconds.
    pub max_ms: f64,
}

impl CaseTiming {
    /// Relative min-to-max spread of this run, `(max − min) / min`.
    /// The per-case noise band is the larger spread of the two runs
    /// being compared.
    #[must_use]
    pub fn spread(&self) -> f64 {
        if self.min_ms > 0.0 {
            (self.max_ms - self.min_ms) / self.min_ms
        } else {
            0.0
        }
    }
}

/// A parsed bench summary (`BENCH_simulator.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// The `"bench"` tag of the file (`"simulator"`).
    pub bench: String,
    /// Whether the run used `--quick` iteration counts.
    pub quick: bool,
    /// The timed cases, in file order.
    pub cases: Vec<CaseTiming>,
}

impl BenchSummary {
    /// Parses a bench summary document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// JSON, missing `cases` array, or a case without the
    /// `name`/`min_ms`/`mean_ms`/`max_ms` fields.
    pub fn parse(text: &str) -> Result<BenchSummary, String> {
        let root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let bench = root
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing string field \"bench\"")?
            .to_owned();
        let quick = root.get("quick").and_then(Json::as_bool).unwrap_or(false);
        let items = root
            .get("cases")
            .and_then(Json::items)
            .ok_or("missing array field \"cases\"")?;
        let mut cases = Vec::with_capacity(items.len());
        for (i, c) in items.iter().enumerate() {
            let field = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("case {i}: missing numeric field {key:?}"))
            };
            cases.push(CaseTiming {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("case {i}: missing string field \"name\""))?
                    .to_owned(),
                min_ms: field("min_ms")?,
                mean_ms: field("mean_ms")?,
                max_ms: field("max_ms")?,
            });
        }
        Ok(BenchSummary {
            bench,
            quick,
            cases,
        })
    }
}

/// The comparison of one case present in both summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDiff {
    /// Case name.
    pub name: String,
    /// Base (before) minimum, milliseconds.
    pub base_min_ms: f64,
    /// New (after) minimum, milliseconds.
    pub new_min_ms: f64,
    /// `new_min_ms / base_min_ms`; above 1.0 is a slowdown.
    pub ratio: f64,
    /// The larger of the two runs' relative min-to-max spreads — how
    /// much wobble this case demonstrably has.
    pub noise_band: f64,
    /// Whether the slowdown exceeds this case's own noise band (an
    /// annotation; the pass/fail gate is the geomean).
    pub beyond_noise: bool,
}

/// The full comparison of two bench summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-case comparisons, in base-file order.
    pub cases: Vec<CaseDiff>,
    /// Case names only the base file has (dropped cases).
    pub only_in_base: Vec<String>,
    /// Case names only the new file has (added cases).
    pub only_in_new: Vec<String>,
    /// Geomean of the per-case ratios (1.0 when no case matches).
    pub geomean_ratio: f64,
    /// The failure threshold the report was built with.
    pub threshold: f64,
}

impl DiffReport {
    /// Whether the suite regressed: geomean slowdown beyond the
    /// threshold.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.geomean_ratio > 1.0 + self.threshold
    }

    /// Renders the report as an aligned text table plus verdict line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .cases
            .iter()
            .map(|c| c.name.len())
            .chain(["case".len()])
            .max()
            .unwrap_or(4);
        out.push_str(&format!(
            "{:name_w$}  {:>10}  {:>10}  {:>7}  {:>7}\n",
            "case", "base_ms", "new_ms", "ratio", "noise"
        ));
        for c in &self.cases {
            let marker = if c.beyond_noise { " !" } else { "" };
            out.push_str(&format!(
                "{:name_w$}  {:>10.3}  {:>10.3}  {:>7.3}  {:>6.1}%{marker}\n",
                c.name,
                c.base_min_ms,
                c.new_min_ms,
                c.ratio,
                c.noise_band * 100.0
            ));
        }
        for n in &self.only_in_base {
            out.push_str(&format!("dropped case: {n}\n"));
        }
        for n in &self.only_in_new {
            out.push_str(&format!("added case:   {n}\n"));
        }
        out.push_str(&format!(
            "geomean ratio {:.4} ({}{:.1}% vs base, gate {:.0}%): {}\n",
            self.geomean_ratio,
            if self.geomean_ratio >= 1.0 { "+" } else { "" },
            (self.geomean_ratio - 1.0) * 100.0,
            self.threshold * 100.0,
            if self.regressed() { "REGRESSION" } else { "ok" }
        ));
        out
    }
}

/// Compares two summaries on min-of-N timings. Cases are matched by
/// name; unmatched cases are listed but excluded from the geomean.
#[must_use]
pub fn diff(base: &BenchSummary, new: &BenchSummary, threshold: f64) -> DiffReport {
    let mut cases = Vec::new();
    let mut only_in_base = Vec::new();
    for b in &base.cases {
        let Some(n) = new.cases.iter().find(|c| c.name == b.name) else {
            only_in_base.push(b.name.clone());
            continue;
        };
        let ratio = if b.min_ms > 0.0 {
            n.min_ms / b.min_ms
        } else {
            1.0
        };
        let noise_band = b.spread().max(n.spread());
        cases.push(CaseDiff {
            name: b.name.clone(),
            base_min_ms: b.min_ms,
            new_min_ms: n.min_ms,
            ratio,
            noise_band,
            beyond_noise: ratio > 1.0 + noise_band,
        });
    }
    let only_in_new = new
        .cases
        .iter()
        .filter(|c| !base.cases.iter().any(|b| b.name == c.name))
        .map(|c| c.name.clone())
        .collect();
    let geomean_ratio = if cases.is_empty() {
        1.0
    } else {
        (cases.iter().map(|c| c.ratio.ln()).sum::<f64>() / cases.len() as f64).exp()
    };
    DiffReport {
        cases,
        only_in_base,
        only_in_new,
        geomean_ratio,
        threshold,
    }
}

/// Scales every case's `min_ms`/`mean_ms`/`max_ms` in a bench summary
/// document by `factor`, returning the rewritten JSON. CI smoke uses
/// this to synthesize a regression and prove the diff gate trips.
///
/// # Errors
///
/// Returns a description of the problem if the document is not valid
/// JSON or does not have the bench-summary shape.
pub fn perturb(text: &str, factor: f64) -> Result<String, String> {
    let mut root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(fields) = &mut root else {
        return Err("bench summary is not a JSON object".to_owned());
    };
    let cases = fields
        .iter_mut()
        .find(|(k, _)| k == "cases")
        .map(|(_, v)| v)
        .ok_or("missing field \"cases\"")?;
    let Json::Arr(items) = cases else {
        return Err("\"cases\" is not an array".to_owned());
    };
    for (i, case) in items.iter_mut().enumerate() {
        let Json::Obj(case_fields) = case else {
            return Err(format!("case {i} is not an object"));
        };
        for (k, v) in case_fields.iter_mut() {
            if matches!(k.as_str(), "min_ms" | "mean_ms" | "max_ms") {
                let x = v
                    .as_f64()
                    .ok_or(format!("case {i}: field {k:?} is not numeric"))?;
                *v = Json::Num(x * factor);
            }
        }
    }
    Ok(format!("{root}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(scale: f64) -> String {
        let mut cases = Json::arr();
        for (name, ms) in [("simulator/a", 10.0), ("simulator/b", 20.0)] {
            cases = cases.item(
                Json::obj()
                    .field("name", name)
                    .field("iters", 3u64)
                    .field("min_ms", ms * scale)
                    .field("mean_ms", ms * scale * 1.02)
                    .field("max_ms", ms * scale * 1.04),
            );
        }
        Json::obj()
            .field("bench", "simulator")
            .field("quick", true)
            .field("geomean_speedup_vs_scan", 2.0)
            .field("cases", cases)
            .to_string()
    }

    #[test]
    fn self_diff_is_clean() {
        let s = BenchSummary::parse(&summary(1.0)).unwrap();
        let r = diff(&s, &s, DEFAULT_THRESHOLD);
        assert_eq!(r.cases.len(), 2);
        assert!((r.geomean_ratio - 1.0).abs() < 1e-12);
        assert!(!r.regressed());
        assert!(r.cases.iter().all(|c| !c.beyond_noise));
        assert!(r.render().contains("ok"));
    }

    #[test]
    fn ten_percent_slowdown_trips_the_gate() {
        let base = BenchSummary::parse(&summary(1.0)).unwrap();
        let slow = BenchSummary::parse(&summary(1.10)).unwrap();
        let r = diff(&base, &slow, DEFAULT_THRESHOLD);
        assert!((r.geomean_ratio - 1.10).abs() < 1e-9);
        assert!(r.regressed());
        assert!(r.cases.iter().all(|c| c.beyond_noise), "4% spread < 10%");
        assert!(r.render().contains("REGRESSION"));
    }

    #[test]
    fn slowdown_inside_the_noise_band_is_annotated_not_fatal() {
        let base = BenchSummary::parse(&summary(1.0)).unwrap();
        let slow = BenchSummary::parse(&summary(1.03)).unwrap();
        let r = diff(&base, &slow, DEFAULT_THRESHOLD);
        assert!(!r.regressed(), "3% geomean is under the 5% gate");
        assert!(
            r.cases.iter().all(|c| !c.beyond_noise),
            "3% slowdown sits inside the 4% recorded spread"
        );
    }

    #[test]
    fn perturb_round_trips_through_the_gate() {
        let text = summary(1.0);
        let slow = perturb(&text, 1.10).unwrap();
        let base = BenchSummary::parse(&text).unwrap();
        let new = BenchSummary::parse(&slow).unwrap();
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert!(r.regressed());
        // Non-timing fields survive untouched.
        assert!(slow.contains("\"geomean_speedup_vs_scan\":2"));
        assert!(slow.contains("\"iters\":3"));
    }

    #[test]
    fn mismatched_case_sets_are_reported() {
        let mut base = BenchSummary::parse(&summary(1.0)).unwrap();
        let new = BenchSummary::parse(&summary(1.0)).unwrap();
        base.cases.push(CaseTiming {
            name: "simulator/only_base".to_owned(),
            min_ms: 1.0,
            mean_ms: 1.0,
            max_ms: 1.0,
        });
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert_eq!(r.only_in_base, vec!["simulator/only_base".to_owned()]);
        assert!(r.only_in_new.is_empty());
        assert_eq!(r.cases.len(), 2, "unmatched case excluded from geomean");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BenchSummary::parse("not json").is_err());
        assert!(BenchSummary::parse("{\"bench\":\"simulator\"}")
            .unwrap_err()
            .contains("cases"));
        let no_min = r#"{"bench":"simulator","cases":[{"name":"x"}]}"#;
        assert!(BenchSummary::parse(no_min).unwrap_err().contains("min_ms"));
        assert!(perturb("[1,2]", 1.0).is_err());
    }
}
