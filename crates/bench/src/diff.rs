//! Noise-aware comparison of two bench summaries.
//!
//! `redsim-bench diff <base.json> <new.json>` compares two
//! `BENCH_simulator.json` files case by case on their min-of-N
//! timings. Each case carries a *noise band* derived from the recorded
//! min/mean/max spread of both runs — a per-case slowdown inside the
//! band is reported but not alarming, since min-of-N on a shared CI
//! box easily wobbles that much. The pass/fail gate is the **geomean**
//! of the per-case ratios: a geomean slowdown beyond the threshold
//! (default [`DEFAULT_THRESHOLD`], i.e. 5%) means the whole suite got
//! slower in a way noise does not explain, and the diff exits
//! non-zero.
//!
//! The companion `perturb` helper scales every timing in a summary by
//! a factor; CI uses it to synthesize a known regression and prove the
//! gate actually trips.

use redsim_util::Json;

/// Geomean slowdown beyond this fraction fails the diff (0.05 = 5%).
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// Smallest `min_ms` treated as a real measurement, milliseconds
/// (1 nanosecond). A recorded minimum of 0.0 happens in `--quick` runs
/// when a case finishes under the timer's resolution; feeding it into
/// the ratio math produces 0, `inf` or NaN, and a single `ln(0) = -inf`
/// term drives the geomean to 0 — masking genuine regressions in every
/// other case. A case with a sub-resolution minimum on either side is
/// annotated ([`CaseDiff::unmeasured`]) and excluded from the geomean;
/// its displayed ratio is computed from values clamped to this floor.
pub const MIN_MEASURABLE_MS: f64 = 1e-6;

/// One timed case from a bench summary file.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseTiming {
    /// Stable machine identity (`sim.die-irb.gzip.tiny`, ...). Older
    /// summaries don't carry one; matching falls back to `name`.
    pub case_id: Option<String>,
    /// Display name (`simulator/Sie_gzip_tiny`, ...); free to change
    /// between runs without breaking diff matching.
    pub name: String,
    /// Minimum iteration time, milliseconds — the comparison basis.
    pub min_ms: f64,
    /// Mean iteration time, milliseconds.
    pub mean_ms: f64,
    /// Maximum iteration time, milliseconds.
    pub max_ms: f64,
}

impl CaseTiming {
    /// Relative min-to-max spread of this run, `(max − min) / min`.
    /// The per-case noise band is the larger spread of the two runs
    /// being compared.
    #[must_use]
    pub fn spread(&self) -> f64 {
        if self.min_ms > 0.0 {
            (self.max_ms - self.min_ms) / self.min_ms
        } else {
            0.0
        }
    }
}

/// Whether two case records are the same case: by `case_id` when both
/// files recorded one (rename-proof), by display name otherwise.
#[must_use]
pub fn same_case(a: &CaseTiming, b: &CaseTiming) -> bool {
    match (&a.case_id, &b.case_id) {
        (Some(x), Some(y)) => x == y,
        _ => a.name == b.name,
    }
}

/// The host-side per-phase wall-clock accounting a summary may carry
/// (`host_phases`, from the bench's untimed profiled DIE-IRB pass).
#[derive(Debug, Clone, PartialEq)]
pub struct HostPhases {
    /// Simulated cycles of the profiled run.
    pub cycles: u64,
    /// Total profiled wall-clock, seconds.
    pub total_seconds: f64,
    /// `(phase name, seconds)` in pipeline order.
    pub phases: Vec<(String, f64)>,
}

/// A parsed bench summary (`BENCH_simulator.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// The `"bench"` tag of the file (`"simulator"`).
    pub bench: String,
    /// Whether the run used `--quick` iteration counts.
    pub quick: bool,
    /// The timed cases, in file order.
    pub cases: Vec<CaseTiming>,
    /// Per-phase host profile, when the summary recorded one.
    pub host_phases: Option<HostPhases>,
}

impl BenchSummary {
    /// Parses a bench summary document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// JSON, missing `cases` array, or a case without the
    /// `name`/`min_ms`/`mean_ms`/`max_ms` fields.
    pub fn parse(text: &str) -> Result<BenchSummary, String> {
        let root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let bench = root
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing string field \"bench\"")?
            .to_owned();
        let quick = root.get("quick").and_then(Json::as_bool).unwrap_or(false);
        let items = root
            .get("cases")
            .and_then(Json::items)
            .ok_or("missing array field \"cases\"")?;
        let mut cases = Vec::with_capacity(items.len());
        for (i, c) in items.iter().enumerate() {
            let field = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("case {i}: missing numeric field {key:?}"))
            };
            cases.push(CaseTiming {
                case_id: c.get("case_id").and_then(Json::as_str).map(str::to_owned),
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("case {i}: missing string field \"name\""))?
                    .to_owned(),
                min_ms: field("min_ms")?,
                mean_ms: field("mean_ms")?,
                max_ms: field("max_ms")?,
            });
        }
        let host_phases = root.get("host_phases").map(parse_host_phases).transpose()?;
        Ok(BenchSummary {
            bench,
            quick,
            cases,
            host_phases,
        })
    }
}

/// Parses the `host_phases` object of a summary.
fn parse_host_phases(hp: &Json) -> Result<HostPhases, String> {
    let cycles = hp
        .get("cycles")
        .and_then(Json::as_f64)
        .ok_or("host_phases: missing numeric field \"cycles\"")? as u64;
    let total_seconds = hp
        .get("total_seconds")
        .and_then(Json::as_f64)
        .ok_or("host_phases: missing numeric field \"total_seconds\"")?;
    let Some(Json::Obj(fields)) = hp.get("phases") else {
        return Err("host_phases: missing object field \"phases\"".to_owned());
    };
    let mut phases = Vec::with_capacity(fields.len());
    for (name, v) in fields {
        let seconds = v
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or(format!("host_phases.{name}: missing \"seconds\""))?;
        phases.push((name.clone(), seconds));
    }
    Ok(HostPhases {
        cycles,
        total_seconds,
        phases,
    })
}

/// The comparison of one case present in both summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDiff {
    /// Case name (the base file's display name).
    pub name: String,
    /// The new file's display name, when an id-matched case was
    /// renamed between the runs.
    pub renamed_to: Option<String>,
    /// Base (before) minimum, milliseconds.
    pub base_min_ms: f64,
    /// New (after) minimum, milliseconds.
    pub new_min_ms: f64,
    /// `new_min_ms / base_min_ms`; above 1.0 is a slowdown.
    pub ratio: f64,
    /// The larger of the two runs' relative min-to-max spreads — how
    /// much wobble this case demonstrably has.
    pub noise_band: f64,
    /// Whether the slowdown exceeds this case's own noise band (an
    /// annotation; the pass/fail gate is the geomean).
    pub beyond_noise: bool,
    /// Whether either side's minimum sat below [`MIN_MEASURABLE_MS`]
    /// (the timer could not resolve the case). The displayed ratio is
    /// computed from clamped values and the case is excluded from the
    /// geomean — a 0-vs-anything ratio is timer granularity, not a
    /// performance signal.
    pub unmeasured: bool,
}

/// The full comparison of two bench summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-case comparisons, in base-file order.
    pub cases: Vec<CaseDiff>,
    /// Case names only the base file has (dropped cases).
    pub only_in_base: Vec<String>,
    /// Case names only the new file has (added cases).
    pub only_in_new: Vec<String>,
    /// Geomean of the per-case ratios (1.0 when no case matches).
    pub geomean_ratio: f64,
    /// The failure threshold the report was built with.
    pub threshold: f64,
}

impl DiffReport {
    /// Whether the suite regressed: geomean slowdown beyond the
    /// threshold.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.geomean_ratio > 1.0 + self.threshold
    }

    /// Renders the report as an aligned text table plus verdict line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .cases
            .iter()
            .map(|c| c.name.len())
            .chain(["case".len()])
            .max()
            .unwrap_or(4);
        out.push_str(&format!(
            "{:name_w$}  {:>10}  {:>10}  {:>7}  {:>7}\n",
            "case", "base_ms", "new_ms", "ratio", "noise"
        ));
        for c in &self.cases {
            let marker = if c.unmeasured {
                " ? (below timer resolution; excluded from geomean)"
            } else if c.beyond_noise {
                " !"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:name_w$}  {:>10.3}  {:>10.3}  {:>7.3}  {:>6.1}%{marker}\n",
                c.name,
                c.base_min_ms,
                c.new_min_ms,
                c.ratio,
                c.noise_band * 100.0
            ));
            if let Some(to) = &c.renamed_to {
                out.push_str(&format!("{:name_w$}  (renamed to: {to})\n", ""));
            }
        }
        for n in &self.only_in_base {
            out.push_str(&format!("dropped case: {n}\n"));
        }
        for n in &self.only_in_new {
            out.push_str(&format!("added case:   {n}\n"));
        }
        out.push_str(&format!(
            "geomean ratio {:.4} ({}{:.1}% vs base, gate {:.0}%): {}\n",
            self.geomean_ratio,
            if self.geomean_ratio >= 1.0 { "+" } else { "" },
            (self.geomean_ratio - 1.0) * 100.0,
            self.threshold * 100.0,
            if self.regressed() { "REGRESSION" } else { "ok" }
        ));
        out
    }
}

/// Compares two summaries on min-of-N timings. Cases are matched by
/// stable `case_id` when both files carry one and by display name
/// otherwise (see [`same_case`]), so a display rename doesn't read as
/// a dropped-plus-added pair; unmatched cases are listed but excluded
/// from the geomean.
#[must_use]
pub fn diff(base: &BenchSummary, new: &BenchSummary, threshold: f64) -> DiffReport {
    let mut cases = Vec::new();
    let mut only_in_base = Vec::new();
    for b in &base.cases {
        let Some(n) = new.cases.iter().find(|c| same_case(b, c)) else {
            only_in_base.push(b.name.clone());
            continue;
        };
        let unmeasured = b.min_ms < MIN_MEASURABLE_MS || n.min_ms < MIN_MEASURABLE_MS;
        let ratio = n.min_ms.max(MIN_MEASURABLE_MS) / b.min_ms.max(MIN_MEASURABLE_MS);
        let noise_band = b.spread().max(n.spread());
        cases.push(CaseDiff {
            name: b.name.clone(),
            renamed_to: (n.name != b.name).then(|| n.name.clone()),
            base_min_ms: b.min_ms,
            new_min_ms: n.min_ms,
            ratio,
            noise_band,
            beyond_noise: !unmeasured && ratio > 1.0 + noise_band,
            unmeasured,
        });
    }
    let only_in_new = new
        .cases
        .iter()
        .filter(|c| !base.cases.iter().any(|b| same_case(b, c)))
        .map(|c| c.name.clone())
        .collect();
    // The geomean covers only measurable cases: one sub-resolution
    // timing must not poison the gate with an infinite log term.
    let measured: Vec<&CaseDiff> = cases.iter().filter(|c| !c.unmeasured).collect();
    let geomean_ratio = if measured.is_empty() {
        1.0
    } else {
        (measured.iter().map(|c| c.ratio.ln()).sum::<f64>() / measured.len() as f64).exp()
    };
    DiffReport {
        cases,
        only_in_base,
        only_in_new,
        geomean_ratio,
        threshold,
    }
}

/// One pipeline phase compared across two summaries' host profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDiff {
    /// Phase name (`fetch`, `schedule`, `execute`, ...).
    pub name: String,
    /// Base profiled seconds.
    pub base_seconds: f64,
    /// New profiled seconds.
    pub new_seconds: f64,
    /// `new_seconds − base_seconds`; positive means the phase got
    /// slower in absolute host time.
    pub delta_seconds: f64,
}

/// The host-phase comparison of two summaries: which pipeline phase is
/// responsible for a wall-clock change.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Per-phase comparisons, in the base profile's order. Phases
    /// present in only one profile are skipped.
    pub phases: Vec<PhaseDiff>,
    /// Base total profiled seconds.
    pub base_total: f64,
    /// New total profiled seconds.
    pub new_total: f64,
    /// The phase with the largest absolute host-time delta — the one
    /// that explains most of the end-to-end change. `None` when no
    /// phase matched.
    pub responsible: Option<String>,
}

impl PhaseReport {
    /// Renders the phase table plus the responsible-phase verdict.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "host phases (profiled run): total {:.4}s -> {:.4}s\n",
            self.base_total, self.new_total
        ));
        out.push_str(&format!(
            "{:10}  {:>9}  {:>9}  {:>7}  {:>9}\n",
            "phase", "base_s", "new_s", "ratio", "delta_s"
        ));
        for p in &self.phases {
            let ratio = if p.base_seconds > 0.0 {
                p.new_seconds / p.base_seconds
            } else {
                1.0
            };
            out.push_str(&format!(
                "{:10}  {:>9.4}  {:>9.4}  {:>7.3}  {:>+9.4}\n",
                p.name, p.base_seconds, p.new_seconds, ratio, p.delta_seconds
            ));
        }
        if let Some(name) = &self.responsible {
            let p = self
                .phases
                .iter()
                .find(|p| &p.name == name)
                .expect("responsible phase is one of the compared phases");
            let direction = if p.delta_seconds > 0.0 {
                "slower"
            } else {
                "faster"
            };
            out.push_str(&format!(
                "responsible phase: {name} ({:+.4}s, {direction})\n",
                p.delta_seconds
            ));
        }
        out
    }
}

/// Compares the `host_phases` profiles of two summaries, attributing
/// an end-to-end host-time change to the pipeline phase with the
/// largest absolute delta. Returns `None` when either summary did not
/// record a profile (older files predate the field).
#[must_use]
pub fn phase_diff(base: &BenchSummary, new: &BenchSummary) -> Option<PhaseReport> {
    let (b, n) = (base.host_phases.as_ref()?, new.host_phases.as_ref()?);
    let mut phases = Vec::new();
    for (name, base_seconds) in &b.phases {
        let Some((_, new_seconds)) = n.phases.iter().find(|(pn, _)| pn == name) else {
            continue;
        };
        phases.push(PhaseDiff {
            name: name.clone(),
            base_seconds: *base_seconds,
            new_seconds: *new_seconds,
            delta_seconds: new_seconds - base_seconds,
        });
    }
    let responsible = phases
        .iter()
        .max_by(|a, b| a.delta_seconds.abs().total_cmp(&b.delta_seconds.abs()))
        .map(|p| p.name.clone());
    Some(PhaseReport {
        phases,
        base_total: b.total_seconds,
        new_total: n.total_seconds,
        responsible,
    })
}

/// Scales every case's `min_ms`/`mean_ms`/`max_ms` in a bench summary
/// document by `factor`, returning the rewritten JSON. CI smoke uses
/// this to synthesize a regression and prove the diff gate trips.
///
/// # Errors
///
/// Returns a description of the problem if the document is not valid
/// JSON or does not have the bench-summary shape.
pub fn perturb(text: &str, factor: f64) -> Result<String, String> {
    let mut root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(fields) = &mut root else {
        return Err("bench summary is not a JSON object".to_owned());
    };
    let cases = fields
        .iter_mut()
        .find(|(k, _)| k == "cases")
        .map(|(_, v)| v)
        .ok_or("missing field \"cases\"")?;
    let Json::Arr(items) = cases else {
        return Err("\"cases\" is not an array".to_owned());
    };
    for (i, case) in items.iter_mut().enumerate() {
        let Json::Obj(case_fields) = case else {
            return Err(format!("case {i} is not an object"));
        };
        for (k, v) in case_fields.iter_mut() {
            if matches!(k.as_str(), "min_ms" | "mean_ms" | "max_ms") {
                let x = v
                    .as_f64()
                    .ok_or(format!("case {i}: field {k:?} is not numeric"))?;
                *v = Json::Num(x * factor);
            }
        }
    }
    Ok(format!("{root}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(scale: f64) -> String {
        let mut cases = Json::arr();
        for (name, ms) in [("simulator/a", 10.0), ("simulator/b", 20.0)] {
            cases = cases.item(
                Json::obj()
                    .field("name", name)
                    .field("iters", 3u64)
                    .field("min_ms", ms * scale)
                    .field("mean_ms", ms * scale * 1.02)
                    .field("max_ms", ms * scale * 1.04),
            );
        }
        Json::obj()
            .field("bench", "simulator")
            .field("quick", true)
            .field("geomean_speedup_vs_scan", 2.0)
            .field("cases", cases)
            .to_string()
    }

    #[test]
    fn self_diff_is_clean() {
        let s = BenchSummary::parse(&summary(1.0)).unwrap();
        let r = diff(&s, &s, DEFAULT_THRESHOLD);
        assert_eq!(r.cases.len(), 2);
        assert!((r.geomean_ratio - 1.0).abs() < 1e-12);
        assert!(!r.regressed());
        assert!(r.cases.iter().all(|c| !c.beyond_noise));
        assert!(r.render().contains("ok"));
    }

    #[test]
    fn ten_percent_slowdown_trips_the_gate() {
        let base = BenchSummary::parse(&summary(1.0)).unwrap();
        let slow = BenchSummary::parse(&summary(1.10)).unwrap();
        let r = diff(&base, &slow, DEFAULT_THRESHOLD);
        assert!((r.geomean_ratio - 1.10).abs() < 1e-9);
        assert!(r.regressed());
        assert!(r.cases.iter().all(|c| c.beyond_noise), "4% spread < 10%");
        assert!(r.render().contains("REGRESSION"));
    }

    #[test]
    fn slowdown_inside_the_noise_band_is_annotated_not_fatal() {
        let base = BenchSummary::parse(&summary(1.0)).unwrap();
        let slow = BenchSummary::parse(&summary(1.03)).unwrap();
        let r = diff(&base, &slow, DEFAULT_THRESHOLD);
        assert!(!r.regressed(), "3% geomean is under the 5% gate");
        assert!(
            r.cases.iter().all(|c| !c.beyond_noise),
            "3% slowdown sits inside the 4% recorded spread"
        );
    }

    #[test]
    fn perturb_round_trips_through_the_gate() {
        let text = summary(1.0);
        let slow = perturb(&text, 1.10).unwrap();
        let base = BenchSummary::parse(&text).unwrap();
        let new = BenchSummary::parse(&slow).unwrap();
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert!(r.regressed());
        // Non-timing fields survive untouched.
        assert!(slow.contains("\"geomean_speedup_vs_scan\":2"));
        assert!(slow.contains("\"iters\":3"));
    }

    #[test]
    fn zero_min_baseline_does_not_poison_the_geomean() {
        // Regression: a base_min_ms of 0.0 (quick runs on fast cases
        // land under the timer resolution) used to feed the ratio math
        // degenerate values. The case must be annotated and excluded;
        // the measured case's 10% slowdown must still trip the gate.
        let mk = |cases: Vec<CaseTiming>| BenchSummary {
            bench: "simulator".to_owned(),
            quick: true,
            cases,
            host_phases: None,
        };
        let base = mk(vec![
            timing(None, "simulator/zero", 0.0),
            timing(None, "simulator/real", 10.0),
        ]);
        let new = mk(vec![
            timing(None, "simulator/zero", 5.0),
            timing(None, "simulator/real", 11.0),
        ]);
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert_eq!(r.cases.len(), 2);
        assert!(r.cases[0].unmeasured, "zero-min case is annotated");
        assert!(!r.cases[1].unmeasured);
        assert!(
            r.geomean_ratio.is_finite(),
            "geomean stays finite: {}",
            r.geomean_ratio
        );
        assert!(
            (r.geomean_ratio - 1.10).abs() < 1e-9,
            "geomean covers only the measured case, got {}",
            r.geomean_ratio
        );
        assert!(r.regressed(), "the real slowdown still trips the gate");
        assert!(
            r.render().contains("below timer resolution"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn zero_min_on_the_new_side_cannot_mask_a_regression() {
        // Regression: new_min_ms of 0.0 made that case's ratio 0, so
        // ln(0) = -inf dragged the whole geomean to 0 and the gate
        // could never fire again.
        let mk = |cases: Vec<CaseTiming>| BenchSummary {
            bench: "simulator".to_owned(),
            quick: true,
            cases,
            host_phases: None,
        };
        let base = mk(vec![
            timing(None, "simulator/zero", 10.0),
            timing(None, "simulator/real", 10.0),
        ]);
        let new = mk(vec![
            timing(None, "simulator/zero", 0.0),
            timing(None, "simulator/real", 12.0),
        ]);
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert!(r.cases[0].unmeasured);
        assert!(!r.cases[0].beyond_noise, "unmeasured never flags noise");
        assert!((r.geomean_ratio - 1.20).abs() < 1e-9, "{}", r.geomean_ratio);
        assert!(r.regressed(), "a 20% slowdown elsewhere still fails");

        // Both sides zero everywhere: no measured case, neutral verdict.
        let all_zero = mk(vec![timing(None, "simulator/zero", 0.0)]);
        let r = diff(&all_zero, &all_zero, DEFAULT_THRESHOLD);
        assert_eq!(r.geomean_ratio, 1.0);
        assert!(!r.regressed());
    }

    #[test]
    fn mismatched_case_sets_are_reported() {
        let mut base = BenchSummary::parse(&summary(1.0)).unwrap();
        let new = BenchSummary::parse(&summary(1.0)).unwrap();
        base.cases.push(CaseTiming {
            case_id: None,
            name: "simulator/only_base".to_owned(),
            min_ms: 1.0,
            mean_ms: 1.0,
            max_ms: 1.0,
        });
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert_eq!(r.only_in_base, vec!["simulator/only_base".to_owned()]);
        assert!(r.only_in_new.is_empty());
        assert_eq!(r.cases.len(), 2, "unmatched case excluded from geomean");
    }

    fn timing(case_id: Option<&str>, name: &str, ms: f64) -> CaseTiming {
        CaseTiming {
            case_id: case_id.map(str::to_owned),
            name: name.to_owned(),
            min_ms: ms,
            mean_ms: ms,
            max_ms: ms,
        }
    }

    #[test]
    fn case_id_matching_survives_a_display_rename() {
        let mk = |cases: Vec<CaseTiming>| BenchSummary {
            bench: "simulator".to_owned(),
            quick: true,
            cases,
            host_phases: None,
        };
        let base = mk(vec![timing(Some("sim.sie.gzip.tiny"), "old name", 10.0)]);
        let new = mk(vec![timing(Some("sim.sie.gzip.tiny"), "new name", 11.0)]);
        let r = diff(&base, &new, DEFAULT_THRESHOLD);
        assert!(r.only_in_base.is_empty() && r.only_in_new.is_empty());
        assert_eq!(r.cases.len(), 1);
        assert_eq!(r.cases[0].renamed_to.as_deref(), Some("new name"));
        assert!((r.cases[0].ratio - 1.1).abs() < 1e-9);
        assert!(r.render().contains("renamed to: new name"));

        // Distinct ids do NOT match even under an identical display
        // name — identity is the id once both sides carry one.
        let a = mk(vec![timing(Some("id.a"), "shared", 10.0)]);
        let b = mk(vec![timing(Some("id.b"), "shared", 10.0)]);
        let r = diff(&a, &b, DEFAULT_THRESHOLD);
        assert!(r.cases.is_empty());
        assert_eq!(r.only_in_base, vec!["shared".to_owned()]);

        // An id-less side (an old summary) still pairs by name.
        let old = mk(vec![timing(None, "simulator/x", 10.0)]);
        let new = mk(vec![timing(Some("sim.x"), "simulator/x", 10.0)]);
        let r = diff(&old, &new, DEFAULT_THRESHOLD);
        assert_eq!(r.cases.len(), 1);
        assert_eq!(r.cases[0].renamed_to, None);
    }

    fn phased(seconds: &[(&str, f64)]) -> BenchSummary {
        BenchSummary {
            bench: "simulator".to_owned(),
            quick: true,
            cases: Vec::new(),
            host_phases: Some(HostPhases {
                cycles: 1000,
                total_seconds: seconds.iter().map(|(_, s)| s).sum(),
                phases: seconds.iter().map(|&(n, s)| (n.to_owned(), s)).collect(),
            }),
        }
    }

    #[test]
    fn phase_diff_names_the_responsible_phase() {
        let base = phased(&[("fetch", 0.2), ("execute", 0.4), ("commit", 0.1)]);
        let new = phased(&[("fetch", 0.21), ("execute", 0.9), ("commit", 0.1)]);
        let r = phase_diff(&base, &new).expect("both profiled");
        assert_eq!(r.responsible.as_deref(), Some("execute"));
        assert_eq!(r.phases.len(), 3);
        let exec = &r.phases[1];
        assert_eq!(exec.name, "execute");
        assert!((exec.delta_seconds - 0.5).abs() < 1e-12);
        let text = r.render();
        assert!(text.contains("responsible phase: execute"), "{text}");
        assert!(text.contains("slower"), "{text}");

        // A speedup attributes the same way, with the other direction.
        let faster = phased(&[("fetch", 0.2), ("execute", 0.1), ("commit", 0.1)]);
        let r = phase_diff(&base, &faster).expect("both profiled");
        assert_eq!(r.responsible.as_deref(), Some("execute"));
        assert!(r.render().contains("faster"));
    }

    #[test]
    fn phase_diff_requires_profiles_on_both_sides() {
        let with = phased(&[("fetch", 0.2)]);
        let without = BenchSummary {
            bench: "simulator".to_owned(),
            quick: true,
            cases: Vec::new(),
            host_phases: None,
        };
        assert_eq!(phase_diff(&with, &without), None);
        assert_eq!(phase_diff(&without, &with), None);
    }

    #[test]
    fn host_phases_parse_round_trip() {
        let doc = Json::obj()
            .field("bench", "simulator")
            .field("cases", Json::arr())
            .field(
                "host_phases",
                Json::obj()
                    .field("cycles", 42u64)
                    .field("total_seconds", 0.5)
                    .field(
                        "phases",
                        Json::obj().field(
                            "fetch",
                            Json::obj().field("seconds", 0.5).field("share", 1.0),
                        ),
                    ),
            )
            .to_string();
        let s = BenchSummary::parse(&doc).unwrap();
        let hp = s.host_phases.expect("parsed");
        assert_eq!(hp.cycles, 42);
        assert_eq!(hp.phases, vec![("fetch".to_owned(), 0.5)]);

        // Malformed profiles are a parse error, not a silent None.
        let bad = doc.replace("\"seconds\"", "\"sections\"");
        assert!(BenchSummary::parse(&bad).unwrap_err().contains("seconds"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BenchSummary::parse("not json").is_err());
        assert!(BenchSummary::parse("{\"bench\":\"simulator\"}")
            .unwrap_err()
            .contains("cases"));
        let no_min = r#"{"bench":"simulator","cases":[{"name":"x"}]}"#;
        assert!(BenchSummary::parse(no_min).unwrap_err().contains("min_ms"));
        assert!(perturb("[1,2]", 1.0).is_err());
    }
}
