//! Miniature end-to-end runs of each paper experiment, so `cargo bench`
//! exercises every figure's code path on every run. Each benchmark runs
//! one representative workload at tiny scale through the mode/config
//! matrix of the corresponding figure binary.
//!
//! Plain `harness = false` timing binary on [`redsim_util::bench`]; run
//! with `cargo bench -p redsim-bench --bench figures_smoke`.

use std::hint::black_box;

use redsim_bench::Harness;
use redsim_core::{ExecMode, FaultConfig, MachineConfig, Simulator, SliceSource};
use redsim_irb::{IrbConfig, PortConfig, ReusePolicy};
use redsim_util::bench;
use redsim_workloads::Workload;

const APP: Workload = Workload::Gzip;

fn fig2_smoke() {
    let mut h = Harness::quick();
    let base = MachineConfig::paper_baseline();
    let trace = h.trace(APP);
    let r = bench(1, 10, || {
        for cfg in [
            base.clone(),
            base.clone().with_double_alus(),
            base.clone().with_double_ruu(),
            base.clone().with_double_widths(),
        ] {
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(cfg, ExecMode::Die)
                    .run_source(&mut src)
                    .unwrap(),
            );
        }
    });
    println!("{}", r.report("fig2_smoke", None));
}

fn recovery_smoke() {
    let mut h = Harness::quick();
    let base = MachineConfig::paper_baseline();
    let trace = h.trace(APP);
    let r = bench(1, 10, || {
        for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(base.clone(), mode)
                    .run_source(&mut src)
                    .unwrap(),
            );
        }
    });
    println!("{}", r.report("fig_recovery_smoke", None));
}

fn irb_sweep_smoke() {
    let mut h = Harness::quick();
    let base = MachineConfig::paper_baseline();
    let trace = h.trace(APP);
    let r = bench(1, 10, || {
        for irb in [
            IrbConfig {
                entries: 128,
                ..IrbConfig::paper_baseline()
            },
            IrbConfig {
                ports: PortConfig {
                    read: 1,
                    write: 1,
                    read_write: 0,
                },
                ..IrbConfig::paper_baseline()
            },
            IrbConfig::paper_baseline_with_victim(),
            IrbConfig {
                policy: ReusePolicy::Name,
                ..IrbConfig::paper_baseline()
            },
        ] {
            let mut cfg = base.clone();
            cfg.irb = irb;
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(cfg, ExecMode::DieIrb)
                    .run_source(&mut src)
                    .unwrap(),
            );
        }
    });
    println!("{}", r.report("fig_size_ports_conflict_smoke", None));
}

fn faults_smoke() {
    let mut h = Harness::quick();
    let base = MachineConfig::paper_baseline();
    let trace = h.trace(APP);
    let r = bench(1, 10, || {
        let mut src = SliceSource::new(&trace);
        black_box(
            Simulator::new(base.clone(), ExecMode::Die)
                .try_with_faults(FaultConfig {
                    fu_rate: 1e-4,
                    seed: 1,
                    ..FaultConfig::none()
                })
                .expect("valid fault configuration")
                .run_source(&mut src)
                .unwrap(),
        );
    });
    println!("{}", r.report("fig_faults_smoke", None));
}

fn extensions_smoke() {
    let mut h = Harness::quick();
    let base = MachineConfig::paper_baseline();
    let trace = h.trace(APP);
    let r = bench(1, 10, || {
        // Clustered alternative.
        let mut src = SliceSource::new(&trace);
        black_box(
            Simulator::new(base.clone(), ExecMode::DieCluster)
                .run_source(&mut src)
                .unwrap(),
        );
        // Non-data-capture scheduler variants.
        for m in [
            redsim_core::SchedulerModel::NonDataCapturePipelined,
            redsim_core::SchedulerModel::NonDataCaptureNaive,
        ] {
            let mut cfg = base.clone();
            cfg.scheduler = m;
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(cfg, ExecMode::DieIrb)
                    .run_source(&mut src)
                    .unwrap(),
            );
        }
        // Fidelity knobs.
        let mut cfg = base.clone();
        cfg.wrong_path_fetch = true;
        cfg.stl_forwarding = true;
        let mut src = SliceSource::new(&trace);
        black_box(
            Simulator::new(cfg, ExecMode::Die)
                .run_source(&mut src)
                .unwrap(),
        );
    });
    println!("{}", r.report("fig_cluster_scheduler_fidelity_smoke", None));
}

fn main() {
    fig2_smoke();
    recovery_smoke();
    irb_sweep_smoke();
    faults_smoke();
    extensions_smoke();
}
