//! Miniature end-to-end runs of each paper experiment, so `cargo bench`
//! exercises every figure's code path on every run. Each benchmark runs
//! one representative workload at tiny scale through the mode/config
//! matrix of the corresponding figure binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use redsim_bench::Harness;
use redsim_core::{ExecMode, FaultConfig, MachineConfig, Simulator, VecSource};
use redsim_irb::{IrbConfig, PortConfig, ReusePolicy};
use redsim_workloads::Workload;

const APP: Workload = Workload::Gzip;

fn fig2_smoke(c: &mut Criterion) {
    c.bench_function("fig2_smoke", |b| {
        let mut h = Harness::quick();
        let base = MachineConfig::paper_baseline();
        let trace = h.trace(APP);
        b.iter(|| {
            for cfg in [
                base.clone(),
                base.clone().with_double_alus(),
                base.clone().with_double_ruu(),
                base.clone().with_double_widths(),
            ] {
                let mut src = VecSource::new(trace.clone());
                black_box(
                    Simulator::new(cfg, ExecMode::Die)
                        .run_source(&mut src)
                        .unwrap(),
                );
            }
        });
    });
}

fn recovery_smoke(c: &mut Criterion) {
    c.bench_function("fig_recovery_smoke", |b| {
        let mut h = Harness::quick();
        let base = MachineConfig::paper_baseline();
        let trace = h.trace(APP);
        b.iter(|| {
            for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
                let mut src = VecSource::new(trace.clone());
                black_box(
                    Simulator::new(base.clone(), mode)
                        .run_source(&mut src)
                        .unwrap(),
                );
            }
        });
    });
}

fn irb_sweep_smoke(c: &mut Criterion) {
    c.bench_function("fig_size_ports_conflict_smoke", |b| {
        let mut h = Harness::quick();
        let base = MachineConfig::paper_baseline();
        let trace = h.trace(APP);
        b.iter(|| {
            for irb in [
                IrbConfig {
                    entries: 128,
                    ..IrbConfig::paper_baseline()
                },
                IrbConfig {
                    ports: PortConfig {
                        read: 1,
                        write: 1,
                        read_write: 0,
                    },
                    ..IrbConfig::paper_baseline()
                },
                IrbConfig::paper_baseline_with_victim(),
                IrbConfig {
                    policy: ReusePolicy::Name,
                    ..IrbConfig::paper_baseline()
                },
            ] {
                let mut cfg = base.clone();
                cfg.irb = irb;
                let mut src = VecSource::new(trace.clone());
                black_box(
                    Simulator::new(cfg, ExecMode::DieIrb)
                        .run_source(&mut src)
                        .unwrap(),
                );
            }
        });
    });
}

fn faults_smoke(c: &mut Criterion) {
    c.bench_function("fig_faults_smoke", |b| {
        let mut h = Harness::quick();
        let base = MachineConfig::paper_baseline();
        let trace = h.trace(APP);
        b.iter(|| {
            let mut src = VecSource::new(trace.clone());
            black_box(
                Simulator::new(base.clone(), ExecMode::Die)
                    .with_faults(FaultConfig {
                        fu_rate: 1e-4,
                        seed: 1,
                        ..FaultConfig::none()
                    })
                    .run_source(&mut src)
                    .unwrap(),
            );
        });
    });
}

fn extensions_smoke(c: &mut Criterion) {
    c.bench_function("fig_cluster_scheduler_fidelity_smoke", |b| {
        let mut h = Harness::quick();
        let base = MachineConfig::paper_baseline();
        let trace = h.trace(APP);
        b.iter(|| {
            // Clustered alternative.
            let mut src = VecSource::new(trace.clone());
            black_box(
                Simulator::new(base.clone(), ExecMode::DieCluster)
                    .run_source(&mut src)
                    .unwrap(),
            );
            // Non-data-capture scheduler variants.
            for m in [
                redsim_core::SchedulerModel::NonDataCapturePipelined,
                redsim_core::SchedulerModel::NonDataCaptureNaive,
            ] {
                let mut cfg = base.clone();
                cfg.scheduler = m;
                let mut src = VecSource::new(trace.clone());
                black_box(
                    Simulator::new(cfg, ExecMode::DieIrb)
                        .run_source(&mut src)
                        .unwrap(),
                );
            }
            // Fidelity knobs.
            let mut cfg = base.clone();
            cfg.wrong_path_fetch = true;
            cfg.stl_forwarding = true;
            let mut src = VecSource::new(trace.clone());
            black_box(
                Simulator::new(cfg, ExecMode::Die)
                    .run_source(&mut src)
                    .unwrap(),
            );
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig2_smoke, recovery_smoke, irb_sweep_smoke, faults_smoke,
              extensions_smoke
}
criterion_main!(benches);
