//! Criterion microbenchmarks of the simulator stack itself: functional
//! emulation throughput, cycle-level simulation throughput per mode, and
//! the hot single structures (IRB lookups, cache accesses, predictor
//! updates). These guard the harness against performance regressions —
//! the figure binaries run millions of simulated cycles.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use redsim_core::{ExecMode, MachineConfig, Simulator, VecSource};
use redsim_irb::{IrbConfig, IrbEntry, ReuseBuffer};
use redsim_mem::{Hierarchy, HierarchyConfig};
use redsim_predictor::{Bimodal, DirectionPredictor};
use redsim_workloads::Workload;

fn emulator_throughput(c: &mut Criterion) {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let len = {
        let mut e = redsim_isa::emu::Emulator::new(&program);
        e.run(100_000_000).unwrap()
    };
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(len));
    g.bench_function("gzip_tiny", |b| {
        b.iter(|| {
            let mut e = redsim_isa::emu::Emulator::new(&program);
            black_box(e.run(100_000_000).unwrap())
        });
    });
    g.finish();
}

fn simulation_throughput(c: &mut Criterion) {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let trace = redsim_isa::emu::Emulator::new(&program)
        .run_trace(100_000_000)
        .unwrap();
    let cfg = MachineConfig::paper_baseline();
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
        g.bench_function(format!("{mode:?}_gzip_tiny"), |b| {
            b.iter(|| {
                let mut src = VecSource::new(trace.clone());
                black_box(
                    Simulator::new(cfg.clone(), mode)
                        .run_source(&mut src)
                        .unwrap(),
                )
            });
        });
    }
    g.finish();
}

fn irb_operations(c: &mut Criterion) {
    let mut g = c.benchmark_group("irb");
    g.bench_function("lookup_insert_1024dm", |b| {
        let mut irb = ReuseBuffer::new(IrbConfig::paper_baseline());
        let mut pc = 0x1000u64;
        b.iter(|| {
            pc = pc.wrapping_add(8) & 0xfff8;
            irb.insert(IrbEntry {
                pc,
                op1: pc,
                op2: 3,
                result: pc + 3,
            });
            black_box(irb.lookup(pc.wrapping_sub(64)))
        });
    });
    g.finish();
}

fn cache_accesses(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("hierarchy_streaming", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_baseline());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            black_box(h.read_data(addr))
        });
    });
    g.finish();
}

fn predictor_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.bench_function("bimodal_train_predict", |b| {
        let mut p = Bimodal::new(4096);
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(8);
            let t = pc & 16 != 0;
            p.update(pc, t);
            black_box(p.predict(pc))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = emulator_throughput, simulation_throughput, irb_operations,
              cache_accesses, predictor_updates
}
criterion_main!(benches);
