//! Microbenchmarks of the simulator stack itself: functional emulation
//! throughput, cycle-level simulation throughput per mode, and the hot
//! single structures (IRB lookups, cache accesses, predictor updates).
//! These guard the harness against performance regressions — the figure
//! binaries run millions of simulated cycles.
//!
//! Plain `harness = false` timing binary on [`redsim_util::bench`]; run
//! with `cargo bench -p redsim-bench --bench simulator`. Besides the
//! aligned report lines on stdout, the run writes a machine-readable
//! summary (`BENCH_simulator.json` by default, `--out <path>` to
//! redirect) comparing the five simulator cases against the recorded
//! scan-based baseline, so the event-driven scheduler's speedup stays
//! an auditable number rather than a claim. `--quick` trims the
//! iteration counts for CI smoke runs — timings get noisier, but the
//! file shape and the determinism of the simulated stats don't change.

use std::hint::black_box;

use redsim_core::{
    ExecMode, HostProfiler, Instrumentation, MachineConfig, NullMetrics, NullTracer, Simulator,
    SliceSource,
};
use redsim_irb::{IrbConfig, IrbEntry, ReuseBuffer};
use redsim_mem::{Hierarchy, HierarchyConfig};
use redsim_predictor::{Bimodal, DirectionPredictor};
use redsim_util::{bench, BenchResult, Json};
use redsim_workloads::Workload;

/// Minimum iteration time of the scan-based scheduler (the pre-event-
/// driven seed of this repo) on the same five cases, in milliseconds.
/// Recorded on the reference container with `bench(2, 10)`; keyed by
/// the stable `case_id`s produced by [`simulation_throughput`], so the
/// pairing survives display renames.
const SCAN_BASELINE_MS: [(&str, f64); 5] = [
    ("sim.sie.gzip.tiny", 12.09),
    ("sim.die.gzip.tiny", 21.00),
    ("sim.die-irb.gzip.tiny", 39.71),
    ("sim.die.gzip.tiny.2xruu", 23.26),
    ("sim.die-irb.gzip.tiny.2xruu", 49.82),
];

struct Case {
    /// Stable machine identity, carried as `case_id` in the summary:
    /// `redsim-bench diff` matches on it, so display names can be
    /// reworded without old/new summaries failing to pair up.
    id: &'static str,
    name: String,
    result: BenchResult,
    elements: Option<u64>,
}

fn record(
    cases: &mut Vec<Case>,
    id: &'static str,
    name: &str,
    result: BenchResult,
    elements: Option<u64>,
) {
    println!("{}", result.report(name, elements));
    cases.push(Case {
        id,
        name: name.to_owned(),
        result,
        elements,
    });
}

fn emulator_throughput(cases: &mut Vec<Case>, iters: (u32, u32)) {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let len = {
        let mut e = redsim_isa::emu::Emulator::new(&program);
        e.run(100_000_000).unwrap()
    };
    let r = bench(iters.0, iters.1, || {
        let mut e = redsim_isa::emu::Emulator::new(&program);
        black_box(e.run(100_000_000).unwrap())
    });
    record(cases, "emu.gzip.tiny", "emulator/gzip_tiny", r, Some(len));
}

fn simulation_throughput(cases: &mut Vec<Case>, iters: (u32, u32)) {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let trace = redsim_isa::emu::Emulator::new(&program)
        .run_trace(100_000_000)
        .unwrap();
    let cfg = MachineConfig::paper_baseline();
    for (mode, id) in [
        (ExecMode::Sie, "sim.sie.gzip.tiny"),
        (ExecMode::Die, "sim.die.gzip.tiny"),
        (ExecMode::DieIrb, "sim.die-irb.gzip.tiny"),
    ] {
        let r = bench(iters.0, iters.1, || {
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(cfg.clone(), mode)
                    .run_source(&mut src)
                    .unwrap(),
            )
        });
        record(
            cases,
            id,
            &format!("simulator/{mode:?}_gzip_tiny"),
            r,
            Some(trace.len() as u64),
        );
    }
    let big = MachineConfig::paper_baseline().with_double_ruu();
    for (mode, id) in [
        (ExecMode::Die, "sim.die.gzip.tiny.2xruu"),
        (ExecMode::DieIrb, "sim.die-irb.gzip.tiny.2xruu"),
    ] {
        let r = bench(iters.0, iters.1, || {
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(big.clone(), mode)
                    .run_source(&mut src)
                    .unwrap(),
            )
        });
        record(
            cases,
            id,
            &format!("simulator/{mode:?}_gzip_tiny_2xruu"),
            r,
            Some(trace.len() as u64),
        );
    }
}

fn irb_operations(cases: &mut Vec<Case>, iters: (u32, u32)) {
    let mut irb = ReuseBuffer::new(IrbConfig::paper_baseline());
    let mut pc = 0x1000u64;
    let r = bench(iters.0, iters.1, || {
        for _ in 0..1000 {
            pc = pc.wrapping_add(8) & 0xfff8;
            irb.insert(IrbEntry {
                pc,
                op1: pc,
                op2: 3,
                result: pc + 3,
            });
            black_box(irb.lookup(pc.wrapping_sub(64)));
        }
    });
    record(
        cases,
        "irb.lookup-insert.1024dm",
        "irb/lookup_insert_1024dm (x1000)",
        r,
        None,
    );
}

fn cache_accesses(cases: &mut Vec<Case>, iters: (u32, u32)) {
    let mut h = Hierarchy::new(HierarchyConfig::paper_baseline());
    let mut addr = 0u64;
    let r = bench(iters.0, iters.1, || {
        for _ in 0..1000 {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            black_box(h.read_data(addr));
        }
    });
    record(
        cases,
        "cache.hierarchy.streaming",
        "cache/hierarchy_streaming (x1000)",
        r,
        None,
    );
}

fn predictor_updates(cases: &mut Vec<Case>, iters: (u32, u32)) {
    let mut p = Bimodal::new(4096);
    let mut pc = 0u64;
    let r = bench(iters.0, iters.1, || {
        for _ in 0..1000 {
            pc = pc.wrapping_add(8);
            let t = pc & 16 != 0;
            p.update(pc, t);
            black_box(p.predict(pc));
        }
    });
    record(
        cases,
        "predictor.bimodal.train-predict",
        "predictor/bimodal_train_predict (x1000)",
        r,
        None,
    );
}

/// One instrumented (untimed) DIE-IRB run with the host profiler
/// attached: where the simulator itself spends wall-clock, by pipeline
/// phase. Kept separate from the timed loops above so the ~6
/// monotonic-clock reads per cycle never contaminate the min-of-N
/// numbers the regression gate compares.
fn host_phase_profile() -> Json {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let trace = redsim_isa::emu::Emulator::new(&program)
        .run_trace(100_000_000)
        .unwrap();
    let mut prof = HostProfiler::default();
    let mut tracer = NullTracer;
    let mut src = SliceSource::new(&trace);
    Simulator::new(MachineConfig::paper_baseline(), ExecMode::DieIrb)
        .run_source_instrumented(
            &mut src,
            Instrumentation {
                tracer: &mut tracer,
                metrics: &mut NullMetrics,
                profiler: Some(&mut prof),
            },
        )
        .expect("profiled run completes");
    prof.to_json()
}

fn baseline_ms(case_id: &str) -> Option<f64> {
    SCAN_BASELINE_MS
        .iter()
        .find(|(id, _)| *id == case_id)
        .map(|&(_, ms)| ms)
}

fn summary_json(cases: &[Case], quick: bool, host_phases: Json) -> Json {
    let mut arr = Json::arr();
    let mut speedups = Vec::new();
    for c in cases {
        let min_ms = c.result.min.as_secs_f64() * 1e3;
        let mut obj = Json::obj()
            .field("case_id", c.id)
            .field("name", c.name.as_str())
            .field("iters", c.result.iters)
            .field("min_ms", min_ms)
            .field("mean_ms", c.result.mean.as_secs_f64() * 1e3)
            .field("max_ms", c.result.max.as_secs_f64() * 1e3);
        if let Some(n) = c.elements {
            obj = obj.field("melem_per_sec", c.result.throughput(n) / 1e6);
        }
        if let Some(base) = baseline_ms(c.id) {
            let speedup = if min_ms > 0.0 { base / min_ms } else { 0.0 };
            speedups.push(speedup);
            obj = obj
                .field("scan_baseline_min_ms", base)
                .field("speedup_vs_scan", speedup);
        }
        arr = arr.item(obj);
    }
    let geomean = if speedups.is_empty() {
        0.0
    } else {
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
    };
    Json::obj()
        .field("bench", "simulator")
        .field("quick", quick)
        .field("trace", "gzip tiny (committed-path µop trace)")
        .field(
            "scan_baseline",
            "scan-based scheduler seed, bench(2,10) min on the reference container",
        )
        .field("geomean_speedup_vs_scan", geomean)
        .field("host_phases", host_phases)
        .field("cases", arr)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Cargo runs bench binaries with the package directory as cwd, so
    // anchor the default output at the workspace root instead.
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simulator.json");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or(default_out, String::as_str);

    // Quick mode exists for CI smoke: one warmup + three timed
    // iterations keeps the whole run under a few seconds while still
    // exercising every case and the summary writer.
    let sim_iters = if quick { (1, 3) } else { (2, 10) };
    let micro_iters = if quick { (10, 100) } else { (100, 1000) };

    let mut cases = Vec::new();
    emulator_throughput(&mut cases, sim_iters);
    simulation_throughput(&mut cases, sim_iters);
    irb_operations(&mut cases, micro_iters);
    cache_accesses(&mut cases, micro_iters);
    predictor_updates(&mut cases, micro_iters);

    let json = summary_json(&cases, quick, host_phase_profile());
    std::fs::write(out, format!("{json}\n")).expect("write bench summary");
    println!("wrote {out}");
}
