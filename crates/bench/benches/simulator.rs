//! Microbenchmarks of the simulator stack itself: functional emulation
//! throughput, cycle-level simulation throughput per mode, and the hot
//! single structures (IRB lookups, cache accesses, predictor updates).
//! These guard the harness against performance regressions — the figure
//! binaries run millions of simulated cycles.
//!
//! Plain `harness = false` timing binary on [`redsim_util::bench`]; run
//! with `cargo bench -p redsim-bench --bench simulator`.

use std::hint::black_box;

use redsim_core::{ExecMode, MachineConfig, Simulator, SliceSource};
use redsim_irb::{IrbConfig, IrbEntry, ReuseBuffer};
use redsim_mem::{Hierarchy, HierarchyConfig};
use redsim_predictor::{Bimodal, DirectionPredictor};
use redsim_util::bench;
use redsim_workloads::Workload;

fn emulator_throughput() {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let len = {
        let mut e = redsim_isa::emu::Emulator::new(&program);
        e.run(100_000_000).unwrap()
    };
    let r = bench(2, 10, || {
        let mut e = redsim_isa::emu::Emulator::new(&program);
        black_box(e.run(100_000_000).unwrap())
    });
    println!("{}", r.report("emulator/gzip_tiny", Some(len)));
}

fn simulation_throughput() {
    let w = Workload::Gzip;
    let program = w.program(w.tiny_params()).unwrap();
    let trace = redsim_isa::emu::Emulator::new(&program)
        .run_trace(100_000_000)
        .unwrap();
    let cfg = MachineConfig::paper_baseline();
    for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
        let r = bench(2, 10, || {
            let mut src = SliceSource::new(&trace);
            black_box(
                Simulator::new(cfg.clone(), mode)
                    .run_source(&mut src)
                    .unwrap(),
            )
        });
        println!(
            "{}",
            r.report(
                &format!("simulator/{mode:?}_gzip_tiny"),
                Some(trace.len() as u64)
            )
        );
    }
}

fn irb_operations() {
    let mut irb = ReuseBuffer::new(IrbConfig::paper_baseline());
    let mut pc = 0x1000u64;
    let r = bench(100, 1000, || {
        for _ in 0..1000 {
            pc = pc.wrapping_add(8) & 0xfff8;
            irb.insert(IrbEntry {
                pc,
                op1: pc,
                op2: 3,
                result: pc + 3,
            });
            black_box(irb.lookup(pc.wrapping_sub(64)));
        }
    });
    println!("{}", r.report("irb/lookup_insert_1024dm (x1000)", None));
}

fn cache_accesses() {
    let mut h = Hierarchy::new(HierarchyConfig::paper_baseline());
    let mut addr = 0u64;
    let r = bench(100, 1000, || {
        for _ in 0..1000 {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            black_box(h.read_data(addr));
        }
    });
    println!("{}", r.report("cache/hierarchy_streaming (x1000)", None));
}

fn predictor_updates() {
    let mut p = Bimodal::new(4096);
    let mut pc = 0u64;
    let r = bench(100, 1000, || {
        for _ in 0..1000 {
            pc = pc.wrapping_add(8);
            let t = pc & 16 != 0;
            p.update(pc, t);
            black_box(p.predict(pc));
        }
    });
    println!(
        "{}",
        r.report("predictor/bimodal_train_predict (x1000)", None)
    );
}

fn main() {
    emulator_throughput();
    simulation_throughput();
    irb_operations();
    cache_accesses();
    predictor_updates();
}
