//! Exhaustive per-opcode semantics tests: every opcode in the ISA is
//! executed through the assembler + emulator and checked against a
//! hand-computed result. A table at the end asserts that every opcode
//! was covered, so adding an instruction without a semantics test here
//! fails the suite.

use std::collections::HashSet;

use redsim_isa::asm::assemble;
use redsim_isa::emu::Emulator;
use redsim_isa::{Opcode, Program};

struct Coverage {
    seen: HashSet<Opcode>,
}

impl Coverage {
    fn new() -> Self {
        Coverage {
            seen: HashSet::new(),
        }
    }

    fn run(&mut self, src: &str) -> (Emulator, Program) {
        let program = assemble(src).expect("assemble");
        for inst in program.text() {
            self.seen.insert(inst.op);
        }
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).expect("run");
        (emu, program)
    }

    fn check_ints(&mut self, src: &str, expected: &[i64]) {
        let (emu, _) = self.run(src);
        assert_eq!(emu.output_ints(), expected, "program:\n{src}");
    }
}

#[test]
fn every_opcode_has_checked_semantics() {
    let mut c = Coverage::new();

    // Integer register-register.
    c.check_ints(
        "main: li a0, 12\n li a1, 10\n add t0, a0, a1\n puti t0\n sub t1, a0, a1\n puti t1\n halt\n",
        &[22, 2],
    );
    c.check_ints(
        "main: li a0, 12\n li a1, 10\n and t0, a0, a1\n puti t0\n or t1, a0, a1\n puti t1\n xor t2, a0, a1\n puti t2\n nor t3, a0, a1\n puti t3\n halt\n",
        &[8, 14, 6, !14],
    );
    c.check_ints(
        "main: li a0, -16\n li a1, 2\n sll t0, a0, a1\n puti t0\n srl t1, a1, a1\n puti t1\n sra t2, a0, a1\n puti t2\n halt\n",
        &[-64, 0, -4],
    );
    c.check_ints(
        "main: li a0, -1\n li a1, 1\n slt t0, a0, a1\n puti t0\n sltu t1, a0, a1\n puti t1\n halt\n",
        &[1, 0],
    );

    // Integer register-immediate.
    c.check_ints(
        "main: li a0, 5\n addi t0, a0, -3\n puti t0\n andi t1, a0, 4\n puti t1\n ori t2, a0, 8\n puti t2\n xori t3, a0, 1\n puti t3\n halt\n",
        &[2, 4, 13, 4],
    );
    c.check_ints(
        "main: li a0, -2\n slti t0, a0, 0\n puti t0\n sltiu t1, a0, 0\n puti t1\n slli t2, a0, 2\n puti t2\n srai t3, a0, 1\n puti t3\n halt\n",
        &[1, 0, -8, -1],
    );
    c.check_ints("main: li a0, 16\n srli t0, a0, 2\n puti t0\n halt\n", &[4]);

    // Multiply / divide family.
    c.check_ints(
        "main: li a0, -6\n li a1, 4\n mul t0, a0, a1\n puti t0\n div t1, a0, a1\n puti t1\n rem t2, a0, a1\n puti t2\n halt\n",
        &[-24, -1, -2],
    );
    c.check_ints(
        "main: li a0, 7\n li a1, 2\n divu t0, a0, a1\n puti t0\n remu t1, a0, a1\n puti t1\n halt\n",
        &[3, 1],
    );
    c.check_ints(
        // mulh of 2^32 * 2^32 = 2^64 -> high word 1.
        "main: li a0, 1\n slli a0, a0, 32\n mulh t0, a0, a0\n puti t0\n halt\n",
        &[1],
    );

    // Floating point (checked through integer conversion).
    c.check_ints(
        "main: li a0, 9\n li a1, 2\n fcvt.d.l f0, a0\n fcvt.d.l f1, a1\n \
         fadd.d f2, f0, f1\n fcvt.l.d t0, f2\n puti t0\n \
         fsub.d f3, f0, f1\n fcvt.l.d t1, f3\n puti t1\n \
         fmul.d f4, f0, f1\n fcvt.l.d t2, f4\n puti t2\n halt\n",
        &[11, 7, 18],
    );
    c.check_ints(
        "main: li a0, 9\n li a1, 2\n fcvt.d.l f0, a0\n fcvt.d.l f1, a1\n \
         fdiv.d f2, f0, f1\n fcvt.l.d t0, f2\n puti t0\n \
         fsqrt.d f3, f0\n fcvt.l.d t1, f3\n puti t1\n halt\n",
        &[4, 3],
    );
    c.check_ints(
        "main: li a0, -5\n li a1, 3\n fcvt.d.l f0, a0\n fcvt.d.l f1, a1\n \
         fmin.d f2, f0, f1\n fcvt.l.d t0, f2\n puti t0\n \
         fmax.d f3, f0, f1\n fcvt.l.d t1, f3\n puti t1\n \
         fabs.d f4, f0\n fcvt.l.d t2, f4\n puti t2\n \
         fneg.d f5, f1\n fcvt.l.d t3, f5\n puti t3\n \
         fmov.d f6, f1\n fcvt.l.d t4, f6\n puti t4\n halt\n",
        &[-5, 3, 5, -3, 3],
    );
    c.check_ints(
        "main: li a0, 1\n li a1, 2\n fcvt.d.l f0, a0\n fcvt.d.l f1, a1\n \
         feq.d t0, f0, f0\n puti t0\n flt.d t1, f0, f1\n puti t1\n \
         fle.d t2, f1, f0\n puti t2\n halt\n",
        &[1, 1, 0],
    );

    // Loads and stores, all widths, both extensions.
    c.check_ints(
        r#"
            .data
        buf: .space 64
            .text
        main:
            la s0, buf
            li t0, -1
            sd t0, 0(s0)
            ld t1, 0(s0)
            puti t1
            li t2, 300
            sw t2, 8(s0)
            lw t3, 8(s0)
            puti t3
            lwu t4, 8(s0)
            puti t4
            sh t2, 16(s0)
            lh t5, 16(s0)
            puti t5
            lhu t6, 16(s0)
            puti t6
            sb t2, 24(s0)
            lb a2, 24(s0)
            puti a2
            lbu a3, 24(s0)
            puti a3
            halt
        "#,
        &[-1, 300, 300, 300, 300, 44, 44],
    );
    // Sign-extension edges.
    c.check_ints(
        r#"
            .data
        buf: .space 16
            .text
        main:
            la s0, buf
            li t0, 255
            sb t0, 0(s0)
            lb t1, 0(s0)
            puti t1
            li t0, 0x8000
            sh t0, 8(s0)
            lh t2, 8(s0)
            puti t2
            halt
        "#,
        &[-1, -32768],
    );
    // FP memory.
    c.check_ints(
        r#"
            .data
        v:  .double 2.5
        out: .space 8
            .text
        main:
            la s0, v
            fld f0, 0(s0)
            fadd.d f1, f0, f0
            la s1, out
            fsd f1, 0(s1)
            fld f2, 0(s1)
            fcvt.l.d t0, f2
            puti t0
            halt
        "#,
        &[5],
    );

    // Branches, every condition both ways.
    c.check_ints(
        r#"
        main:
            li a0, 1
            li a1, 2
            li s1, 0
            beq a0, a0, b1      # taken
            addi s1, s1, 100
        b1: bne a0, a1, b2      # taken
            addi s1, s1, 100
        b2: blt a0, a1, b3      # taken
            addi s1, s1, 100
        b3: bge a1, a0, b4      # taken
            addi s1, s1, 100
        b4: bltu a0, a1, b5     # taken
            addi s1, s1, 100
        b5: bgeu a1, a0, b6     # taken
            addi s1, s1, 100
        b6: beq a0, a1, bad     # not taken
            addi s1, s1, 1
            bne a0, a0, bad     # not taken
            addi s1, s1, 1
            puti s1
            halt
        bad:
            puti s1
            halt
        "#,
        &[2],
    );

    // Jumps.
    c.check_ints(
        r#"
        main:
            j over
            puti zero           # skipped
        over:
            jal sub1            # link through ra
            la t0, sub2
            jalr s1, t0, 0      # link through s1
            li a0, 7
            puti a0
            halt
        sub1:
            ret                 # jr ra
        sub2:
            jr s1, 0
        "#,
        &[7],
    );

    // System ops (putc/putf checked by kind, halt/nop implicitly).
    {
        let (emu, _) =
            c.run("main: nop\n li a0, 88\n putc a0\n fcvt.d.l f0, a0\n putf f0\n halt\n");
        use redsim_isa::trace::OutputEvent;
        assert_eq!(
            emu.output(),
            &[OutputEvent::Char(88), OutputEvent::Float(88.0)]
        );
    }

    // The coverage gate: every opcode must have appeared above.
    let missing: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|op| !c.seen.contains(op))
        .collect();
    assert!(
        missing.is_empty(),
        "opcodes without a semantics test: {missing:?}"
    );
}
