//! Error types for assembly, decoding and emulation.

use std::error::Error;
use std::fmt;

/// An error produced while assembling source text.
///
/// Carries the 1-based source line where the problem was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line on which the error occurred.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.line
    }

    /// A human-readable description of the problem.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// An error produced while decoding a binary instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode number is not assigned.
    BadOpcode(u8),
    /// A reserved bit was set in the instruction word.
    ReservedBits(u64),
    /// A text segment's byte length is not a whole number of instructions.
    TruncatedText(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(n) => write!(f, "unassigned opcode number {n:#x}"),
            DecodeError::ReservedBits(w) => {
                write!(f, "reserved bits set in instruction word {w:#018x}")
            }
            DecodeError::TruncatedText(len) => {
                write!(f, "text segment length {len} is not a multiple of 8")
            }
        }
    }
}

impl Error for DecodeError {}

/// An error raised during functional emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the text segment.
    PcOutOfText {
        /// The offending program counter.
        pc: u64,
    },
    /// A memory access touched an unmapped or out-of-bounds address.
    BadAddress {
        /// The faulting effective address.
        addr: u64,
        /// PC of the faulting instruction.
        pc: u64,
    },
    /// A load or store was not naturally aligned for its width.
    Misaligned {
        /// The faulting effective address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
        /// PC of the faulting instruction.
        pc: u64,
    },
    /// The instruction budget given to [`run`](crate::emu::Emulator::run)
    /// was exhausted before the program halted.
    BudgetExhausted {
        /// Number of instructions that were executed.
        executed: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfText { pc } => {
                write!(f, "program counter {pc:#x} left the text segment")
            }
            EmuError::BadAddress { addr, pc } => {
                write!(f, "bad memory address {addr:#x} at pc {pc:#x}")
            }
            EmuError::Misaligned { addr, align, pc } => write!(
                f,
                "address {addr:#x} not aligned to {align} bytes at pc {pc:#x}"
            ),
            EmuError::BudgetExhausted { executed } => write!(
                f,
                "instruction budget exhausted after {executed} instructions"
            ),
        }
    }
}

impl Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_error_display_includes_line() {
        let e = AsmError::new(12, "unknown mnemonic `frob`");
        assert_eq!(e.to_string(), "line 12: unknown mnemonic `frob`");
        assert_eq!(e.line(), 12);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AsmError>();
        assert_send_sync::<DecodeError>();
        assert_send_sync::<EmuError>();
    }

    #[test]
    fn emu_error_messages_are_lowercase() {
        let msgs = [
            EmuError::PcOutOfText { pc: 0 }.to_string(),
            EmuError::BadAddress { addr: 1, pc: 2 }.to_string(),
            EmuError::Misaligned {
                addr: 3,
                align: 8,
                pc: 4,
            }
            .to_string(),
            EmuError::BudgetExhausted { executed: 5 }.to_string(),
        ];
        for m in msgs {
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }
}
