//! Architectural register names.
//!
//! Integer and floating-point registers are distinct newtypes
//! ([`IntReg`], [`FpReg`]) so an instruction constructor can never confuse
//! the two files. Both files have 32 registers; integer register 0 is
//! hard-wired to zero, as on MIPS/RISC-V and SimpleScalar PISA.

use std::fmt;

/// Number of registers in each architectural register file.
pub const NUM_REGS: usize = 32;

/// An integer architectural register, `r0`–`r31`.
///
/// `r0` reads as zero and ignores writes. The assembler also accepts the
/// RISC-V-style ABI aliases (`zero`, `ra`, `sp`, `a0`–`a7`, `t0`–`t6`,
/// `s0`–`s11`, `gp`, `tp`); see [`IntReg::from_name`].
///
/// # Examples
///
/// ```
/// use redsim_isa::IntReg;
///
/// let a0 = IntReg::from_name("a0").unwrap();
/// assert_eq!(a0, IntReg::new(10));
/// assert_eq!(a0.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// A floating-point architectural register, `f0`–`f31`.
///
/// Values are 64-bit IEEE-754 doubles; the emulator and simulators carry
/// them as raw bit patterns so that redundancy comparisons are bit-exact,
/// the way the hardware comparator of the DIE commit stage would be.
///
/// # Examples
///
/// ```
/// use redsim_isa::FpReg;
///
/// let f3 = FpReg::new(3);
/// assert_eq!(f3.to_string(), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

/// ABI aliases in index order: alias name for integer register `i`.
const INT_ALIASES: [&str; NUM_REGS] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl IntReg {
    /// The hard-wired zero register, `r0`.
    pub const ZERO: IntReg = IntReg(0);
    /// The link register written by `jal`/`call` (`r1`).
    pub const RA: IntReg = IntReg(1);
    /// The stack pointer by convention (`r2`).
    pub const SP: IntReg = IntReg(2);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "integer register index {index} out of range"
        );
        IntReg(index)
    }

    /// The register's index in the architectural file, `0..32`.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the hard-wired zero register.
    #[must_use]
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The `i`-th argument register (`a0` = `r10`, ... `a7` = `r17`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn arg(i: u8) -> Self {
        assert!(i < 8, "argument register a{i} does not exist");
        IntReg(10 + i)
    }

    /// Parses a register name: `r<N>` or an ABI alias such as `a0`, `sp`.
    ///
    /// Returns `None` if the name does not denote an integer register.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        if let Some(rest) = name.strip_prefix('r') {
            if let Ok(n) = rest.parse::<u8>() {
                if (n as usize) < NUM_REGS {
                    return Some(IntReg(n));
                }
            }
        }
        INT_ALIASES
            .iter()
            .position(|&a| a == name)
            .map(|i| IntReg(i as u8))
    }

    /// The register's ABI alias (`"a0"`, `"sp"`, ...).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        INT_ALIASES[self.index()]
    }
}

impl FpReg {
    /// Creates a floating-point register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "fp register index {index} out of range"
        );
        FpReg(index)
    }

    /// The register's index in the architectural file, `0..32`.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses a register name of the form `f<N>`.
    ///
    /// Returns `None` if the name does not denote an fp register.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let rest = name.strip_prefix('f')?;
        let n: u8 = rest.parse().ok()?;
        ((n as usize) < NUM_REGS).then_some(FpReg(n))
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<IntReg> for u8 {
    fn from(r: IntReg) -> u8 {
        r.0
    }
}

impl From<FpReg> for u8 {
    fn from(r: FpReg) -> u8 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::RA.is_zero());
        assert_eq!(IntReg::ZERO, IntReg::new(0));
    }

    #[test]
    fn from_name_numeric_and_alias_agree() {
        for i in 0..NUM_REGS as u8 {
            let numeric = IntReg::from_name(&format!("r{i}")).unwrap();
            let alias = IntReg::from_name(INT_ALIASES[i as usize]).unwrap();
            assert_eq!(numeric, alias);
            assert_eq!(numeric.index(), i as usize);
        }
    }

    #[test]
    fn from_name_rejects_bad_names() {
        assert_eq!(IntReg::from_name("r32"), None);
        assert_eq!(IntReg::from_name("x5"), None);
        assert_eq!(IntReg::from_name("f1"), None);
        assert_eq!(IntReg::from_name(""), None);
        assert_eq!(FpReg::from_name("f32"), None);
        assert_eq!(FpReg::from_name("r1"), None);
        assert_eq!(FpReg::from_name("f"), None);
    }

    #[test]
    fn fp_round_trip() {
        for i in 0..NUM_REGS as u8 {
            let r = FpReg::new(i);
            assert_eq!(FpReg::from_name(&r.to_string()), Some(r));
        }
    }

    #[test]
    fn arg_registers_follow_abi() {
        assert_eq!(IntReg::arg(0).abi_name(), "a0");
        assert_eq!(IntReg::arg(7).abi_name(), "a7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = IntReg::new(32);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn arg_panics_out_of_range() {
        let _ = IntReg::arg(8);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(IntReg::new(2).to_string(), "sp");
        assert_eq!(IntReg::new(10).to_string(), "a0");
    }
}
