//! Committed dynamic-instruction trace records.
//!
//! The functional emulator emits one [`DynInst`] per architecturally
//! committed instruction. The record carries everything the timing models
//! need: operand *values* (so the instruction-reuse test of the DIE-IRB
//! design operates on real data), results, effective addresses, and branch
//! outcomes. Floating-point values travel as raw `f64` bit patterns, which
//! is what the hardware comparators of the DIE commit stage and the IRB
//! reuse test would see.

use crate::inst::Inst;
use crate::op::OpClass;

/// Outcome of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlOutcome {
    /// Whether the branch/jump redirected the PC (always `true` for
    /// jumps).
    pub taken: bool,
    /// The target the instruction computes, whether or not it was taken.
    pub target: u64,
}

/// One committed dynamic instruction.
///
/// # Examples
///
/// ```
/// use redsim_isa::{asm::assemble, emu::Emulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("main: li a0, 2\n add a1, a0, a0\n halt\n")?;
/// let mut emu = Emulator::new(&p);
/// let _li = emu.step()?.unwrap();
/// let add = emu.step()?.unwrap();
/// assert_eq!(add.src1, 2);
/// assert_eq!(add.result, Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Commit-order sequence number, starting at 0.
    pub seq: u64,
    /// The instruction's address.
    pub pc: u64,
    /// The static instruction.
    pub inst: Inst,
    /// First source-operand value. For register–immediate ALU operations
    /// this is the register value; for loads/stores it is the base
    /// address register; for fp operations it is the `f64` bit pattern.
    pub src1: u64,
    /// Second source-operand value. For register–immediate operations
    /// this is the sign-extended immediate; for stores it is the data
    /// value being stored.
    pub src2: u64,
    /// Value written to the destination register (bit pattern), if any.
    /// For loads this is the loaded value; for `jal`/`jalr` the link
    /// address.
    pub result: Option<u64>,
    /// Effective address, for loads and stores.
    pub ea: Option<u64>,
    /// Control-flow outcome, for branches and jumps.
    pub control: Option<ControlOutcome>,
    /// Address of the next committed instruction.
    pub next_pc: u64,
}

impl DynInst {
    /// The functional-unit class of the instruction.
    #[must_use]
    pub fn class(&self) -> OpClass {
        self.inst.op.class()
    }

    /// `true` if this dynamic instruction redirected the PC.
    #[must_use]
    pub fn redirects(&self) -> bool {
        self.control.is_some_and(|c| c.taken)
    }

    /// The address of the instruction immediately after this one in
    /// static program order (the fall-through PC).
    #[must_use]
    pub fn fallthrough_pc(&self) -> u64 {
        self.pc + crate::encode::INST_BYTES
    }
}

/// Events a program emits through the `puti`/`putc`/`putf` instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputEvent {
    /// `puti` — a signed integer.
    Int(i64),
    /// `putc` — one byte.
    Char(u8),
    /// `putf` — a double.
    Float(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn redirects_requires_taken() {
        let base = DynInst {
            seq: 0,
            pc: 0x1000,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1008,
        };
        assert!(!base.redirects());
        let not_taken = DynInst {
            control: Some(ControlOutcome {
                taken: false,
                target: 0x2000,
            }),
            ..base
        };
        assert!(!not_taken.redirects());
        let taken = DynInst {
            control: Some(ControlOutcome {
                taken: true,
                target: 0x2000,
            }),
            ..base
        };
        assert!(taken.redirects());
    }

    #[test]
    fn fallthrough_is_pc_plus_inst_bytes() {
        let d = DynInst {
            seq: 1,
            pc: 0x1010,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1018,
        };
        assert_eq!(d.fallthrough_pc(), 0x1018);
    }
}
