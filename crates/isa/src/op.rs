//! Opcodes, operand signatures and operation classes.

use std::fmt;

/// Every operation in the ISA.
///
/// Floating-point arithmetic is double-precision only (`f64`), mirroring
/// the dominant FP type of the SPEC CPU2000 floating-point suite the paper
/// evaluates on. The operand roles of each opcode are described by its
/// [`Opcode::sig`] signature.
///
/// # Examples
///
/// ```
/// use redsim_isa::{OpClass, Opcode};
///
/// assert_eq!(Opcode::Add.class(), OpClass::IntAlu);
/// assert_eq!(Opcode::FdivD.class(), OpClass::FpDiv);
/// assert!(Opcode::Beq.is_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    // Integer register-register ALU.
    /// Integer add: `rd = rs1 + rs2`.
    Add,
    /// Integer subtract: `rd = rs1 - rs2`.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR (`not` is `nor rd, rs, zero`).
    Nor,
    /// Shift left logical by `rs2 & 63`.
    Sll,
    /// Shift right logical by `rs2 & 63`.
    Srl,
    /// Shift right arithmetic by `rs2 & 63`.
    Sra,
    /// Set if less than, signed: `rd = (rs1 < rs2)`.
    Slt,
    /// Set if less than, unsigned.
    Sltu,
    // Integer register-immediate ALU.
    /// Add immediate.
    Addi,
    /// AND immediate.
    Andi,
    /// OR immediate.
    Ori,
    /// XOR immediate.
    Xori,
    /// Set if less than immediate, signed.
    Slti,
    /// Set if less than immediate, unsigned.
    Sltiu,
    /// Shift left logical by immediate.
    Slli,
    /// Shift right logical by immediate.
    Srli,
    /// Shift right arithmetic by immediate.
    Srai,
    /// Load immediate: `rd = sign_extend(imm32)`.
    Li,
    // Integer multiply/divide.
    /// Multiply, low 64 bits.
    Mul,
    /// Multiply, high 64 bits of the signed 128-bit product.
    Mulh,
    /// Signed divide (`-1` on division by zero).
    Div,
    /// Unsigned divide (all-ones on division by zero).
    Divu,
    /// Signed remainder (dividend on division by zero).
    Rem,
    /// Unsigned remainder (dividend on division by zero).
    Remu,
    // Double-precision floating point.
    /// Double-precision add.
    FaddD,
    /// Double-precision subtract.
    FsubD,
    /// Double-precision multiply.
    FmulD,
    /// Double-precision divide.
    FdivD,
    /// Double-precision square root.
    FsqrtD,
    /// Double-precision minimum.
    FminD,
    /// Double-precision maximum.
    FmaxD,
    /// Double-precision absolute value.
    FabsD,
    /// Double-precision negate.
    FnegD,
    /// Copy between fp registers.
    FmovD,
    /// Convert signed 64-bit integer (rs1) to double (fd).
    FcvtDL,
    /// Convert double (fs1) to signed 64-bit integer (rd), truncating.
    FcvtLD,
    /// FP compare equal; writes 0/1 to an integer register.
    FeqD,
    /// FP compare less-than; writes 0/1 to an integer register.
    FltD,
    /// FP compare less-or-equal; writes 0/1 to an integer register.
    FleD,
    // Loads.
    /// Load byte, sign-extending.
    Lb,
    /// Load byte, zero-extending.
    Lbu,
    /// Load halfword, sign-extending.
    Lh,
    /// Load halfword, zero-extending.
    Lhu,
    /// Load word, sign-extending.
    Lw,
    /// Load word, zero-extending.
    Lwu,
    /// Load doubleword.
    Ld,
    /// Load a double into an fp register.
    Fld,
    // Stores.
    /// Store byte.
    Sb,
    /// Store halfword.
    Sh,
    /// Store word.
    Sw,
    /// Store doubleword.
    Sd,
    /// Store a double from an fp register.
    Fsd,
    // Conditional branches (PC-relative).
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less than, signed.
    Blt,
    /// Branch if greater or equal, signed.
    Bge,
    /// Branch if less than, unsigned.
    Bltu,
    /// Branch if greater or equal, unsigned.
    Bgeu,
    // Jumps.
    /// Unconditional PC-relative jump.
    J,
    /// Jump-and-link, PC-relative; writes the return address to `rd`.
    Jal,
    /// Indirect jump to `rs1 + imm`.
    Jr,
    /// Indirect jump-and-link to `rs1 + imm`; return address to `rd`.
    Jalr,
    // System.
    /// Stop the program.
    Halt,
    /// No operation.
    Nop,
    /// Emit the integer in `rs1` to the program's output channel.
    Puti,
    /// Emit the low byte of `rs1` as a character.
    Putc,
    /// Emit the double in `fs1` to the program's output channel.
    Putf,
}

/// The functional-unit class an operation executes on.
///
/// The out-of-order core binds each class to a pool of functional units
/// with a configurable latency (`redsim-core`). Following the paper's
/// platform, branch-target and memory-address calculations occupy integer
/// ALUs, so [`OpClass::Load`], [`OpClass::Store`], [`OpClass::Branch`] and
/// [`OpClass::Jump`] operations consume `IntAlu` issue slots for their
/// address/target arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiplier.
    IntMul,
    /// Unpipelined integer divider.
    IntDiv,
    /// FP adder (add/sub/compare/convert/move family).
    FpAdd,
    /// FP multiplier.
    FpMul,
    /// FP divider.
    FpDiv,
    /// FP square root unit.
    FpSqrt,
    /// Memory load (address calculation on an integer ALU).
    Load,
    /// Memory store (address calculation on an integer ALU).
    Store,
    /// Conditional branch (target calculation on an integer ALU).
    Branch,
    /// Unconditional or indirect jump.
    Jump,
    /// System operation (halt / output); executes on an integer ALU.
    Sys,
}

impl OpClass {
    /// All classes, in a stable order convenient for stats tables.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::Sys,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::FpSqrt => "fp-sqrt",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Sys => "sys",
        };
        f.write_str(s)
    }
}

/// Width of a memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// The access width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// How an instruction's operand fields are interpreted.
///
/// The signature drives the assembler's operand parsing, the
/// disassembler's formatting, the encoder's field layout and the
/// emulator's register-file routing, guaranteeing all four agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandSig {
    /// `op rd, rs1, rs2` — three integer registers.
    Rrr,
    /// `op rd, rs1, imm` — integer destination, integer source, immediate.
    Rri,
    /// `op rd, imm` — integer destination and immediate (e.g. `li`).
    Ri,
    /// `op fd, fs1, fs2` — three fp registers.
    Fff,
    /// `op fd, fs1` — two fp registers (e.g. `fsqrt.d`).
    Ff,
    /// `op rd, fs1, fs2` — integer destination, fp sources (fp compares).
    Rff,
    /// `op fd, rs1` — fp destination, integer source (`fcvt.d.l`).
    Fr,
    /// `op rd, fs1` — integer destination, fp source (`fcvt.l.d`).
    Rf,
    /// `op rd, imm(rs1)` — integer load.
    MemLoadInt,
    /// `op fd, imm(rs1)` — fp load.
    MemLoadFp,
    /// `op rs2, imm(rs1)` — integer store (`rs2` is the data source).
    MemStoreInt,
    /// `op fs2, imm(rs1)` — fp store (`fs2` is the data source).
    MemStoreFp,
    /// `op rs1, rs2, target` — conditional branch, PC-relative immediate.
    Bcc,
    /// `op target` — PC-relative jump (`j`).
    JImm,
    /// `op rd, target` — PC-relative jump-and-link (`jal`).
    JalImm,
    /// `op rs1` or `op rs1, imm` — indirect jump (`jr`).
    JReg,
    /// `op rd, rs1, imm` — indirect jump-and-link (`jalr`).
    JalReg,
    /// `op rs1` — system op reading one integer register.
    SysR,
    /// `op fs1` — system op reading one fp register.
    SysF,
    /// `op` — no operands.
    SysNone,
}

impl Opcode {
    /// The operation's functional-unit class.
    #[must_use]
    #[inline]
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slti | Sltiu | Slli | Srli | Srai | Li | Nop => OpClass::IntAlu,
            Mul | Mulh => OpClass::IntMul,
            Div | Divu | Rem | Remu => OpClass::IntDiv,
            FaddD | FsubD | FminD | FmaxD | FabsD | FnegD | FmovD | FcvtDL | FcvtLD | FeqD
            | FltD | FleD => OpClass::FpAdd,
            FmulD => OpClass::FpMul,
            FdivD => OpClass::FpDiv,
            FsqrtD => OpClass::FpSqrt,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => OpClass::Load,
            Sb | Sh | Sw | Sd | Fsd => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::Branch,
            J | Jal | Jr | Jalr => OpClass::Jump,
            Halt | Puti | Putc | Putf => OpClass::Sys,
        }
    }

    /// The operand signature (how `rd`/`rs1`/`rs2`/`imm` are interpreted).
    #[must_use]
    #[inline]
    pub fn sig(self) -> OperandSig {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Mul | Mulh | Div
            | Divu | Rem | Remu => OperandSig::Rrr,
            Addi | Andi | Ori | Xori | Slti | Sltiu | Slli | Srli | Srai => OperandSig::Rri,
            Li => OperandSig::Ri,
            FaddD | FsubD | FmulD | FdivD | FminD | FmaxD => OperandSig::Fff,
            FsqrtD | FabsD | FnegD | FmovD => OperandSig::Ff,
            FeqD | FltD | FleD => OperandSig::Rff,
            FcvtDL => OperandSig::Fr,
            FcvtLD => OperandSig::Rf,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => OperandSig::MemLoadInt,
            Fld => OperandSig::MemLoadFp,
            Sb | Sh | Sw | Sd => OperandSig::MemStoreInt,
            Fsd => OperandSig::MemStoreFp,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OperandSig::Bcc,
            J => OperandSig::JImm,
            Jal => OperandSig::JalImm,
            Jr => OperandSig::JReg,
            Jalr => OperandSig::JalReg,
            Puti | Putc => OperandSig::SysR,
            Putf => OperandSig::SysF,
            Halt | Nop => OperandSig::SysNone,
        }
    }

    /// The memory access width for loads and stores, `None` otherwise.
    #[must_use]
    #[inline]
    pub fn mem_width(self) -> Option<MemWidth> {
        use Opcode::*;
        match self {
            Lb | Lbu | Sb => Some(MemWidth::B1),
            Lh | Lhu | Sh => Some(MemWidth::B2),
            Lw | Lwu | Sw => Some(MemWidth::B4),
            Ld | Sd | Fld | Fsd => Some(MemWidth::B8),
            _ => None,
        }
    }

    /// `true` for sign-extending loads (`lb`, `lh`, `lw`).
    #[must_use]
    pub fn load_sign_extends(self) -> bool {
        matches!(self, Opcode::Lb | Opcode::Lh | Opcode::Lw)
    }

    /// `true` for conditional branches.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// `true` for unconditional or indirect jumps.
    #[must_use]
    pub fn is_jump(self) -> bool {
        self.class() == OpClass::Jump
    }

    /// `true` for any instruction that can redirect the PC.
    #[must_use]
    pub fn is_control(self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// `true` for loads (including fp loads).
    #[must_use]
    #[inline]
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// `true` for stores (including fp stores).
    #[must_use]
    #[inline]
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// `true` if the instruction accesses memory.
    #[must_use]
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slti => "slti",
            Sltiu => "sltiu",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Li => "li",
            Mul => "mul",
            Mulh => "mulh",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
            FaddD => "fadd.d",
            FsubD => "fsub.d",
            FmulD => "fmul.d",
            FdivD => "fdiv.d",
            FsqrtD => "fsqrt.d",
            FminD => "fmin.d",
            FmaxD => "fmax.d",
            FabsD => "fabs.d",
            FnegD => "fneg.d",
            FmovD => "fmov.d",
            FcvtDL => "fcvt.d.l",
            FcvtLD => "fcvt.l.d",
            FeqD => "feq.d",
            FltD => "flt.d",
            FleD => "fle.d",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwu => "lwu",
            Ld => "ld",
            Fld => "fld",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Fsd => "fsd",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Halt => "halt",
            Nop => "nop",
            Puti => "puti",
            Putc => "putc",
            Putf => "putf",
        }
    }

    /// Looks an opcode up by its mnemonic.
    ///
    /// # Examples
    ///
    /// ```
    /// use redsim_isa::Opcode;
    ///
    /// assert_eq!(Opcode::from_mnemonic("fadd.d"), Some(Opcode::FaddD));
    /// assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    /// ```
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Opcode::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }

    /// All opcodes, in declaration order. The position of an opcode in
    /// this table is its stable binary encoding number.
    pub const ALL: [Opcode; 70] = {
        use Opcode::*;
        [
            Add, Sub, And, Or, Xor, Nor, Sll, Srl, Sra, Slt, Sltu, Addi, Andi, Ori, Xori, Slti,
            Sltiu, Slli, Srli, Srai, Li, Mul, Mulh, Div, Divu, Rem, Remu, FaddD, FsubD, FmulD,
            FdivD, FsqrtD, FminD, FmaxD, FabsD, FnegD, FmovD, FcvtDL, FcvtLD, FeqD, FltD, FleD, Lb,
            Lbu, Lh, Lhu, Lw, Lwu, Ld, Fld, Sb, Sh, Sw, Sd, Fsd, Beq, Bne, Blt, Bge, Bltu, Bgeu, J,
            Jal, Jr, Jalr, Halt, Nop, Puti, Putc, Putf,
        ]
    };
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate {}", op.mnemonic());
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn all_table_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op), "duplicate opcode {op:?}");
        }
    }

    #[test]
    fn mem_width_only_for_mem_ops() {
        for op in Opcode::ALL {
            assert_eq!(op.mem_width().is_some(), op.is_mem(), "{op}");
        }
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Beq.is_control());
        assert!(Opcode::Jal.is_control());
        assert!(!Opcode::Add.is_control());
        assert!(Opcode::Jr.is_jump());
        assert!(!Opcode::Jr.is_branch());
    }

    #[test]
    fn class_covers_expected_units() {
        assert_eq!(Opcode::Mul.class(), OpClass::IntMul);
        assert_eq!(Opcode::Div.class(), OpClass::IntDiv);
        assert_eq!(Opcode::FsqrtD.class(), OpClass::FpSqrt);
        assert_eq!(Opcode::Fld.class(), OpClass::Load);
        assert_eq!(Opcode::Fsd.class(), OpClass::Store);
        assert_eq!(Opcode::Halt.class(), OpClass::Sys);
    }

    #[test]
    fn load_sign_extension_flags() {
        assert!(Opcode::Lw.load_sign_extends());
        assert!(!Opcode::Lwu.load_sign_extends());
        assert!(!Opcode::Ld.load_sign_extends());
    }
}
