//! The static instruction representation.

use std::fmt;

use crate::op::{Opcode, OperandSig};
use crate::reg::{FpReg, IntReg};

/// A decoded static instruction.
///
/// The raw operand fields `rd`, `rs1`, `rs2` are register *indices*; how
/// they map onto the integer or floating-point files is dictated by the
/// opcode's [`OperandSig`]. Use the typed constructors and the
/// [`Inst::int_dest`]/[`Inst::fp_dest`]/[`Inst::int_sources`]/
/// [`Inst::fp_sources`] accessors rather than poking the raw fields.
///
/// # Examples
///
/// ```
/// use redsim_isa::{Inst, IntReg, Opcode};
///
/// let i = Inst::rrr(Opcode::Add, IntReg::new(3), IntReg::new(1), IntReg::new(2));
/// assert_eq!(i.int_dest(), Some(IntReg::new(3)));
/// assert_eq!(i.to_string(), "add gp, ra, sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register index (meaning depends on [`Opcode::sig`]).
    pub rd: u8,
    /// First source register index.
    pub rs1: u8,
    /// Second source register index.
    pub rs2: u8,
    /// Immediate operand (offset, shift amount, or literal).
    pub imm: i32,
}

impl Inst {
    /// A `nop`.
    pub const NOP: Inst = Inst {
        op: Opcode::Nop,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: 0,
    };

    fn raw(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: i32) -> Self {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    /// Builds a three-integer-register instruction (`add rd, rs1, rs2`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::Rrr`].
    #[must_use]
    pub fn rrr(op: Opcode, rd: IntReg, rs1: IntReg, rs2: IntReg) -> Self {
        assert_eq!(op.sig(), OperandSig::Rrr, "{op} is not an rrr instruction");
        Self::raw(
            op,
            rd.index() as u8,
            rs1.index() as u8,
            rs2.index() as u8,
            0,
        )
    }

    /// Builds a register-immediate instruction (`addi rd, rs1, imm`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::Rri`].
    #[must_use]
    pub fn rri(op: Opcode, rd: IntReg, rs1: IntReg, imm: i32) -> Self {
        assert_eq!(op.sig(), OperandSig::Rri, "{op} is not an rri instruction");
        Self::raw(op, rd.index() as u8, rs1.index() as u8, 0, imm)
    }

    /// Builds `li rd, imm`.
    #[must_use]
    pub fn li(rd: IntReg, imm: i32) -> Self {
        Self::raw(Opcode::Li, rd.index() as u8, 0, 0, imm)
    }

    /// Builds a three-fp-register instruction (`fadd.d fd, fs1, fs2`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::Fff`].
    #[must_use]
    pub fn fff(op: Opcode, fd: FpReg, fs1: FpReg, fs2: FpReg) -> Self {
        assert_eq!(op.sig(), OperandSig::Fff, "{op} is not an fff instruction");
        Self::raw(
            op,
            fd.index() as u8,
            fs1.index() as u8,
            fs2.index() as u8,
            0,
        )
    }

    /// Builds a two-fp-register instruction (`fsqrt.d fd, fs1`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::Ff`].
    #[must_use]
    pub fn ff(op: Opcode, fd: FpReg, fs1: FpReg) -> Self {
        assert_eq!(op.sig(), OperandSig::Ff, "{op} is not an ff instruction");
        Self::raw(op, fd.index() as u8, fs1.index() as u8, 0, 0)
    }

    /// Builds an fp compare writing an integer register (`feq.d rd, fs1, fs2`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::Rff`].
    #[must_use]
    pub fn rff(op: Opcode, rd: IntReg, fs1: FpReg, fs2: FpReg) -> Self {
        assert_eq!(op.sig(), OperandSig::Rff, "{op} is not an rff instruction");
        Self::raw(
            op,
            rd.index() as u8,
            fs1.index() as u8,
            fs2.index() as u8,
            0,
        )
    }

    /// Builds an int→fp convert (`fcvt.d.l fd, rs1`).
    #[must_use]
    pub fn cvt_int_to_fp(fd: FpReg, rs1: IntReg) -> Self {
        Self::raw(Opcode::FcvtDL, fd.index() as u8, rs1.index() as u8, 0, 0)
    }

    /// Builds an fp→int convert (`fcvt.l.d rd, fs1`).
    #[must_use]
    pub fn cvt_fp_to_int(rd: IntReg, fs1: FpReg) -> Self {
        Self::raw(Opcode::FcvtLD, rd.index() as u8, fs1.index() as u8, 0, 0)
    }

    /// Builds an integer load (`lw rd, imm(rs1)`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::MemLoadInt`].
    #[must_use]
    pub fn load_int(op: Opcode, rd: IntReg, base: IntReg, offset: i32) -> Self {
        assert_eq!(op.sig(), OperandSig::MemLoadInt, "{op} is not an int load");
        Self::raw(op, rd.index() as u8, base.index() as u8, 0, offset)
    }

    /// Builds an fp load (`fld fd, imm(rs1)`).
    #[must_use]
    pub fn load_fp(fd: FpReg, base: IntReg, offset: i32) -> Self {
        Self::raw(Opcode::Fld, fd.index() as u8, base.index() as u8, 0, offset)
    }

    /// Builds an integer store (`sw rs2, imm(rs1)`).
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::MemStoreInt`].
    #[must_use]
    pub fn store_int(op: Opcode, src: IntReg, base: IntReg, offset: i32) -> Self {
        assert_eq!(
            op.sig(),
            OperandSig::MemStoreInt,
            "{op} is not an int store"
        );
        Self::raw(op, 0, base.index() as u8, src.index() as u8, offset)
    }

    /// Builds an fp store (`fsd fs2, imm(rs1)`).
    #[must_use]
    pub fn store_fp(src: FpReg, base: IntReg, offset: i32) -> Self {
        Self::raw(
            Opcode::Fsd,
            0,
            base.index() as u8,
            src.index() as u8,
            offset,
        )
    }

    /// Builds a conditional branch with a PC-relative byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::Bcc`].
    #[must_use]
    pub fn branch(op: Opcode, rs1: IntReg, rs2: IntReg, offset: i32) -> Self {
        assert_eq!(op.sig(), OperandSig::Bcc, "{op} is not a branch");
        Self::raw(op, 0, rs1.index() as u8, rs2.index() as u8, offset)
    }

    /// Builds `j offset` (PC-relative).
    #[must_use]
    pub fn j(offset: i32) -> Self {
        Self::raw(Opcode::J, 0, 0, 0, offset)
    }

    /// Builds `jal rd, offset` (PC-relative).
    #[must_use]
    pub fn jal(rd: IntReg, offset: i32) -> Self {
        Self::raw(Opcode::Jal, rd.index() as u8, 0, 0, offset)
    }

    /// Builds `jr rs1, imm` (indirect jump to `rs1 + imm`).
    #[must_use]
    pub fn jr(rs1: IntReg, imm: i32) -> Self {
        Self::raw(Opcode::Jr, 0, rs1.index() as u8, 0, imm)
    }

    /// Builds `jalr rd, rs1, imm`.
    #[must_use]
    pub fn jalr(rd: IntReg, rs1: IntReg, imm: i32) -> Self {
        Self::raw(Opcode::Jalr, rd.index() as u8, rs1.index() as u8, 0, imm)
    }

    /// Builds a system instruction reading one integer register.
    ///
    /// # Panics
    ///
    /// Panics if the opcode's signature is not [`OperandSig::SysR`].
    #[must_use]
    pub fn sys_r(op: Opcode, rs1: IntReg) -> Self {
        assert_eq!(op.sig(), OperandSig::SysR, "{op} does not read an int reg");
        Self::raw(op, 0, rs1.index() as u8, 0, 0)
    }

    /// Builds `putf fs1`.
    #[must_use]
    pub fn putf(fs1: FpReg) -> Self {
        Self::raw(Opcode::Putf, 0, fs1.index() as u8, 0, 0)
    }

    /// Builds `halt`.
    #[must_use]
    pub fn halt() -> Self {
        Self::raw(Opcode::Halt, 0, 0, 0, 0)
    }

    /// The integer destination register, if the instruction writes one.
    #[must_use]
    pub fn int_dest(&self) -> Option<IntReg> {
        use OperandSig::*;
        match self.op.sig() {
            Rrr | Rri | Ri | Rff | Rf | MemLoadInt | JalImm | JalReg => Some(IntReg::new(self.rd)),
            _ => None,
        }
    }

    /// The fp destination register, if the instruction writes one.
    #[must_use]
    pub fn fp_dest(&self) -> Option<FpReg> {
        use OperandSig::*;
        match self.op.sig() {
            Fff | Ff | Fr | MemLoadFp => Some(FpReg::new(self.rd)),
            _ => None,
        }
    }

    /// The integer source registers, in operand order.
    ///
    /// Returned inline ([`SrcRegs`]) rather than heap-allocated: this
    /// accessor runs on the simulator's per-instruction hot paths
    /// (dependence linking, IRB operand naming).
    #[must_use]
    #[inline]
    pub fn int_sources(&self) -> SrcRegs<IntReg> {
        use OperandSig::*;
        let r1 = IntReg::new(self.rs1);
        let r2 = IntReg::new(self.rs2);
        match self.op.sig() {
            Rrr | MemStoreInt | Bcc => SrcRegs::two(r1, r2),
            Rri | Fr | MemLoadInt | MemLoadFp | MemStoreFp | JReg | JalReg | SysR => {
                SrcRegs::one(r1)
            }
            Ri | JImm | JalImm | SysNone | Fff | Ff | Rff | Rf | SysF => SrcRegs::none(r1),
        }
    }

    /// The fp source registers, in operand order.
    ///
    /// Returned inline ([`SrcRegs`]); see [`Inst::int_sources`].
    #[must_use]
    #[inline]
    pub fn fp_sources(&self) -> SrcRegs<FpReg> {
        use OperandSig::*;
        let f1 = FpReg::new(self.rs1);
        let f2 = FpReg::new(self.rs2);
        match self.op.sig() {
            Fff | Rff => SrcRegs::two(f1, f2),
            Ff | Rf | SysF => SrcRegs::one(f1),
            MemStoreFp => SrcRegs::one(f2),
            _ => SrcRegs::none(f1),
        }
    }

    /// `true` if the instruction writes any architectural register.
    #[must_use]
    pub fn has_dest(&self) -> bool {
        self.int_dest().is_some() || self.fp_dest().is_some()
    }
}

impl Default for Inst {
    fn default() -> Self {
        Inst::NOP
    }
}

/// Up to two source registers, in operand order, held inline.
///
/// The source-register accessors run per dynamic instruction on the
/// simulator's dispatch and IRB paths; a `Vec` return would make every
/// call a heap allocation. Unused slots carry a filler register the
/// length field hides.
///
/// # Examples
///
/// ```
/// use redsim_isa::{Inst, IntReg, Opcode};
///
/// let s = Inst::store_int(Opcode::Sd, IntReg::new(7), IntReg::new(2), 16);
/// assert_eq!(s.int_sources().as_slice(), &[IntReg::new(2), IntReg::new(7)]);
/// for r in s.int_sources() {
///     assert!(!r.is_zero() || r.index() == 0);
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SrcRegs<R> {
    regs: [R; 2],
    len: u8,
}

impl<R: Copy> SrcRegs<R> {
    fn none(fill: R) -> Self {
        SrcRegs {
            regs: [fill; 2],
            len: 0,
        }
    }

    fn one(a: R) -> Self {
        SrcRegs {
            regs: [a; 2],
            len: 1,
        }
    }

    fn two(a: R, b: R) -> Self {
        SrcRegs {
            regs: [a, b],
            len: 2,
        }
    }

    /// The registers as a slice, in operand order.
    #[must_use]
    pub fn as_slice(&self) -> &[R] {
        &self.regs[..usize::from(self.len)]
    }

    /// Number of source registers (0–2).
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// `true` if the instruction reads no register of this file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the registers by value.
    pub fn iter(&self) -> impl Iterator<Item = R> + '_ {
        self.as_slice().iter().copied()
    }
}

impl<R: Copy> IntoIterator for SrcRegs<R> {
    type Item = R;
    type IntoIter = std::iter::Take<std::array::IntoIter<R, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().take(usize::from(self.len))
    }
}

impl<R: Copy + PartialEq> PartialEq for SrcRegs<R> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<R: Copy + Eq> Eq for SrcRegs<R> {}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use OperandSig::*;
        let m = self.op.mnemonic();
        let (rd, rs1, rs2) = (self.rd, self.rs1, self.rs2);
        let ir = |i: u8| IntReg::new(i).to_string();
        let fr = |i: u8| FpReg::new(i).to_string();
        match self.op.sig() {
            Rrr => write!(f, "{m} {}, {}, {}", ir(rd), ir(rs1), ir(rs2)),
            Rri => write!(f, "{m} {}, {}, {}", ir(rd), ir(rs1), self.imm),
            Ri => write!(f, "{m} {}, {}", ir(rd), self.imm),
            Fff => write!(f, "{m} {}, {}, {}", fr(rd), fr(rs1), fr(rs2)),
            Ff => write!(f, "{m} {}, {}", fr(rd), fr(rs1)),
            Rff => write!(f, "{m} {}, {}, {}", ir(rd), fr(rs1), fr(rs2)),
            Fr => write!(f, "{m} {}, {}", fr(rd), ir(rs1)),
            Rf => write!(f, "{m} {}, {}", ir(rd), fr(rs1)),
            MemLoadInt => write!(f, "{m} {}, {}({})", ir(rd), self.imm, ir(rs1)),
            MemLoadFp => write!(f, "{m} {}, {}({})", fr(rd), self.imm, ir(rs1)),
            MemStoreInt => write!(f, "{m} {}, {}({})", ir(rs2), self.imm, ir(rs1)),
            MemStoreFp => write!(f, "{m} {}, {}({})", fr(rs2), self.imm, ir(rs1)),
            Bcc => write!(f, "{m} {}, {}, {}", ir(rs1), ir(rs2), self.imm),
            JImm => write!(f, "{m} {}", self.imm),
            JalImm => write!(f, "{m} {}, {}", ir(rd), self.imm),
            JReg => write!(f, "{m} {}, {}", ir(rs1), self.imm),
            JalReg => write!(f, "{m} {}, {}, {}", ir(rd), ir(rs1), self.imm),
            SysR => write!(f, "{m} {}", ir(rs1)),
            SysF => write!(f, "{m} {}", fr(rs1)),
            SysNone => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let i = Inst::rri(Opcode::Addi, IntReg::new(5), IntReg::new(6), -42);
        assert_eq!(i.int_dest(), Some(IntReg::new(5)));
        assert_eq!(i.int_sources().as_slice(), &[IntReg::new(6)]);
        assert_eq!(i.imm, -42);
    }

    #[test]
    fn store_sources_include_data_register() {
        let s = Inst::store_int(Opcode::Sd, IntReg::new(7), IntReg::new(2), 16);
        assert_eq!(s.int_dest(), None);
        assert_eq!(
            s.int_sources().as_slice(),
            &[IntReg::new(2), IntReg::new(7)]
        );
    }

    #[test]
    fn fp_store_reads_fp_data() {
        let s = Inst::store_fp(FpReg::new(4), IntReg::new(2), 8);
        assert_eq!(s.fp_sources().as_slice(), &[FpReg::new(4)]);
        assert_eq!(s.int_sources().as_slice(), &[IntReg::new(2)]);
        assert!(!s.has_dest());
    }

    #[test]
    fn fp_compare_writes_int_reg() {
        let c = Inst::rff(Opcode::FltD, IntReg::new(9), FpReg::new(1), FpReg::new(2));
        assert_eq!(c.int_dest(), Some(IntReg::new(9)));
        assert_eq!(c.fp_sources().len(), 2);
    }

    #[test]
    fn jal_writes_link_register() {
        let j = Inst::jal(IntReg::RA, 64);
        assert_eq!(j.int_dest(), Some(IntReg::RA));
        assert!(j.int_sources().is_empty());
    }

    #[test]
    #[should_panic(expected = "not an rrr")]
    fn wrong_signature_panics() {
        let _ = Inst::rrr(Opcode::Addi, IntReg::ZERO, IntReg::ZERO, IntReg::ZERO);
    }

    #[test]
    fn display_formats_mem_operands() {
        let l = Inst::load_int(Opcode::Lw, IntReg::new(10), IntReg::SP, 24);
        assert_eq!(l.to_string(), "lw a0, 24(sp)");
        let s = Inst::store_fp(FpReg::new(2), IntReg::new(11), -8);
        assert_eq!(s.to_string(), "fsd f2, -8(a1)");
    }

    #[test]
    fn nop_is_default_and_has_no_operands() {
        let n = Inst::default();
        assert_eq!(n.op, Opcode::Nop);
        assert!(!n.has_dest());
        assert!(n.int_sources().is_empty());
    }
}
