//! Binary serialization of committed-path traces, so expensive
//! functional runs can be captured once and replayed across many
//! machine configurations (or machines).
//!
//! Layout: `"RTRC"` magic, `u16` version, `u64` record count, then one
//! fixed-width 74-byte record per instruction:
//!
//! ```text
//! seq u64 | pc u64 | inst u64 (encoded) | src1 u64 | src2 u64
//! | flags u8 (bit0 result, bit1 ea, bit2 control, bit3 taken)
//! | result u64 | ea u64 | target u64 | next_pc u64
//! ```
//!
//! Optional fields are always present in the record (zero when absent);
//! the flags byte says which are meaningful.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::encode;
use crate::trace::{ControlOutcome, DynInst};

const MAGIC: &[u8; 4] = b"RTRC";
const VERSION: u16 = 1;

/// An error produced while reading a trace stream.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// An instruction word failed to decode.
    Decode(crate::DecodeError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => write!(f, "not a redsim trace (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Decode(e) => write!(f, "bad instruction in trace: {e}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<crate::DecodeError> for TraceIoError {
    fn from(e: crate::DecodeError) -> Self {
        TraceIoError::Decode(e)
    }
}

/// Writes a trace to `w`.
///
/// A `&mut` reference can be passed for any `W: Write`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &[DynInst]) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for d in trace {
        w.write_all(&d.seq.to_le_bytes())?;
        w.write_all(&d.pc.to_le_bytes())?;
        w.write_all(&encode::encode(&d.inst).to_le_bytes())?;
        w.write_all(&d.src1.to_le_bytes())?;
        w.write_all(&d.src2.to_le_bytes())?;
        let mut flags = 0u8;
        if d.result.is_some() {
            flags |= 1;
        }
        if d.ea.is_some() {
            flags |= 2;
        }
        if let Some(c) = d.control {
            flags |= 4;
            if c.taken {
                flags |= 8;
            }
        }
        w.write_all(&[flags])?;
        w.write_all(&d.result.unwrap_or(0).to_le_bytes())?;
        w.write_all(&d.ea.unwrap_or(0).to_le_bytes())?;
        w.write_all(&d.control.map_or(0, |c| c.target).to_le_bytes())?;
        w.write_all(&d.next_pc.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a trace from `r`.
///
/// A `&mut` reference can be passed for any `R: Read`.
///
/// # Errors
///
/// Fails on I/O errors, bad magic/version, or undecodable instruction
/// words.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<DynInst>, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut vbuf = [0u8; 2];
    r.read_exact(&mut vbuf)?;
    let version = u16::from_le_bytes(vbuf);
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let count = read_u64(&mut r)?;
    let mut out = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    for _ in 0..count {
        let seq = read_u64(&mut r)?;
        let pc = read_u64(&mut r)?;
        let inst = encode::decode(read_u64(&mut r)?)?;
        let src1 = read_u64(&mut r)?;
        let src2 = read_u64(&mut r)?;
        let mut fb = [0u8; 1];
        r.read_exact(&mut fb)?;
        let flags = fb[0];
        let result_raw = read_u64(&mut r)?;
        let ea_raw = read_u64(&mut r)?;
        let target = read_u64(&mut r)?;
        let next_pc = read_u64(&mut r)?;
        out.push(DynInst {
            seq,
            pc,
            inst,
            src1,
            src2,
            result: (flags & 1 != 0).then_some(result_raw),
            ea: (flags & 2 != 0).then_some(ea_raw),
            control: (flags & 4 != 0).then_some(ControlOutcome {
                taken: flags & 8 != 0,
                target,
            }),
            next_pc,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::emu::Emulator;

    fn sample_trace() -> Vec<DynInst> {
        let p = assemble(
            r#"
                .data
            x: .word 5
                .text
            main:
                la t0, x
                ld a0, 0(t0)
            loop:
                addi a0, a0, -1
                bnez a0, loop
                sd a0, 0(t0)
                halt
            "#,
        )
        .unwrap();
        Emulator::new(&p).run_trace(1000).unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let r = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..]);
        assert!(matches!(r, Err(TraceIoError::BadMagic)));
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        for cut in [5, 14, 20, buf.len() - 1] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn replay_through_simulator_matches_direct_run() {
        // The serialized trace must drive the timing model identically.
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.last().unwrap().inst.op, crate::Opcode::Halt);
    }
}
