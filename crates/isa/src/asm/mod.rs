//! Two-pass assembler for redsim assembly source.
//!
//! # Syntax
//!
//! * Comments run from `#` or `;` to end of line.
//! * A label is `name:`, optionally followed by a statement on the same
//!   line.
//! * Directives: `.text`, `.data`, `.word w…` (64-bit), `.byte b…`,
//!   `.double d…`, `.space n`, `.align n`, `.asciiz "s"`.
//! * Instruction operands are comma-separated; memory operands are
//!   written `offset(base)`, e.g. `lw a0, 8(sp)`.
//! * Integer registers accept both `rN` and ABI names; fp registers are
//!   `fN`.
//! * Branch and jump targets may be labels or absolute addresses; the
//!   assembler converts them to PC-relative offsets where the encoding
//!   requires it.
//!
//! # Pseudo-instructions
//!
//! `mv`, `neg`, `not`, `la`, `b`, `beqz`, `bnez`, `bltz`, `bgez`, `bgtz`,
//! `blez`, `ble`, `bgt`, `call`, `ret`, `jal label` (link register
//! implied), and `fmv.d` are accepted and expand to exactly one real
//! instruction each.
//!
//! # Examples
//!
//! ```
//! use redsim_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(
//!     r#"
//!         .data
//!     vec: .word 1, 2, 3, 4
//!         .text
//!     main:
//!         la   t0, vec
//!         ld   a0, 8(t0)
//!         halt
//!     "#,
//! )?;
//! assert_eq!(p.symbol("vec"), Some(p.data_base()));
//! # Ok(())
//! # }
//! ```

mod operands;

use std::collections::BTreeMap;

use crate::encode::INST_BYTES;
use crate::error::AsmError;
use crate::inst::Inst;
use crate::program::{program_from_parts, Program, DATA_BASE, TEXT_BASE};

use operands::{parse_statement, split_statement, Cursor};

/// Assembles source text into a linked [`Program`].
///
/// The entry point is the `main` label if defined, otherwise the first
/// text address.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending source line for unknown
/// mnemonics, malformed operands, duplicate or undefined labels, and
/// out-of-range immediates.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let lines = preprocess(source);

    // Pass 1: assign addresses to labels.
    let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
    let mut text_len: u64 = 0;
    let mut data_len: u64 = 0;
    let mut seg = Segment::Text;
    for line in &lines {
        for label in &line.labels {
            let addr = match seg {
                Segment::Text => TEXT_BASE + text_len * INST_BYTES,
                Segment::Data => DATA_BASE + data_len,
            };
            if symbols.insert(label.clone(), addr).is_some() {
                return Err(AsmError::new(
                    line.num,
                    format!("duplicate label `{label}`"),
                ));
            }
        }
        if let Some(stmt) = &line.stmt {
            match classify(stmt) {
                Stmt::Directive(d) => {
                    apply_directive_size(d, stmt, line.num, &mut seg, &mut data_len)?;
                }
                Stmt::Instruction => {
                    if seg != Segment::Text {
                        return Err(AsmError::new(
                            line.num,
                            "instruction outside the .text segment",
                        ));
                    }
                    text_len += 1;
                }
            }
        }
    }

    // Pass 2: emit.
    let mut text: Vec<Inst> = Vec::with_capacity(text_len as usize);
    let mut data: Vec<u8> = Vec::with_capacity(data_len as usize);
    seg = Segment::Text;
    for line in &lines {
        let Some(stmt) = &line.stmt else { continue };
        match classify(stmt) {
            Stmt::Directive(d) => {
                emit_directive(d, stmt, line.num, &mut seg, &mut data, &symbols)?;
            }
            Stmt::Instruction => {
                let pc = TEXT_BASE + text.len() as u64 * INST_BYTES;
                let (mnemonic, rest) = split_statement(stmt);
                let mut cur = Cursor::new(rest, line.num, &symbols);
                let inst = parse_statement(mnemonic, &mut cur, pc)?;
                cur.expect_end()?;
                text.push(inst);
            }
        }
    }

    let entry = symbols.get("main").copied().unwrap_or(TEXT_BASE);
    Ok(program_from_parts(text, data, symbols, entry))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

#[derive(Debug)]
struct Line {
    num: u32,
    labels: Vec<String>,
    stmt: Option<String>,
}

enum Stmt<'a> {
    Directive(&'a str),
    Instruction,
}

fn classify(stmt: &str) -> Stmt<'_> {
    if stmt.starts_with('.') {
        let end = stmt.find(char::is_whitespace).unwrap_or(stmt.len());
        Stmt::Directive(&stmt[..end])
    } else {
        Stmt::Instruction
    }
}

/// Strips comments, splits out labels, and keeps non-empty statements.
fn preprocess(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let num = i as u32 + 1;
        let mut text = raw;
        // Strings may contain '#'/';'; cut comments only outside quotes.
        let mut in_str = false;
        for (pos, ch) in raw.char_indices() {
            match ch {
                '"' => in_str = !in_str,
                '#' | ';' if !in_str => {
                    text = &raw[..pos];
                    break;
                }
                _ => {}
            }
        }
        let mut rest = text.trim();
        let mut labels = Vec::new();
        while let Some(colon) = rest.find(':') {
            let candidate = rest[..colon].trim();
            if candidate.is_empty()
                || !candidate
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                || candidate.starts_with('.')
                || candidate.starts_with(|c: char| c.is_ascii_digit())
            {
                break;
            }
            labels.push(candidate.to_owned());
            rest = rest[colon + 1..].trim_start();
        }
        let stmt = (!rest.is_empty()).then(|| rest.to_owned());
        if !labels.is_empty() || stmt.is_some() {
            out.push(Line { num, labels, stmt });
        }
    }
    out
}

fn directive_args(stmt: &str, d: &str) -> String {
    stmt[d.len()..].trim().to_owned()
}

/// Pass-1 sizing for data directives.
fn apply_directive_size(
    d: &str,
    stmt: &str,
    num: u32,
    seg: &mut Segment,
    data_len: &mut u64,
) -> Result<(), AsmError> {
    let args = directive_args(stmt, d);
    match d {
        ".text" => *seg = Segment::Text,
        ".data" => *seg = Segment::Data,
        _ if *seg != Segment::Data => {
            return Err(AsmError::new(num, format!("{d} outside the .data segment")));
        }
        ".word" | ".double" => {
            let n = args.split(',').filter(|s| !s.trim().is_empty()).count() as u64;
            *data_len += 8 * n;
        }
        ".byte" => {
            let n = args.split(',').filter(|s| !s.trim().is_empty()).count() as u64;
            *data_len += n;
        }
        ".space" => {
            let n: u64 = args
                .parse()
                .map_err(|_| AsmError::new(num, format!("bad .space size `{args}`")))?;
            *data_len += n;
        }
        ".align" => {
            let a: u64 = args
                .parse()
                .map_err(|_| AsmError::new(num, format!("bad .align amount `{args}`")))?;
            if a == 0 || !a.is_power_of_two() {
                return Err(AsmError::new(num, ".align requires a power of two"));
            }
            *data_len = (*data_len).div_ceil(a) * a;
        }
        ".asciiz" => {
            let s = parse_string_literal(&args, num)?;
            *data_len += s.len() as u64 + 1;
        }
        _ => return Err(AsmError::new(num, format!("unknown directive `{d}`"))),
    }
    Ok(())
}

/// Pass-2 emission for data directives.
fn emit_directive(
    d: &str,
    stmt: &str,
    num: u32,
    seg: &mut Segment,
    data: &mut Vec<u8>,
    symbols: &BTreeMap<String, u64>,
) -> Result<(), AsmError> {
    let args = directive_args(stmt, d);
    match d {
        ".text" => *seg = Segment::Text,
        ".data" => *seg = Segment::Data,
        ".word" => {
            for item in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let v = if let Some(&addr) = symbols.get(item) {
                    addr as i64
                } else {
                    operands::parse_int(item)
                        .ok_or_else(|| AsmError::new(num, format!("bad word `{item}`")))?
                };
                data.extend_from_slice(&v.to_le_bytes());
            }
        }
        ".double" => {
            for item in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let v: f64 = item
                    .parse()
                    .map_err(|_| AsmError::new(num, format!("bad double `{item}`")))?;
                data.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        ".byte" => {
            for item in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let v = operands::parse_int(item)
                    .ok_or_else(|| AsmError::new(num, format!("bad byte `{item}`")))?;
                if !(-128..=255).contains(&v) {
                    return Err(AsmError::new(num, format!("byte `{item}` out of range")));
                }
                data.push(v as u8);
            }
        }
        ".space" => {
            let n: usize = args
                .parse()
                .map_err(|_| AsmError::new(num, format!("bad .space size `{args}`")))?;
            data.resize(data.len() + n, 0);
        }
        ".align" => {
            let a: usize = args
                .parse()
                .map_err(|_| AsmError::new(num, format!("bad .align amount `{args}`")))?;
            let target = data.len().div_ceil(a) * a;
            data.resize(target, 0);
        }
        ".asciiz" => {
            let s = parse_string_literal(&args, num)?;
            data.extend_from_slice(s.as_bytes());
            data.push(0);
        }
        _ => return Err(AsmError::new(num, format!("unknown directive `{d}`"))),
    }
    Ok(())
}

fn parse_string_literal(args: &str, num: u32) -> Result<String, AsmError> {
    let inner = args
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(num, "expected a quoted string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => {
                    return Err(AsmError::new(
                        num,
                        format!("unknown escape `\\{}`", other.unwrap_or(' ')),
                    ))
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests;
