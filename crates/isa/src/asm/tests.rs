use super::*;
use crate::op::Opcode;
use crate::program::{DATA_BASE, TEXT_BASE};
use crate::reg::{FpReg, IntReg};

fn ok(src: &str) -> Program {
    assemble(src).expect("assembly should succeed")
}

fn err(src: &str) -> AsmError {
    assemble(src).expect_err("assembly should fail")
}

#[test]
fn empty_source_builds_empty_program() {
    let p = ok("");
    assert!(p.text().is_empty());
    assert!(p.data().is_empty());
}

#[test]
fn labels_resolve_in_both_segments() {
    let p = ok(r#"
        .data
    x:  .word 7
    y:  .word 8
        .text
    main:
        la t0, x
        ld a0, 0(t0)
        halt
    "#);
    assert_eq!(p.symbol("x"), Some(DATA_BASE));
    assert_eq!(p.symbol("y"), Some(DATA_BASE + 8));
    assert_eq!(p.symbol("main"), Some(TEXT_BASE));
    assert_eq!(p.entry(), TEXT_BASE);
    assert_eq!(&p.data()[..8], &7u64.to_le_bytes());
}

#[test]
fn forward_references_work() {
    let p = ok(r#"
        .text
        j end
        nop
    end:
        halt
    "#);
    // `j end` at TEXT_BASE must skip 2 instructions = +16 bytes.
    assert_eq!(p.text()[0].op, Opcode::J);
    assert_eq!(p.text()[0].imm, 16);
}

#[test]
fn branch_offsets_are_pc_relative() {
    let p = ok(r#"
    loop:
        addi t0, t0, -1
        bne t0, zero, loop
        halt
    "#);
    let bne = p.text()[1];
    assert_eq!(bne.op, Opcode::Bne);
    assert_eq!(bne.imm, -8);
}

#[test]
fn pseudo_instructions_expand() {
    let p = ok(r#"
        mv a0, a1
        neg a2, a3
        not a4, a5
        ret
        fmv.d f1, f2
    "#);
    assert_eq!(p.text()[0].op, Opcode::Addi);
    assert_eq!(p.text()[1].op, Opcode::Sub);
    assert_eq!(p.text()[1].rs1, 0);
    assert_eq!(p.text()[2].op, Opcode::Nor);
    assert_eq!(p.text()[3].op, Opcode::Jr);
    assert_eq!(p.text()[3].rs1, IntReg::RA.index() as u8);
    assert_eq!(p.text()[4].op, Opcode::FmovD);
}

#[test]
fn conditional_pseudo_branches_swap_operands() {
    let p = ok(r#"
    t:  ble a0, a1, t
        bgt a2, a3, t
        beqz a4, t
        bgtz a5, t
    "#);
    // ble a, b -> bge b, a
    assert_eq!(p.text()[0].op, Opcode::Bge);
    assert_eq!(p.text()[0].rs1, 11);
    assert_eq!(p.text()[0].rs2, 10);
    // bgt a, b -> blt b, a
    assert_eq!(p.text()[1].op, Opcode::Blt);
    assert_eq!(p.text()[1].rs1, 13);
    assert_eq!(p.text()[1].rs2, 12);
    assert_eq!(p.text()[2].op, Opcode::Beq);
    assert_eq!(p.text()[2].rs2, 0);
    // bgtz r -> blt zero, r
    assert_eq!(p.text()[3].op, Opcode::Blt);
    assert_eq!(p.text()[3].rs1, 0);
    assert_eq!(p.text()[3].rs2, 15);
}

#[test]
fn call_links_ra() {
    let p = ok(r#"
    main:
        call f
        halt
    f:  ret
    "#);
    let call = p.text()[0];
    assert_eq!(call.op, Opcode::Jal);
    assert_eq!(call.rd, IntReg::RA.index() as u8);
    assert_eq!(call.imm, 16);
}

#[test]
fn memory_operand_forms() {
    let p = ok(r#"
        lw a0, 8(sp)
        lw a1, (sp)
        sd a2, -16(s0)
        fld f0, 0(a3)
        fsd f1, 24(a4)
    "#);
    assert_eq!(p.text()[0].imm, 8);
    assert_eq!(p.text()[1].imm, 0);
    assert_eq!(p.text()[2].imm, -16);
    assert_eq!(p.text()[3].op, Opcode::Fld);
    assert_eq!(p.text()[4].op, Opcode::Fsd);
    assert_eq!(p.text()[4].rs2, 1);
}

#[test]
fn data_directives_lay_out_bytes() {
    let p = ok(r#"
        .data
    a:  .byte 1, 2, 0xff
        .align 8
    b:  .word -1
    c:  .double 1.5
    s:  .asciiz "hi\n"
        .space 4
    "#);
    assert_eq!(p.symbol("a"), Some(DATA_BASE));
    assert_eq!(p.symbol("b"), Some(DATA_BASE + 8));
    assert_eq!(p.symbol("c"), Some(DATA_BASE + 16));
    assert_eq!(p.symbol("s"), Some(DATA_BASE + 24));
    assert_eq!(p.data().len(), 32);
    assert_eq!(p.data()[2], 0xff);
    assert_eq!(&p.data()[8..16], &(-1i64).to_le_bytes());
    assert_eq!(&p.data()[16..24], &1.5f64.to_bits().to_le_bytes());
    assert_eq!(&p.data()[24..28], b"hi\n\0");
}

#[test]
fn word_directive_accepts_labels() {
    let p = ok(r#"
        .data
    ptr: .word target
    target: .word 99
    "#);
    assert_eq!(
        &p.data()[..8],
        &(DATA_BASE + 8).to_le_bytes(),
        "pointer should hold target's address"
    );
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let p = ok(r#"
        # full line comment
        li a0, 1   # trailing comment
        ; semicolon comment
        halt
    "#);
    assert_eq!(p.text().len(), 2);
}

#[test]
fn hex_and_char_immediates() {
    let p = ok(r#"
        li a0, 0x10
        li a1, -0x10
        li a2, 'A'
    "#);
    assert_eq!(p.text()[0].imm, 16);
    assert_eq!(p.text()[1].imm, -16);
    assert_eq!(p.text()[2].imm, 65);
}

#[test]
fn duplicate_label_is_an_error() {
    let e = err("x: nop\nx: nop\n");
    assert!(e.message().contains("duplicate"));
    assert_eq!(e.line(), 2);
}

#[test]
fn unknown_mnemonic_is_an_error() {
    let e = err("frobnicate a0, a1\n");
    assert!(e.message().contains("unknown mnemonic"));
}

#[test]
fn unknown_target_is_an_error() {
    let e = err("j nowhere\n");
    assert!(e.message().contains("unknown target"));
}

#[test]
fn wrong_register_file_is_an_error() {
    let e = err("add a0, f1, a2\n");
    assert!(e.message().contains("not an integer register"));
    let e = err("fadd.d f0, a1, f2\n");
    assert!(e.message().contains("not an fp register"));
}

#[test]
fn extra_operand_is_an_error() {
    let e = err("nop a0\n");
    assert!(e.message().contains("unexpected extra operand"));
}

#[test]
fn missing_operand_is_an_error() {
    let e = err("add a0, a1\n");
    assert!(e.message().contains("missing"));
}

#[test]
fn instruction_in_data_segment_is_an_error() {
    let e = err(".data\nadd a0, a1, a2\n");
    assert!(e.message().contains("outside the .text"));
}

#[test]
fn multiple_labels_on_one_address() {
    let p = ok("a: b: c: halt\n");
    assert_eq!(p.symbol("a"), p.symbol("b"));
    assert_eq!(p.symbol("b"), p.symbol("c"));
}

#[test]
fn jal_with_implied_link_register() {
    let p = ok("main: jal main\n");
    assert_eq!(p.text()[0].rd, IntReg::RA.index() as u8);
    assert_eq!(p.text()[0].imm, 0);
}

#[test]
fn entry_defaults_to_main_when_not_first() {
    let p = ok(r#"
    helper:
        ret
    main:
        halt
    "#);
    assert_eq!(p.entry(), p.symbol("main").unwrap());
    assert_ne!(p.entry(), TEXT_BASE);
}

#[test]
fn fp_register_operands_parse() {
    let p = ok(r#"
        fadd.d f1, f2, f3
        fsqrt.d f4, f5
        feq.d a0, f1, f2
        fcvt.d.l f0, a1
        fcvt.l.d a2, f0
        putf f1
    "#);
    assert_eq!(p.text()[0].op, Opcode::FaddD);
    assert_eq!(p.text()[2].int_dest(), Some(IntReg::new(10)));
    assert_eq!(p.text()[3].fp_dest(), Some(FpReg::new(0)));
    assert_eq!(p.text()[4].int_dest(), Some(IntReg::new(12)));
    assert_eq!(p.text()[5].op, Opcode::Putf);
}

#[test]
fn align_requires_power_of_two() {
    let e = err(".data\n.align 3\n");
    assert!(e.message().contains("power of two"));
}

#[test]
fn asciiz_with_hash_inside_string() {
    let p = ok(".data\ns: .asciiz \"a#b\"\n");
    assert_eq!(&p.data()[..4], b"a#b\0");
}
