//! Operand parsing for the assembler.

use std::collections::BTreeMap;

use crate::error::AsmError;
use crate::inst::Inst;
use crate::op::{Opcode, OperandSig};
use crate::reg::{FpReg, IntReg};

/// Splits a statement into mnemonic and operand text.
pub(super) fn split_statement(stmt: &str) -> (&str, &str) {
    match stmt.find(char::is_whitespace) {
        Some(i) => (&stmt[..i], stmt[i..].trim_start()),
        None => (stmt, ""),
    }
}

/// A comma-separated operand cursor with label resolution.
pub(super) struct Cursor<'a> {
    items: Vec<&'a str>,
    next: usize,
    line: u32,
    symbols: &'a BTreeMap<String, u64>,
}

impl<'a> Cursor<'a> {
    pub(super) fn new(rest: &'a str, line: u32, symbols: &'a BTreeMap<String, u64>) -> Self {
        let items = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        Cursor {
            items,
            next: 0,
            line,
            symbols,
        }
    }

    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn take(&mut self, what: &str) -> Result<&'a str, AsmError> {
        let item = self
            .items
            .get(self.next)
            .ok_or_else(|| self.err(format!("missing {what} operand")))?;
        self.next += 1;
        Ok(item)
    }

    fn peek(&self) -> Option<&'a str> {
        self.items.get(self.next).copied()
    }

    pub(super) fn expect_end(&self) -> Result<(), AsmError> {
        if self.next < self.items.len() {
            return Err(self.err(format!(
                "unexpected extra operand `{}`",
                self.items[self.next]
            )));
        }
        Ok(())
    }

    fn int_reg(&mut self) -> Result<IntReg, AsmError> {
        let item = self.take("integer register")?;
        IntReg::from_name(item)
            .ok_or_else(|| self.err(format!("`{item}` is not an integer register")))
    }

    fn fp_reg(&mut self) -> Result<FpReg, AsmError> {
        let item = self.take("fp register")?;
        FpReg::from_name(item).ok_or_else(|| self.err(format!("`{item}` is not an fp register")))
    }

    fn imm32(&mut self) -> Result<i32, AsmError> {
        let item = self.take("immediate")?;
        self.resolve_imm(item)
    }

    fn resolve_imm(&self, item: &str) -> Result<i32, AsmError> {
        let v = if let Some(&addr) = self.symbols.get(item) {
            addr as i64
        } else {
            parse_int(item).ok_or_else(|| self.err(format!("bad immediate `{item}`")))?
        };
        i32::try_from(v).map_err(|_| self.err(format!("immediate `{item}` out of 32-bit range")))
    }

    /// Parses `offset(base)`, `(base)`, `label`, or a bare offset with an
    /// implied zero base.
    fn mem_operand(&mut self) -> Result<(IntReg, i32), AsmError> {
        let item = self.take("memory operand")?;
        if let Some(open) = item.find('(') {
            let close = item
                .rfind(')')
                .ok_or_else(|| self.err(format!("unbalanced parentheses in `{item}`")))?;
            let base_name = item[open + 1..close].trim();
            let base = IntReg::from_name(base_name)
                .ok_or_else(|| self.err(format!("`{base_name}` is not an integer register")))?;
            let off_text = item[..open].trim();
            let offset = if off_text.is_empty() {
                0
            } else {
                self.resolve_imm(off_text)?
            };
            Ok((base, offset))
        } else {
            Ok((IntReg::ZERO, self.resolve_imm(item)?))
        }
    }

    /// Resolves a branch/jump target into a PC-relative byte offset.
    fn pc_rel_target(&mut self, pc: u64) -> Result<i32, AsmError> {
        let item = self.take("branch target")?;
        let abs = if let Some(&addr) = self.symbols.get(item) {
            addr as i64
        } else {
            parse_int(item).ok_or_else(|| self.err(format!("unknown target `{item}`")))?
        };
        let rel = abs - pc as i64;
        i32::try_from(rel).map_err(|_| self.err(format!("target `{item}` out of range")))
    }
}

/// Parses a signed integer literal: decimal, `0x` hex, `0b` binary, or
/// `'c'` char.
pub(super) fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        return i64::from_str_radix(rest, 2).ok();
    }
    if let Some(rest) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(rest, 16)
            .ok()
            .or_else(|| u64::from_str_radix(rest, 16).ok().map(|v| v as i64));
    }
    if let Some(rest) = s.strip_prefix("-0x").or_else(|| s.strip_prefix("-0X")) {
        return i64::from_str_radix(rest, 16).ok().map(|v| -v);
    }
    if s.len() == 3 && s.starts_with('\'') && s.ends_with('\'') {
        return Some(s.as_bytes()[1] as i64);
    }
    s.parse().ok()
}

/// Parses one statement (real or pseudo) into exactly one instruction.
pub(super) fn parse_statement(
    mnemonic: &str,
    cur: &mut Cursor<'_>,
    pc: u64,
) -> Result<Inst, AsmError> {
    if let Some(inst) = parse_pseudo(mnemonic, cur, pc)? {
        return Ok(inst);
    }
    let op = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| AsmError::new(cur.line, format!("unknown mnemonic `{mnemonic}`")))?;
    parse_real(op, cur, pc)
}

fn parse_real(op: Opcode, cur: &mut Cursor<'_>, pc: u64) -> Result<Inst, AsmError> {
    use OperandSig::*;
    Ok(match op.sig() {
        Rrr => {
            let (rd, rs1, rs2) = (cur.int_reg()?, cur.int_reg()?, cur.int_reg()?);
            Inst::rrr(op, rd, rs1, rs2)
        }
        Rri => {
            let (rd, rs1, imm) = (cur.int_reg()?, cur.int_reg()?, cur.imm32()?);
            Inst::rri(op, rd, rs1, imm)
        }
        Ri => {
            let (rd, imm) = (cur.int_reg()?, cur.imm32()?);
            Inst::li(rd, imm)
        }
        Fff => {
            let (fd, fs1, fs2) = (cur.fp_reg()?, cur.fp_reg()?, cur.fp_reg()?);
            Inst::fff(op, fd, fs1, fs2)
        }
        Ff => {
            let (fd, fs1) = (cur.fp_reg()?, cur.fp_reg()?);
            Inst::ff(op, fd, fs1)
        }
        Rff => {
            let (rd, fs1, fs2) = (cur.int_reg()?, cur.fp_reg()?, cur.fp_reg()?);
            Inst::rff(op, rd, fs1, fs2)
        }
        Fr => {
            let (fd, rs1) = (cur.fp_reg()?, cur.int_reg()?);
            Inst::cvt_int_to_fp(fd, rs1)
        }
        Rf => {
            let (rd, fs1) = (cur.int_reg()?, cur.fp_reg()?);
            Inst::cvt_fp_to_int(rd, fs1)
        }
        MemLoadInt => {
            let rd = cur.int_reg()?;
            let (base, off) = cur.mem_operand()?;
            Inst::load_int(op, rd, base, off)
        }
        MemLoadFp => {
            let fd = cur.fp_reg()?;
            let (base, off) = cur.mem_operand()?;
            Inst::load_fp(fd, base, off)
        }
        MemStoreInt => {
            let src = cur.int_reg()?;
            let (base, off) = cur.mem_operand()?;
            Inst::store_int(op, src, base, off)
        }
        MemStoreFp => {
            let src = cur.fp_reg()?;
            let (base, off) = cur.mem_operand()?;
            Inst::store_fp(src, base, off)
        }
        Bcc => {
            let (rs1, rs2) = (cur.int_reg()?, cur.int_reg()?);
            let off = cur.pc_rel_target(pc)?;
            Inst::branch(op, rs1, rs2, off)
        }
        JImm => Inst::j(cur.pc_rel_target(pc)?),
        JalImm => {
            // `jal target` implies the link register; `jal rd, target` is
            // also accepted.
            if cur.items.len() - cur.next >= 2 {
                let rd = cur.int_reg()?;
                Inst::jal(rd, cur.pc_rel_target(pc)?)
            } else {
                Inst::jal(IntReg::RA, cur.pc_rel_target(pc)?)
            }
        }
        JReg => {
            let rs1 = cur.int_reg()?;
            let imm = if cur.peek().is_some() {
                cur.imm32()?
            } else {
                0
            };
            Inst::jr(rs1, imm)
        }
        JalReg => {
            let (rd, rs1) = (cur.int_reg()?, cur.int_reg()?);
            let imm = if cur.peek().is_some() {
                cur.imm32()?
            } else {
                0
            };
            Inst::jalr(rd, rs1, imm)
        }
        SysR => {
            let rs1 = cur.int_reg()?;
            Inst::sys_r(op, rs1)
        }
        SysF => Inst::putf(cur.fp_reg()?),
        SysNone => match op {
            Opcode::Halt => Inst::halt(),
            _ => Inst::NOP,
        },
    })
}

/// Pseudo-instructions; each expands to exactly one real instruction.
fn parse_pseudo(mnemonic: &str, cur: &mut Cursor<'_>, pc: u64) -> Result<Option<Inst>, AsmError> {
    let inst = match mnemonic {
        "mv" => {
            let (rd, rs) = (cur.int_reg()?, cur.int_reg()?);
            Inst::rri(Opcode::Addi, rd, rs, 0)
        }
        "neg" => {
            let (rd, rs) = (cur.int_reg()?, cur.int_reg()?);
            Inst::rrr(Opcode::Sub, rd, IntReg::ZERO, rs)
        }
        "not" => {
            let (rd, rs) = (cur.int_reg()?, cur.int_reg()?);
            Inst::rrr(Opcode::Nor, rd, rs, IntReg::ZERO)
        }
        "la" => {
            let (rd, imm) = (cur.int_reg()?, cur.imm32()?);
            Inst::li(rd, imm)
        }
        "b" => Inst::j(cur.pc_rel_target(pc)?),
        "beqz" => {
            let rs = cur.int_reg()?;
            Inst::branch(Opcode::Beq, rs, IntReg::ZERO, cur.pc_rel_target(pc)?)
        }
        "bnez" => {
            let rs = cur.int_reg()?;
            Inst::branch(Opcode::Bne, rs, IntReg::ZERO, cur.pc_rel_target(pc)?)
        }
        "bltz" => {
            let rs = cur.int_reg()?;
            Inst::branch(Opcode::Blt, rs, IntReg::ZERO, cur.pc_rel_target(pc)?)
        }
        "bgez" => {
            let rs = cur.int_reg()?;
            Inst::branch(Opcode::Bge, rs, IntReg::ZERO, cur.pc_rel_target(pc)?)
        }
        "bgtz" => {
            let rs = cur.int_reg()?;
            Inst::branch(Opcode::Blt, IntReg::ZERO, rs, cur.pc_rel_target(pc)?)
        }
        "blez" => {
            let rs = cur.int_reg()?;
            Inst::branch(Opcode::Bge, IntReg::ZERO, rs, cur.pc_rel_target(pc)?)
        }
        "ble" => {
            let (rs1, rs2) = (cur.int_reg()?, cur.int_reg()?);
            Inst::branch(Opcode::Bge, rs2, rs1, cur.pc_rel_target(pc)?)
        }
        "bgt" => {
            let (rs1, rs2) = (cur.int_reg()?, cur.int_reg()?);
            Inst::branch(Opcode::Blt, rs2, rs1, cur.pc_rel_target(pc)?)
        }
        "call" => Inst::jal(IntReg::RA, cur.pc_rel_target(pc)?),
        "ret" => Inst::jr(IntReg::RA, 0),
        "fmv.d" => {
            let (fd, fs) = (cur.fp_reg()?, cur.fp_reg()?);
            Inst::ff(Opcode::FmovD, fd, fs)
        }
        _ => return Ok(None),
    };
    Ok(Some(inst))
}
