//! Disassembler: renders program text with addresses, labels and
//! resolved control-flow targets.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::encode::INST_BYTES;
use crate::inst::Inst;
use crate::op::OperandSig;
use crate::program::Program;

/// Disassembles one instruction at `pc`, resolving PC-relative targets
/// to absolute addresses (and to `label` names when `labels` knows them).
#[must_use]
pub fn disasm_at(inst: &Inst, pc: u64, labels: &HashMap<u64, &str>) -> String {
    match inst.op.sig() {
        OperandSig::Bcc | OperandSig::JImm | OperandSig::JalImm => {
            let target = pc.wrapping_add(inst.imm as i64 as u64);
            let base = inst.to_string();
            // Replace the trailing numeric offset with the resolved target.
            let head = base.rsplit_once(' ').map_or(base.as_str(), |(h, _)| h);
            match labels.get(&target) {
                Some(name) => format!("{head} {name}"),
                None => format!("{head} {target:#x}"),
            }
        }
        _ => inst.to_string(),
    }
}

/// Produces a full listing of a program's text segment.
///
/// # Examples
///
/// ```
/// use redsim_isa::{asm::assemble, disasm::listing};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("main: addi a0, a0, 1\n beqz a0, main\n halt\n")?;
/// let text = listing(&p);
/// assert!(text.contains("main:"));
/// assert!(text.contains("beq a0, zero, main"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn listing(program: &Program) -> String {
    let mut by_addr: HashMap<u64, &str> = HashMap::new();
    let symbols: Vec<_> = program.symbols().collect();
    for s in &symbols {
        by_addr.insert(s.addr, s.name.as_str());
    }
    let mut out = String::new();
    for (i, inst) in program.text().iter().enumerate() {
        let pc = program.text_base() + i as u64 * INST_BYTES;
        if let Some(name) = by_addr.get(&pc) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "    {:<32} # {pc:#x}", disasm_at(inst, pc, &by_addr));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn listing_round_trips_through_assembler() {
        let src = r#"
        main:
            li   t0, 10
        loop:
            addi t0, t0, -1
            bne  t0, zero, loop
            ld   a0, 16(sp)
            halt
        "#;
        let p = assemble(src).unwrap();
        let text = listing(&p);
        assert!(text.contains("bne t0, zero, loop"), "{text}");
        assert!(text.contains("ld a0, 16(sp)"), "{text}");
        // The listing itself must be reassemblable to the same program.
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.text(), p2.text());
    }

    #[test]
    fn unresolved_targets_print_as_hex() {
        let p = assemble("j main\nmain: halt\n").unwrap();
        let inst = p.text()[0];
        let rendered = disasm_at(&inst, p.text_base(), &HashMap::new());
        assert!(rendered.starts_with("j 0x"), "{rendered}");
    }
}
