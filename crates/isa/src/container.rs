//! A binary container format for linked programs, so kernels can be
//! assembled once and shipped/loaded like object files.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "RSIM"            4 bytes
//! version u16               currently 1
//! entry   u64
//! ninsts  u64               text length in instructions
//! ndata   u64               data length in bytes
//! nsyms   u32
//! text    ninsts * 8 bytes  (the fixed-width encoding of `encode`)
//! data    ndata bytes
//! syms    nsyms * { u16 len, len bytes of UTF-8 name, u64 addr }
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::encode::{decode_text, encode_text};
use crate::error::DecodeError;
use crate::program::{program_from_parts, Program};

const MAGIC: &[u8; 4] = b"RSIM";
const VERSION: u16 = 1;

/// An error produced while reading a program container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The magic bytes did not match.
    BadMagic,
    /// The container version is not supported.
    BadVersion(u16),
    /// The byte stream ended before the declared contents.
    Truncated,
    /// A symbol name was not valid UTF-8.
    BadSymbolName,
    /// An instruction word failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not a redsim program (bad magic)"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::BadSymbolName => write!(f, "symbol name is not valid utf-8"),
            ContainerError::Decode(e) => write!(f, "bad instruction in container: {e}"),
        }
    }
}

impl Error for ContainerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ContainerError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for ContainerError {
    fn from(e: DecodeError) -> Self {
        ContainerError::Decode(e)
    }
}

/// Serializes a program into the container format.
///
/// # Examples
///
/// ```
/// use redsim_isa::asm::assemble;
/// use redsim_isa::container::{from_bytes, to_bytes};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("main: li a0, 1\n halt\n")?;
/// let bytes = to_bytes(&p);
/// assert_eq!(from_bytes(&bytes)?, p);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_bytes(program: &Program) -> Vec<u8> {
    let text = encode_text(program.text());
    let symbols: Vec<_> = program.symbols().collect();
    let mut out = Vec::with_capacity(64 + text.len() + program.data().len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&program.entry().to_le_bytes());
    out.extend_from_slice(&(program.text().len() as u64).to_le_bytes());
    out.extend_from_slice(&(program.data().len() as u64).to_le_bytes());
    out.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
    out.extend_from_slice(&text);
    out.extend_from_slice(program.data());
    for s in symbols {
        out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
        out.extend_from_slice(s.name.as_bytes());
        out.extend_from_slice(&s.addr.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        let end = self.pos.checked_add(n).ok_or(ContainerError::Truncated)?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(ContainerError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Deserializes a program from container bytes.
///
/// # Errors
///
/// Returns [`ContainerError`] for malformed input; never panics on
/// untrusted bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Program, ContainerError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let entry = r.u64()?;
    let ninsts = r.u64()?;
    let ndata = r.u64()?;
    let nsyms = r.u32()?;
    let text_bytes = r.take(
        usize::try_from(ninsts)
            .ok()
            .and_then(|n| n.checked_mul(8))
            .ok_or(ContainerError::Truncated)?,
    )?;
    let text = decode_text(text_bytes)?;
    let data = r
        .take(usize::try_from(ndata).map_err(|_| ContainerError::Truncated)?)?
        .to_vec();
    let mut symbols = BTreeMap::new();
    for _ in 0..nsyms {
        let len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(len)?)
            .map_err(|_| ContainerError::BadSymbolName)?
            .to_owned();
        let addr = r.u64()?;
        symbols.insert(name, addr);
    }
    Ok(program_from_parts(text, data, symbols, entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            r#"
                .data
            arr: .word 1, 2, 3
            msg: .asciiz "hi"
                .text
            main:
                la t0, arr
                ld a0, 0(t0)
            loop:
                addi a0, a0, -1
                bnez a0, loop
                halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample();
        let q = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.symbol("msg"), p.symbol("msg"));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut b = to_bytes(&sample());
        b[0] = b'X';
        assert_eq!(from_bytes(&b), Err(ContainerError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut b = to_bytes(&sample());
        b[4] = 99;
        assert!(matches!(from_bytes(&b), Err(ContainerError::BadVersion(_))));
    }

    #[test]
    fn truncations_are_rejected_not_panics() {
        let b = to_bytes(&sample());
        for cut in [0, 3, 5, 10, 30, b.len() - 1] {
            let r = from_bytes(&b[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail gracefully");
        }
    }

    #[test]
    fn empty_program_round_trips() {
        let p = assemble("").unwrap();
        assert_eq!(from_bytes(&to_bytes(&p)).unwrap(), p);
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_util::Rng;

    /// Arbitrary byte soup never panics the loader.
    #[test]
    fn loader_never_panics() {
        let mut rng = Rng::new(0xC0_7A1);
        for _ in 0..256 {
            let mut bytes = vec![0u8; rng.index(256)];
            rng.fill_bytes(&mut bytes);
            let _ = from_bytes(&bytes);
        }
    }

    /// Flipping any single byte of a valid container either still
    /// loads or fails cleanly — never panics. Exhaustive over the
    /// first 64 byte positions (the proptest original sampled them).
    #[test]
    fn mutation_is_handled() {
        let mut rng = Rng::new(0xC0_7A2);
        let p = crate::asm::assemble("main: li a0, 7\n halt\n").unwrap();
        let clean = to_bytes(&p);
        for idx in 0..64usize {
            for _ in 0..4 {
                let mut b = clean.clone();
                let i = idx % b.len();
                b[i] = rng.any_u8();
                let _ = from_bytes(&b);
            }
        }
    }
}
