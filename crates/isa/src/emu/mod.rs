//! Architectural (functional) emulator.
//!
//! [`Emulator`] executes a [`Program`] instruction-at-a-time in commit
//! order, producing a [`DynInst`] trace record per step. The timing
//! models in `redsim-core` consume this stream: the emulator defines
//! *what* the program does, the timing models define *when*.

mod memory;

pub use memory::{Memory, NULL_GUARD};

use crate::encode::INST_BYTES;
use crate::error::EmuError;
use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::{Program, STACK_TOP};
use crate::reg::NUM_REGS;
use crate::trace::{ControlOutcome, DynInst, OutputEvent};

/// The functional emulator.
///
/// # Examples
///
/// ```
/// use redsim_isa::{asm::assemble, emu::Emulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("main: li a0, 6\n li a1, 7\n mul a2, a0, a1\n puti a2\n halt\n")?;
/// let mut emu = Emulator::new(&p);
/// emu.run(100)?;
/// assert_eq!(emu.output_ints(), &[42]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    pc: u64,
    iregs: [u64; NUM_REGS],
    fregs: [u64; NUM_REGS],
    mem: Memory,
    halted: bool,
    seq: u64,
    output: Vec<OutputEvent>,
}

impl Emulator {
    /// Creates an emulator with the program's segments loaded and the
    /// stack pointer initialized to [`STACK_TOP`].
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut mem = Memory::new();
        mem.load_segment(program.data_base(), program.data());
        let mut iregs = [0u64; NUM_REGS];
        iregs[crate::reg::IntReg::SP.index()] = STACK_TOP;
        Emulator {
            pc: program.entry(),
            program: program.clone(),
            iregs,
            fregs: [0; NUM_REGS],
            mem,
            halted: false,
            seq: 0,
            output: Vec::new(),
        }
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// `true` once the program has executed `halt`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Reads an integer register.
    #[must_use]
    pub fn ireg(&self, r: crate::reg::IntReg) -> u64 {
        self.iregs[r.index()]
    }

    /// Reads an fp register as a double.
    #[must_use]
    pub fn freg(&self, r: crate::reg::FpReg) -> f64 {
        f64::from_bits(self.fregs[r.index()])
    }

    /// The program's output events, in emission order.
    #[must_use]
    pub fn output(&self) -> &[OutputEvent] {
        &self.output
    }

    /// Convenience: just the integers the program `puti`-ed.
    #[must_use]
    pub fn output_ints(&self) -> Vec<i64> {
        self.output
            .iter()
            .filter_map(|e| match e {
                OutputEvent::Int(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// The emulator's memory (e.g. for inspecting results in tests).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    fn read_i(&self, idx: u8) -> u64 {
        self.iregs[idx as usize]
    }

    fn write_i(&mut self, idx: u8, v: u64) {
        if idx != 0 {
            self.iregs[idx as usize] = v;
        }
    }

    fn read_f(&self, idx: u8) -> u64 {
        self.fregs[idx as usize]
    }

    fn write_f(&mut self, idx: u8, bits: u64) {
        self.fregs[idx as usize] = bits;
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` if the program has already halted.
    ///
    /// # Errors
    ///
    /// Fails if the PC leaves the text segment or a memory access faults.
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(EmuError::PcOutOfText { pc })?;
        let rec = self.exec(pc, inst)?;
        self.pc = rec.next_pc;
        self.seq += 1;
        Ok(Some(rec))
    }

    /// Runs until `halt` or until `budget` instructions have executed.
    ///
    /// Returns the number of instructions committed by this call.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::BudgetExhausted`] if the program does not halt
    /// within the budget, or propagates any execution fault.
    pub fn run(&mut self, budget: u64) -> Result<u64, EmuError> {
        let start = self.seq;
        while !self.halted {
            if self.seq - start >= budget {
                return Err(EmuError::BudgetExhausted {
                    executed: self.seq - start,
                });
            }
            self.step()?;
        }
        Ok(self.seq - start)
    }

    /// Runs like [`run`](Self::run) but collects the full trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_trace(&mut self, budget: u64) -> Result<Vec<DynInst>, EmuError> {
        let mut out = Vec::new();
        while !self.halted {
            if out.len() as u64 >= budget {
                return Err(EmuError::BudgetExhausted {
                    executed: out.len() as u64,
                });
            }
            if let Some(rec) = self.step()? {
                out.push(rec);
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, pc: u64, inst: Inst) -> Result<DynInst, EmuError> {
        use Opcode::*;
        let fall = pc + INST_BYTES;
        let mut rec = DynInst {
            seq: self.seq,
            pc,
            inst,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: fall,
        };

        // Integer register–register ALU.
        let rrr = |emu: &Self, rec: &mut DynInst| {
            let a = emu.read_i(inst.rs1);
            let b = emu.read_i(inst.rs2);
            rec.src1 = a;
            rec.src2 = b;
            (a, b)
        };
        // Integer register–immediate ALU.
        let rri = |emu: &Self, rec: &mut DynInst| {
            let a = emu.read_i(inst.rs1);
            let b = inst.imm as i64 as u64;
            rec.src1 = a;
            rec.src2 = b;
            (a, b)
        };
        // FP two-source.
        let fff = |emu: &Self, rec: &mut DynInst| {
            let a = emu.read_f(inst.rs1);
            let b = emu.read_f(inst.rs2);
            rec.src1 = a;
            rec.src2 = b;
            (f64::from_bits(a), f64::from_bits(b))
        };

        match inst.op {
            Add => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a.wrapping_add(b));
            }
            Sub => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a.wrapping_sub(b));
            }
            And => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a & b);
            }
            Or => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a | b);
            }
            Xor => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a ^ b);
            }
            Nor => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, !(a | b));
            }
            Sll => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a << (b & 63));
            }
            Srl => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a >> (b & 63));
            }
            Sra => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, (a as i64 >> (b & 63)) as u64);
            }
            Slt => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, u64::from((a as i64) < b as i64));
            }
            Sltu => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, u64::from(a < b));
            }
            Addi => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, a.wrapping_add(b));
            }
            Andi => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, a & b);
            }
            Ori => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, a | b);
            }
            Xori => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, a ^ b);
            }
            Slti => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, u64::from((a as i64) < b as i64));
            }
            Sltiu => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, u64::from(a < b));
            }
            Slli => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, a << (b & 63));
            }
            Srli => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, a >> (b & 63));
            }
            Srai => {
                let (a, b) = rri(self, &mut rec);
                self.set_int(&mut rec, (a as i64 >> (b & 63)) as u64);
            }
            Li => {
                rec.src2 = inst.imm as i64 as u64;
                self.set_int(&mut rec, inst.imm as i64 as u64);
            }
            Mul => {
                let (a, b) = rrr(self, &mut rec);
                self.set_int(&mut rec, a.wrapping_mul(b));
            }
            Mulh => {
                let (a, b) = rrr(self, &mut rec);
                let wide = i128::from(a as i64) * i128::from(b as i64);
                self.set_int(&mut rec, (wide >> 64) as u64);
            }
            Div => {
                let (a, b) = rrr(self, &mut rec);
                let v = if b == 0 {
                    u64::MAX
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                };
                self.set_int(&mut rec, v);
            }
            Divu => {
                let (a, b) = rrr(self, &mut rec);
                let v = a.checked_div(b).unwrap_or(u64::MAX);
                self.set_int(&mut rec, v);
            }
            Rem => {
                let (a, b) = rrr(self, &mut rec);
                let v = if b == 0 {
                    a
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                };
                self.set_int(&mut rec, v);
            }
            Remu => {
                let (a, b) = rrr(self, &mut rec);
                let v = if b == 0 { a } else { a % b };
                self.set_int(&mut rec, v);
            }
            FaddD => {
                let (a, b) = fff(self, &mut rec);
                self.set_fp(&mut rec, a + b);
            }
            FsubD => {
                let (a, b) = fff(self, &mut rec);
                self.set_fp(&mut rec, a - b);
            }
            FmulD => {
                let (a, b) = fff(self, &mut rec);
                self.set_fp(&mut rec, a * b);
            }
            FdivD => {
                let (a, b) = fff(self, &mut rec);
                self.set_fp(&mut rec, a / b);
            }
            FminD => {
                let (a, b) = fff(self, &mut rec);
                self.set_fp(&mut rec, a.min(b));
            }
            FmaxD => {
                let (a, b) = fff(self, &mut rec);
                self.set_fp(&mut rec, a.max(b));
            }
            FsqrtD => {
                let a = self.read_f(inst.rs1);
                rec.src1 = a;
                self.set_fp(&mut rec, f64::from_bits(a).sqrt());
            }
            FabsD => {
                let a = self.read_f(inst.rs1);
                rec.src1 = a;
                self.set_fp(&mut rec, f64::from_bits(a).abs());
            }
            FnegD => {
                let a = self.read_f(inst.rs1);
                rec.src1 = a;
                self.set_fp(&mut rec, -f64::from_bits(a));
            }
            FmovD => {
                let a = self.read_f(inst.rs1);
                rec.src1 = a;
                rec.result = Some(a);
                self.write_f(inst.rd, a);
            }
            FcvtDL => {
                let a = self.read_i(inst.rs1);
                rec.src1 = a;
                self.set_fp(&mut rec, a as i64 as f64);
            }
            FcvtLD => {
                let a = self.read_f(inst.rs1);
                rec.src1 = a;
                self.set_int(&mut rec, f64::from_bits(a) as i64 as u64);
            }
            FeqD => {
                let (a, b) = fff(self, &mut rec);
                self.set_int(&mut rec, u64::from(a == b));
            }
            FltD => {
                let (a, b) = fff(self, &mut rec);
                self.set_int(&mut rec, u64::from(a < b));
            }
            FleD => {
                let (a, b) = fff(self, &mut rec);
                self.set_int(&mut rec, u64::from(a <= b));
            }
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
                let base = self.read_i(inst.rs1);
                rec.src1 = base;
                rec.src2 = inst.imm as i64 as u64;
                let ea = base.wrapping_add(inst.imm as i64 as u64);
                rec.ea = Some(ea);
                let width = inst.op.mem_width().expect("load has a width");
                let raw = self.mem.read(ea, width, pc)?;
                let v = if inst.op.load_sign_extends() {
                    sign_extend(raw, width.bytes())
                } else {
                    raw
                };
                if inst.op == Fld {
                    rec.result = Some(v);
                    self.write_f(inst.rd, v);
                } else {
                    self.set_int(&mut rec, v);
                }
            }
            Sb | Sh | Sw | Sd | Fsd => {
                let base = self.read_i(inst.rs1);
                let data = if inst.op == Fsd {
                    self.read_f(inst.rs2)
                } else {
                    self.read_i(inst.rs2)
                };
                rec.src1 = base;
                rec.src2 = data;
                let ea = base.wrapping_add(inst.imm as i64 as u64);
                rec.ea = Some(ea);
                let width = inst.op.mem_width().expect("store has a width");
                self.mem.write(ea, width, data, pc)?;
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let a = self.read_i(inst.rs1);
                let b = self.read_i(inst.rs2);
                rec.src1 = a;
                rec.src2 = b;
                let taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < b as i64,
                    Bge => a as i64 >= b as i64,
                    Bltu => a < b,
                    Bgeu => a >= b,
                    _ => unreachable!(),
                };
                let target = pc.wrapping_add(inst.imm as i64 as u64);
                rec.control = Some(ControlOutcome { taken, target });
                if taken {
                    rec.next_pc = target;
                }
            }
            J => {
                let target = pc.wrapping_add(inst.imm as i64 as u64);
                rec.control = Some(ControlOutcome {
                    taken: true,
                    target,
                });
                rec.next_pc = target;
            }
            Jal => {
                let target = pc.wrapping_add(inst.imm as i64 as u64);
                rec.control = Some(ControlOutcome {
                    taken: true,
                    target,
                });
                rec.next_pc = target;
                self.set_int(&mut rec, fall);
            }
            Jr => {
                let base = self.read_i(inst.rs1);
                rec.src1 = base;
                let target = base.wrapping_add(inst.imm as i64 as u64);
                rec.control = Some(ControlOutcome {
                    taken: true,
                    target,
                });
                rec.next_pc = target;
            }
            Jalr => {
                let base = self.read_i(inst.rs1);
                rec.src1 = base;
                let target = base.wrapping_add(inst.imm as i64 as u64);
                rec.control = Some(ControlOutcome {
                    taken: true,
                    target,
                });
                rec.next_pc = target;
                self.set_int(&mut rec, fall);
            }
            Halt => {
                self.halted = true;
                rec.next_pc = pc;
            }
            Nop => {}
            Puti => {
                let v = self.read_i(inst.rs1);
                rec.src1 = v;
                self.output.push(OutputEvent::Int(v as i64));
            }
            Putc => {
                let v = self.read_i(inst.rs1);
                rec.src1 = v;
                self.output.push(OutputEvent::Char(v as u8));
            }
            Putf => {
                let v = self.read_f(inst.rs1);
                rec.src1 = v;
                self.output.push(OutputEvent::Float(f64::from_bits(v)));
            }
        }
        Ok(rec)
    }

    fn set_int(&mut self, rec: &mut DynInst, v: u64) {
        // r0 is hard-wired to zero: the record keeps the computed value
        // (that is what an ALU or IRB would produce) but the register
        // write is dropped.
        rec.result = Some(v);
        self.write_i(rec.inst.rd, v);
    }

    fn set_fp(&mut self, rec: &mut DynInst, v: f64) {
        rec.result = Some(v.to_bits());
        self.write_f(rec.inst.rd, v.to_bits());
    }
}

fn sign_extend(v: u64, bytes: u64) -> u64 {
    let bits = bytes * 8;
    if bits == 64 {
        return v;
    }
    let shift = 64 - bits;
    ((v << shift) as i64 >> shift) as u64
}

#[cfg(test)]
mod tests;
