use super::*;
use crate::asm::assemble;
use crate::reg::{FpReg, IntReg};
use crate::trace::OutputEvent;

fn run_ints(src: &str) -> Vec<i64> {
    let p = assemble(src).expect("assemble");
    let mut emu = Emulator::new(&p);
    emu.run(10_000_000).expect("run");
    emu.output_ints()
}

fn run_floats(src: &str) -> Vec<f64> {
    let p = assemble(src).expect("assemble");
    let mut emu = Emulator::new(&p);
    emu.run(10_000_000).expect("run");
    emu.output()
        .iter()
        .filter_map(|e| match e {
            OutputEvent::Float(v) => Some(*v),
            _ => None,
        })
        .collect()
}

#[test]
fn arithmetic_basics() {
    let out = run_ints(
        r#"
        li a0, 7
        li a1, 3
        add t0, a0, a1
        puti t0
        sub t0, a0, a1
        puti t0
        mul t0, a0, a1
        puti t0
        div t0, a0, a1
        puti t0
        rem t0, a0, a1
        puti t0
        halt
        "#,
    );
    assert_eq!(out, [10, 4, 21, 2, 1]);
}

#[test]
fn logic_and_shifts() {
    let out = run_ints(
        r#"
        li a0, 0b1100
        li a1, 0b1010
        and t0, a0, a1      # pseudo? no: real
        puti t0
        or  t0, a0, a1
        puti t0
        xor t0, a0, a1
        puti t0
        slli t0, a0, 4
        puti t0
        srli t0, a0, 2
        puti t0
        li a2, -8
        srai t0, a2, 1
        puti t0
        halt
        "#,
    );
    assert_eq!(out, [8, 14, 6, 192, 3, -4]);
}

#[test]
fn signed_unsigned_compares() {
    let out = run_ints(
        r#"
        li a0, -1
        li a1, 1
        slt t0, a0, a1
        puti t0
        sltu t0, a0, a1     # -1 is huge unsigned
        puti t0
        slti t1, a1, 100
        puti t1
        halt
        "#,
    );
    assert_eq!(out, [1, 0, 1]);
}

#[test]
fn division_edge_cases() {
    let out = run_ints(
        r#"
        li a0, 5
        li a1, 0
        div t0, a0, a1      # div by zero -> all ones
        puti t0
        rem t1, a0, a1      # rem by zero -> dividend
        puti t1
        halt
        "#,
    );
    assert_eq!(out, [-1, 5]);
}

#[test]
fn mulh_computes_high_bits() {
    let p = assemble(
        r#"
        li a0, 0x10000000
        slli a0, a0, 8      # a0 = 2^36
        mul a1, a0, a0      # low bits of 2^72 == 0
        mulh a2, a0, a0     # high bits of 2^72 == 2^8
        puti a1
        puti a2
        halt
        "#,
    )
    .unwrap();
    let mut emu = Emulator::new(&p);
    emu.run(100).unwrap();
    assert_eq!(emu.output_ints(), [0, 256]);
}

#[test]
fn loads_and_stores_round_trip() {
    let out = run_ints(
        r#"
            .data
        buf: .space 64
            .text
        main:
            la s0, buf
            li t0, -2
            sd t0, 0(s0)
            ld t1, 0(s0)
            puti t1
            sw t0, 8(s0)
            lw t2, 8(s0)        # sign-extending
            puti t2
            lwu t3, 8(s0)       # zero-extending
            srli t3, t3, 16
            puti t3
            li t4, 300
            sh t4, 16(s0)
            lhu t5, 16(s0)
            puti t5
            sb t4, 24(s0)       # truncates to 44
            lbu t6, 24(s0)
            puti t6
            lb s1, 24(s0)
            puti s1
            halt
        "#,
    );
    assert_eq!(out, [-2, -2, 0xffff, 300, 44, 44]);
}

#[test]
fn fp_arithmetic_and_conversion() {
    let out = run_floats(
        r#"
        li a0, 9
        fcvt.d.l f0, a0
        fsqrt.d f1, f0
        putf f1
        li a1, 2
        fcvt.d.l f2, a1
        fdiv.d f3, f0, f2
        putf f3
        fneg.d f4, f3
        putf f4
        fabs.d f5, f4
        putf f5
        halt
        "#,
    );
    assert_eq!(out, [3.0, 4.5, -4.5, 4.5]);
}

#[test]
fn fp_compares_write_int() {
    let out = run_ints(
        r#"
        li a0, 1
        li a1, 2
        fcvt.d.l f0, a0
        fcvt.d.l f1, a1
        flt.d t0, f0, f1
        puti t0
        fle.d t1, f1, f0
        puti t1
        feq.d t2, f0, f0
        puti t2
        fcvt.l.d t3, f1
        puti t3
        halt
        "#,
    );
    assert_eq!(out, [1, 0, 1, 2]);
}

#[test]
fn control_flow_loop_and_call() {
    let out = run_ints(
        r#"
        # sum 1..5 via a helper
        main:
            li a0, 5
            call sum
            puti a0
            halt
        sum:
            li t0, 0
        loop:
            add t0, t0, a0
            addi a0, a0, -1
            bnez a0, loop
            mv a0, t0
            ret
        "#,
    );
    assert_eq!(out, [15]);
}

#[test]
fn indirect_jump_through_table() {
    let out = run_ints(
        r#"
            .data
        table: .word case0, case1
            .text
        main:
            li s0, 1            # select case1
            la t0, table
            slli t1, s0, 3
            add t0, t0, t1
            ld t2, 0(t0)
            jr t2
        case0:
            li a0, 100
            puti a0
            halt
        case1:
            li a0, 200
            puti a0
            halt
        "#,
    );
    assert_eq!(out, [200]);
}

#[test]
fn stack_discipline() {
    let out = run_ints(
        r#"
        main:
            addi sp, sp, -16
            li t0, 77
            sd t0, 0(sp)
            sd ra, 8(sp)
            call f
            ld t0, 0(sp)
            ld ra, 8(sp)
            addi sp, sp, 16
            puti t0
            halt
        f:
            li t0, 0        # clobber t0
            ret
        "#,
    );
    assert_eq!(out, [77]);
}

#[test]
fn zero_register_ignores_writes() {
    let p = assemble("li zero, 5\nadd zero, zero, zero\nputi zero\nhalt\n").unwrap();
    let mut emu = Emulator::new(&p);
    emu.run(100).unwrap();
    assert_eq!(emu.output_ints(), [0]);
    assert_eq!(emu.ireg(IntReg::ZERO), 0);
}

#[test]
fn trace_records_operand_values() {
    let p = assemble("main: li a0, 3\n li a1, 4\n add a2, a0, a1\n halt\n").unwrap();
    let mut emu = Emulator::new(&p);
    let trace = emu.run_trace(100).unwrap();
    let add = &trace[2];
    assert_eq!(add.src1, 3);
    assert_eq!(add.src2, 4);
    assert_eq!(add.result, Some(7));
    assert_eq!(add.seq, 2);
    assert_eq!(add.next_pc, add.pc + 8);
}

#[test]
fn trace_records_branch_outcomes() {
    let p = assemble(
        r#"
        main:
            li t0, 1
            beqz t0, skip      # not taken
            bnez t0, skip      # taken
            nop
        skip:
            halt
        "#,
    )
    .unwrap();
    let mut emu = Emulator::new(&p);
    let trace = emu.run_trace(100).unwrap();
    let not_taken = trace[1].control.unwrap();
    assert!(!not_taken.taken);
    let taken = trace[2].control.unwrap();
    assert!(taken.taken);
    assert_eq!(trace[2].next_pc, taken.target);
    // both record the same static target
    assert_eq!(not_taken.target, taken.target);
}

#[test]
fn trace_records_effective_addresses() {
    let p = assemble(
        r#"
            .data
        x:  .word 42
            .text
        main:
            la t0, x
            ld a0, 0(t0)
            sd a0, 8(t0)
            halt
        "#,
    )
    .unwrap();
    let data_base = p.data_base();
    let mut emu = Emulator::new(&p);
    let trace = emu.run_trace(100).unwrap();
    assert_eq!(trace[1].ea, Some(data_base));
    assert_eq!(trace[1].result, Some(42));
    assert_eq!(trace[2].ea, Some(data_base + 8));
    assert_eq!(trace[2].src2, 42, "store data travels in src2");
}

#[test]
fn budget_exhaustion_reported() {
    let p = assemble("spin: j spin\n").unwrap();
    let mut emu = Emulator::new(&p);
    let e = emu.run(100).unwrap_err();
    assert!(matches!(e, EmuError::BudgetExhausted { executed: 100 }));
}

#[test]
fn pc_out_of_text_reported() {
    // Fall off the end of the program (no halt).
    let p = assemble("nop\n").unwrap();
    let mut emu = Emulator::new(&p);
    emu.step().unwrap();
    let e = emu.step().unwrap_err();
    assert!(matches!(e, EmuError::PcOutOfText { .. }));
}

#[test]
fn step_after_halt_returns_none() {
    let p = assemble("halt\n").unwrap();
    let mut emu = Emulator::new(&p);
    assert!(emu.step().unwrap().is_some());
    assert!(emu.halted());
    assert!(emu.step().unwrap().is_none());
    assert_eq!(emu.committed(), 1);
}

#[test]
fn fp_state_visible_through_accessors() {
    let p = assemble("main: li a0, 5\n fcvt.d.l f7, a0\n halt\n").unwrap();
    let mut emu = Emulator::new(&p);
    emu.run(10).unwrap();
    assert_eq!(emu.freg(FpReg::new(7)), 5.0);
}

#[test]
fn output_events_preserve_order_and_kind() {
    let p = assemble(
        r#"
        main:
            li a0, 65
            putc a0
            puti a0
            fcvt.d.l f0, a0
            putf f0
            halt
        "#,
    )
    .unwrap();
    let mut emu = Emulator::new(&p);
    emu.run(100).unwrap();
    assert_eq!(
        emu.output(),
        &[
            OutputEvent::Char(65),
            OutputEvent::Int(65),
            OutputEvent::Float(65.0)
        ]
    );
}

mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_util::Rng;

    /// The emulator agrees with native arithmetic for add/sub/mul,
    /// including the sign/overflow corners proptest would shrink to.
    #[test]
    fn alu_matches_native() {
        let mut rng = Rng::new(0xA1_0001);
        let mut cases: Vec<(i32, i32)> = vec![
            (0, 0),
            (i32::MIN, -1),
            (i32::MIN, i32::MIN),
            (i32::MAX, i32::MAX),
            (-1, 1),
        ];
        cases.extend((0..64).map(|_| (rng.any_i32(), rng.any_i32())));
        for (a, b) in cases {
            let src = format!(
                "main: li a0, {a}\n li a1, {b}\n add t0, a0, a1\n puti t0\n \
                 sub t1, a0, a1\n puti t1\n mul t2, a0, a1\n puti t2\n halt\n"
            );
            let out = run_ints(&src);
            let (a, b) = (i64::from(a), i64::from(b));
            assert_eq!(
                out,
                vec![a.wrapping_add(b), a.wrapping_sub(b), a.wrapping_mul(b)],
                "a={a} b={b}"
            );
        }
    }

    /// Stores followed by loads of the same width return the value,
    /// for every slot in the buffer.
    #[test]
    fn memory_round_trip() {
        let mut rng = Rng::new(0xA1_0002);
        for slot in 0i64..8 {
            for _ in 0..8 {
                let v = i64::from(rng.any_i32());
                let off = slot * 8;
                let src = format!(
                    ".data\nbuf: .space 64\n.text\nmain: la s0, buf\n li t0, {v}\n \
                     sd t0, {off}(s0)\n ld t1, {off}(s0)\n puti t1\n halt\n"
                );
                assert_eq!(run_ints(&src), vec![v], "slot={slot} v={v}");
            }
        }
    }
}
