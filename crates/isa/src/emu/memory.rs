//! Sparse paged byte-addressable memory.

use redsim_util::FxHashMap;

use crate::error::EmuError;
use crate::op::MemWidth;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = PAGE_SIZE as u64 - 1;

/// Lowest mappable address; accesses below this fault, catching null
/// and near-null pointer bugs in workloads.
pub const NULL_GUARD: u64 = 0x1000;

/// Sparse, demand-allocated memory.
///
/// Pages materialize on first write; reads of never-written locations
/// return zero (the convention of trace-driven simulators, where the OS
/// zero-fills fresh pages). Accesses must be naturally aligned.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `bytes` into memory starting at `base`.
    pub fn load_segment(&mut self, base: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8_raw(base + i as u64, b);
        }
    }

    fn write_u8_raw(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    fn check(&self, addr: u64, width: MemWidth, pc: u64) -> Result<(), EmuError> {
        if addr < NULL_GUARD {
            return Err(EmuError::BadAddress { addr, pc });
        }
        let align = width.bytes();
        if !addr.is_multiple_of(align) {
            return Err(EmuError::Misaligned { addr, align, pc });
        }
        Ok(())
    }

    /// Reads a zero-extended value of the given width.
    ///
    /// # Errors
    ///
    /// Fails on misaligned or null-page accesses; `pc` is only used to
    /// annotate the error.
    pub fn read(&self, addr: u64, width: MemWidth, pc: u64) -> Result<u64, EmuError> {
        self.check(addr, width, pc)?;
        // Natural alignment keeps the access inside one page, so a
        // single page probe covers every byte.
        let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) else {
            return Ok(0);
        };
        let off = (addr & PAGE_MASK) as usize;
        let mut v: u64 = 0;
        for i in (0..width.bytes() as usize).rev() {
            v = v << 8 | u64::from(page[off + i]);
        }
        Ok(v)
    }

    /// Writes the low `width` bytes of `value`.
    ///
    /// # Errors
    ///
    /// Fails on misaligned or null-page accesses.
    pub fn write(
        &mut self,
        addr: u64,
        width: MemWidth,
        value: u64,
        pc: u64,
    ) -> Result<(), EmuError> {
        self.check(addr, width, pc)?;
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        let off = (addr & PAGE_MASK) as usize;
        for i in 0..width.bytes() as usize {
            page[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Number of materialized pages (for footprint reporting).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x2000, MemWidth::B8, 0).unwrap(), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip_all_widths() {
        let mut m = Memory::new();
        for (w, v) in [
            (MemWidth::B1, 0xab),
            (MemWidth::B2, 0xabcd),
            (MemWidth::B4, 0xdead_beef),
            (MemWidth::B8, 0x0123_4567_89ab_cdef),
        ] {
            m.write(0x4000, w, v, 0).unwrap();
            assert_eq!(m.read(0x4000, w, 0).unwrap(), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write(0x4000, MemWidth::B4, 0x0403_0201, 0).unwrap();
        for i in 0..4u64 {
            assert_eq!(m.read(0x4000 + i, MemWidth::B1, 0).unwrap(), i + 1);
        }
    }

    #[test]
    fn partial_width_write_preserves_neighbours() {
        let mut m = Memory::new();
        m.write(0x4000, MemWidth::B8, u64::MAX, 0).unwrap();
        m.write(0x4002, MemWidth::B2, 0, 0).unwrap();
        assert_eq!(
            m.read(0x4000, MemWidth::B8, 0).unwrap(),
            0xffff_ffff_0000_ffff
        );
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = Memory::new();
        let addr = 2 * PAGE_SIZE as u64 - 8;
        m.write(addr, MemWidth::B8, 0x1122_3344_5566_7788, 0)
            .unwrap();
        assert_eq!(
            m.read(addr, MemWidth::B8, 0).unwrap(),
            0x1122_3344_5566_7788
        );
    }

    #[test]
    fn null_page_faults() {
        let mut m = Memory::new();
        assert!(matches!(
            m.read(0x8, MemWidth::B8, 0x1000),
            Err(EmuError::BadAddress {
                addr: 0x8,
                pc: 0x1000
            })
        ));
        assert!(m.write(0x0, MemWidth::B1, 1, 0).is_err());
    }

    #[test]
    fn misaligned_access_faults() {
        let m = Memory::new();
        let e = m.read(0x4001, MemWidth::B8, 0x1000).unwrap_err();
        assert!(matches!(e, EmuError::Misaligned { align: 8, .. }));
        assert!(m.read(0x4001, MemWidth::B1, 0).is_ok());
        assert!(m.read(0x4002, MemWidth::B2, 0).is_ok());
        assert!(m.read(0x4002, MemWidth::B4, 0).is_err());
    }

    #[test]
    fn load_segment_places_bytes() {
        let mut m = Memory::new();
        m.load_segment(0x1000_0000, &[1, 2, 3]);
        assert_eq!(m.read(0x1000_0000, MemWidth::B1, 0).unwrap(), 1);
        assert_eq!(m.read(0x1000_0002, MemWidth::B1, 0).unwrap(), 3);
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_util::Rng;

    #[test]
    fn read_returns_last_write() {
        let mut rng = Rng::new(0x3E3_0001);
        for _ in 0..256 {
            let addr = rng.range_u64(0x1000, 0x10_0000) & !7;
            let v = rng.next_u64();
            let mut m = Memory::new();
            m.write(addr, MemWidth::B8, v, 0).unwrap();
            assert_eq!(m.read(addr, MemWidth::B8, 0).unwrap(), v, "addr={addr:#x}");
        }
    }

    #[test]
    fn narrow_reads_compose_wide_value() {
        let mut rng = Rng::new(0x3E3_0002);
        for _ in 0..256 {
            let addr = rng.range_u64(0x1000, 0x10_0000) & !7;
            let v = rng.next_u64();
            let mut m = Memory::new();
            m.write(addr, MemWidth::B8, v, 0).unwrap();
            let lo = m.read(addr, MemWidth::B4, 0).unwrap();
            let hi = m.read(addr + 4, MemWidth::B4, 0).unwrap();
            assert_eq!(hi << 32 | lo, v, "addr={addr:#x}");
        }
    }
}
