//! Fixed-width binary instruction encoding.
//!
//! Each instruction encodes to a single little-endian 64-bit word:
//!
//! ```text
//!  bits  0..8   opcode number (index into [`Opcode::ALL`])
//!  bits  8..13  rd
//!  bits 13..18  rs1
//!  bits 18..23  rs2
//!  bits 23..55  imm (32-bit two's complement)
//!  bits 55..64  reserved, must be zero
//! ```
//!
//! A fixed 64-bit word keeps the fetch and I-cache models trivial (the
//! paper's platform likewise uses a fixed-width ISA) while leaving room
//! for full 32-bit immediates. [`encode`] and [`decode`] round-trip for
//! every well-formed instruction — a property the test-suite verifies
//! exhaustively over opcodes and generatively over operand values.

use crate::error::DecodeError;
use crate::inst::Inst;
use crate::op::Opcode;
use crate::reg::NUM_REGS;

/// Bytes occupied by one encoded instruction; PCs advance by this much.
pub const INST_BYTES: u64 = 8;

const RD_SHIFT: u32 = 8;
const RS1_SHIFT: u32 = 13;
const RS2_SHIFT: u32 = 18;
const IMM_SHIFT: u32 = 23;
const REG_MASK: u64 = 0x1f;

/// Encodes an instruction into its 64-bit binary form.
///
/// # Examples
///
/// ```
/// use redsim_isa::{encode, Inst, IntReg, Opcode};
///
/// let i = Inst::rri(Opcode::Addi, IntReg::new(1), IntReg::new(2), -7);
/// let word = encode::encode(&i);
/// assert_eq!(encode::decode(word).unwrap(), i);
/// ```
#[must_use]
pub fn encode(inst: &Inst) -> u64 {
    let opnum = Opcode::ALL
        .iter()
        .position(|&o| o == inst.op)
        .expect("opcode missing from Opcode::ALL") as u64;
    opnum
        | (u64::from(inst.rd) & REG_MASK) << RD_SHIFT
        | (u64::from(inst.rs1) & REG_MASK) << RS1_SHIFT
        | (u64::from(inst.rs2) & REG_MASK) << RS2_SHIFT
        | u64::from(inst.imm as u32) << IMM_SHIFT
}

/// Decodes a 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode number is unassigned or a
/// reserved bit is set.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let opnum = (word & 0xff) as usize;
    let op = *Opcode::ALL
        .get(opnum)
        .ok_or(DecodeError::BadOpcode(opnum as u8))?;
    if word >> (IMM_SHIFT + 32) != 0 {
        return Err(DecodeError::ReservedBits(word));
    }
    let rd = (word >> RD_SHIFT & REG_MASK) as u8;
    let rs1 = (word >> RS1_SHIFT & REG_MASK) as u8;
    let rs2 = (word >> RS2_SHIFT & REG_MASK) as u8;
    debug_assert!((rd as usize) < NUM_REGS);
    let imm = (word >> IMM_SHIFT) as u32 as i32;
    Ok(Inst {
        op,
        rd,
        rs1,
        rs2,
        imm,
    })
}

/// Encodes a full text segment into bytes (little-endian words).
#[must_use]
pub fn encode_text(insts: &[Inst]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insts.len() * INST_BYTES as usize);
    for i in insts {
        out.extend_from_slice(&encode(i).to_le_bytes());
    }
    out
}

/// Decodes a byte slice produced by [`encode_text`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the length is not a multiple of
/// [`INST_BYTES`] or any word fails to decode.
pub fn decode_text(bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    if !bytes.len().is_multiple_of(INST_BYTES as usize) {
        return Err(DecodeError::TruncatedText(bytes.len()));
    }
    bytes
        .chunks_exact(INST_BYTES as usize)
        .map(|c| decode(u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::IntReg;

    #[test]
    fn round_trip_every_opcode() {
        for op in Opcode::ALL {
            let i = Inst {
                op,
                rd: 3,
                rs1: 7,
                rs2: 31,
                imm: -123456,
            };
            assert_eq!(decode(encode(&i)).unwrap(), i, "{op}");
        }
    }

    #[test]
    fn bad_opcode_is_rejected() {
        assert!(matches!(decode(0xff), Err(DecodeError::BadOpcode(0xff))));
    }

    #[test]
    fn reserved_bits_are_rejected() {
        let w = encode(&Inst::NOP) | 1 << 63;
        assert!(matches!(decode(w), Err(DecodeError::ReservedBits(_))));
    }

    #[test]
    fn text_round_trip() {
        let prog = vec![
            Inst::li(IntReg::new(1), 5),
            Inst::rrr(Opcode::Add, IntReg::new(2), IntReg::new(1), IntReg::new(1)),
            Inst::halt(),
        ];
        let bytes = encode_text(&prog);
        assert_eq!(bytes.len(), 24);
        assert_eq!(decode_text(&bytes).unwrap(), prog);
    }

    #[test]
    fn truncated_text_is_rejected() {
        let bytes = encode_text(&[Inst::NOP]);
        assert!(matches!(
            decode_text(&bytes[..5]),
            Err(DecodeError::TruncatedText(5))
        ));
    }

    #[test]
    fn immediate_extremes_round_trip() {
        for imm in [i32::MIN, -1, 0, 1, i32::MAX] {
            let i = Inst::li(IntReg::new(9), imm);
            assert_eq!(decode(encode(&i)).unwrap().imm, imm);
        }
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_util::Rng;

    #[test]
    fn any_wellformed_inst_round_trips() {
        let mut rng = Rng::new(0x00E7_C0DE);
        // Exhaustive over opcodes × many operand draws: strictly more
        // coverage than the former 256-case proptest run.
        for op in Opcode::ALL {
            for _ in 0..32 {
                let i = Inst {
                    op,
                    rd: rng.any_u8() % 32,
                    rs1: rng.any_u8() % 32,
                    rs2: rng.any_u8() % 32,
                    imm: rng.any_i32(),
                };
                assert_eq!(decode(encode(&i)).unwrap(), i, "{i:?}");
            }
        }
    }

    #[test]
    fn decode_never_panics_and_registers_stay_in_range() {
        let mut rng = Rng::new(0x00E7_C0DF);
        for _ in 0..4096 {
            let word = rng.next_u64();
            if let Ok(i) = decode(word) {
                assert!(i.rd < 32 && i.rs1 < 32 && i.rs2 < 32, "word {word:#x}");
            }
        }
    }
}
