#![warn(missing_docs)]

//! # redsim-isa
//!
//! The instruction set, assembler, disassembler and functional emulator
//! underpinning the `redsim` temporal-redundancy simulation stack.
//!
//! The ISA is a 64-bit load/store RISC machine in the spirit of the
//! SimpleScalar PISA used by the original DIE-IRB paper (Parashar,
//! Gurumurthi & Sivasubramaniam, ISCA 2004): 32 integer registers, 32
//! floating-point registers, single-result instructions, and explicit
//! branch/jump control flow. Every instruction has a fixed-width 64-bit
//! binary encoding ([`encode`]) that round-trips losslessly.
//!
//! The crate provides three layers:
//!
//! * **Static program representation** — [`Inst`], [`Opcode`], [`Program`],
//!   built either programmatically or with the two-pass [`asm`] assembler.
//! * **Functional emulation** — [`emu::Emulator`] executes a [`Program`]
//!   architecturally and emits a committed dynamic-instruction trace of
//!   [`trace::DynInst`] records carrying operand *values*, results,
//!   effective addresses and branch outcomes. The timing models in
//!   `redsim-core` consume this trace, and the instruction-reuse behaviour
//!   studied by the paper emerges from the real values recorded here.
//! * **Tooling** — a [`disasm`] disassembler for debugging and reporting.
//!
//! # Examples
//!
//! Assemble and run a tiny program:
//!
//! ```
//! use redsim_isa::{asm::assemble, emu::Emulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r#"
//!         .text
//!     main:
//!         li   a0, 10
//!         li   a1, 0
//!     loop:
//!         add  a1, a1, a0
//!         addi a0, a0, -1
//!         bne  a0, zero, loop
//!         puti a1
//!         halt
//!     "#,
//! )?;
//! let mut emu = Emulator::new(&program);
//! emu.run(1_000_000)?;
//! assert_eq!(emu.output_ints(), &[55]);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod container;
pub mod disasm;
pub mod emu;
pub mod encode;
mod error;
mod inst;
mod op;
mod program;
mod reg;
pub mod trace;
pub mod trace_io;

pub use error::{AsmError, DecodeError, EmuError};
pub use inst::{Inst, SrcRegs};
pub use op::{MemWidth, OpClass, Opcode, OperandSig};
pub use program::{Program, ProgramBuilder, Symbol, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::{FpReg, IntReg, NUM_REGS};
