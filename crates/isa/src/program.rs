//! Linked program images.

use std::collections::BTreeMap;
use std::fmt;

use crate::encode::INST_BYTES;
use crate::inst::Inst;

/// Default base address of the text segment.
pub const TEXT_BASE: u64 = 0x1000;
/// Default base address of the data segment.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Initial stack pointer handed to programs (stack grows down).
pub const STACK_TOP: u64 = 0x7fff_fff0;

/// A named address in a program image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// The label name as written in the source.
    pub name: String,
    /// The absolute address the label resolved to.
    pub addr: u64,
}

/// A fully linked program: text, data, entry point and symbol table.
///
/// Build one with the [`asm`](crate::asm) assembler or programmatically
/// with [`ProgramBuilder`].
///
/// # Examples
///
/// ```
/// use redsim_isa::{Inst, IntReg, ProgramBuilder};
///
/// let program = ProgramBuilder::new()
///     .inst(Inst::li(IntReg::arg(0), 42))
///     .inst(Inst::halt())
///     .build();
/// assert_eq!(program.text().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    text: Vec<Inst>,
    text_base: u64,
    data: Vec<u8>,
    data_base: u64,
    entry: u64,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// The instructions of the text segment, in address order.
    #[must_use]
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// Base address of the text segment.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// One past the last text address.
    #[must_use]
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64 * INST_BYTES
    }

    /// Initial contents of the data segment.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address of the data segment.
    #[must_use]
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// The entry-point address.
    #[must_use]
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Looks up a label's address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Iterates over all symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.symbols.iter().map(|(name, &addr)| Symbol {
            name: name.clone(),
            addr,
        })
    }

    /// The instruction at `pc`, if `pc` lies within the text segment and
    /// is instruction-aligned.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if pc < self.text_base || !(pc - self.text_base).is_multiple_of(INST_BYTES) {
            return None;
        }
        self.text.get(((pc - self.text_base) / INST_BYTES) as usize)
    }

    /// The address of the `index`-th instruction.
    #[must_use]
    pub fn addr_of(&self, index: usize) -> u64 {
        self.text_base + index as u64 * INST_BYTES
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} insts at {:#x}, {} data bytes at {:#x}, entry {:#x}",
            self.text.len(),
            self.text_base,
            self.data.len(),
            self.data_base,
            self.entry
        )
    }
}

/// Incremental builder for [`Program`] images.
///
/// Useful for tests and generated workloads that construct instruction
/// sequences programmatically instead of via assembly source.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    text: Vec<Inst>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u64>,
    entry: Option<u64>,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default segment layout.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one instruction; returns the builder for chaining.
    #[must_use]
    pub fn inst(mut self, inst: Inst) -> Self {
        self.text.push(inst);
        self
    }

    /// Appends many instructions.
    #[must_use]
    pub fn insts<I: IntoIterator<Item = Inst>>(mut self, insts: I) -> Self {
        self.text.extend(insts);
        self
    }

    /// Defines a label at the current end of text.
    #[must_use]
    pub fn label(mut self, name: &str) -> Self {
        let addr = TEXT_BASE + self.text.len() as u64 * INST_BYTES;
        self.symbols.insert(name.to_owned(), addr);
        self
    }

    /// The address the next appended instruction will receive.
    #[must_use]
    pub fn here(&self) -> u64 {
        TEXT_BASE + self.text.len() as u64 * INST_BYTES
    }

    /// Appends raw bytes to the data segment, returning their address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends 64-bit little-endian words to the data segment,
    /// returning their base address.
    pub fn data_words(&mut self, words: &[u64]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Reserves `n` zeroed bytes in the data segment, returning their
    /// base address.
    pub fn data_space(&mut self, n: usize) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Overrides the entry point (defaults to the first instruction).
    #[must_use]
    pub fn entry(mut self, addr: u64) -> Self {
        self.entry = Some(addr);
        self
    }

    /// Finalizes the image.
    #[must_use]
    pub fn build(self) -> Program {
        Program {
            entry: self.entry.unwrap_or(TEXT_BASE),
            text: self.text,
            text_base: TEXT_BASE,
            data: self.data,
            data_base: DATA_BASE,
            symbols: self.symbols,
        }
    }
}

pub(crate) fn program_from_parts(
    text: Vec<Inst>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u64>,
    entry: u64,
) -> Program {
    Program {
        text,
        text_base: TEXT_BASE,
        data,
        data_base: DATA_BASE,
        entry,
        symbols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::IntReg;

    #[test]
    fn builder_lays_out_text() {
        let p = ProgramBuilder::new()
            .label("main")
            .inst(Inst::li(IntReg::new(1), 1))
            .label("next")
            .inst(Inst::halt())
            .build();
        assert_eq!(p.symbol("main"), Some(TEXT_BASE));
        assert_eq!(p.symbol("next"), Some(TEXT_BASE + INST_BYTES));
        assert_eq!(p.entry(), TEXT_BASE);
        assert_eq!(p.text_end(), TEXT_BASE + 2 * INST_BYTES);
    }

    #[test]
    fn fetch_respects_bounds_and_alignment() {
        let p = ProgramBuilder::new().inst(Inst::halt()).build();
        assert!(p.fetch(TEXT_BASE).is_some());
        assert!(p.fetch(TEXT_BASE + 4).is_none());
        assert!(p.fetch(TEXT_BASE + INST_BYTES).is_none());
        assert!(p.fetch(0).is_none());
    }

    #[test]
    fn data_allocation_is_sequential() {
        let mut b = ProgramBuilder::new();
        let a0 = b.data_words(&[1, 2]);
        let a1 = b.data_space(3);
        let a2 = b.data_bytes(&[9]);
        assert_eq!(a0, DATA_BASE);
        assert_eq!(a1, DATA_BASE + 16);
        assert_eq!(a2, DATA_BASE + 19);
        let p = b.inst(Inst::halt()).build();
        assert_eq!(p.data().len(), 20);
        assert_eq!(p.data()[0], 1);
        assert_eq!(p.data()[16..19], [0, 0, 0]);
    }

    #[test]
    fn symbols_iterate_in_name_order() {
        let p = ProgramBuilder::new()
            .label("zeta")
            .inst(Inst::NOP)
            .label("alpha")
            .inst(Inst::halt())
            .build();
        let names: Vec<String> = p.symbols().map(|s| s.name).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn addr_of_matches_fetch() {
        let p = ProgramBuilder::new()
            .inst(Inst::NOP)
            .inst(Inst::rri(Opcode::Addi, IntReg::new(1), IntReg::new(1), 1))
            .build();
        let a = p.addr_of(1);
        assert_eq!(p.fetch(a).unwrap().op, Opcode::Addi);
    }
}
