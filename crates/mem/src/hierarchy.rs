//! Two-level memory hierarchy: split L1s, unified L2, flat memory.

use crate::cache::{Cache, CacheConfig, CacheStats, Replacement};

/// A level of the hierarchy, for stats queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// L1 instruction cache.
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2.
    L2,
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Flat main-memory latency in cycles.
    pub mem_latency: u64,
}

impl HierarchyConfig {
    /// The paper's baseline hierarchy: 32 KB 2-way L1I (1 cycle),
    /// 32 KB 4-way L1D (2 cycles), 512 KB 8-way unified L2 (12 cycles),
    /// 100-cycle memory.
    #[must_use]
    pub fn paper_baseline() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                assoc: 2,
                replacement: Replacement::Lru,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                assoc: 4,
                replacement: Replacement::Lru,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                assoc: 8,
                replacement: Replacement::Lru,
                hit_latency: 12,
            },
            mem_latency: 100,
        }
    }

    /// A small hierarchy for fast unit tests: 1 KB L1s, 8 KB L2,
    /// 50-cycle memory.
    #[must_use]
    pub fn tiny() -> Self {
        let l1 = CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 2,
            replacement: Replacement::Lru,
            hit_latency: 1,
        };
        HierarchyConfig {
            l1i: l1,
            l1d: CacheConfig {
                hit_latency: 2,
                ..l1
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 64,
                assoc: 4,
                replacement: Replacement::Lru,
                hit_latency: 8,
            },
            mem_latency: 50,
        }
    }
}

/// The L1I/L1D/L2/memory timing model.
///
/// Each access returns the total latency in cycles from the request
/// reaching the L1 to the data being available. Misses propagate down,
/// accumulating each level's hit latency along the way; outstanding
/// misses are implicitly overlappable (the out-of-order core decides how
/// much of the latency it can hide).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    mem_latency: u64,
    mem_accesses: u64,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry is invalid.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            mem_latency: config.mem_latency,
            mem_accesses: 0,
        }
    }

    fn through_l2(&mut self, addr: u64, write_allocated_dirty: bool) -> u64 {
        let l2 = self.l2.access(addr, write_allocated_dirty);
        if l2.hit {
            self.l2.config().hit_latency
        } else {
            self.mem_accesses += 1;
            self.l2.config().hit_latency + self.mem_latency
        }
    }

    /// An instruction fetch of the line containing `addr`.
    ///
    /// Returns the access latency in cycles.
    pub fn fetch_inst(&mut self, addr: u64) -> u64 {
        let l1 = self.l1i.access(addr, false);
        let lat = self.l1i.config().hit_latency;
        if l1.hit {
            lat
        } else {
            lat + self.through_l2(addr, false)
        }
    }

    /// A data read at `addr`. Returns the access latency in cycles.
    pub fn read_data(&mut self, addr: u64) -> u64 {
        self.data_access(addr, false)
    }

    /// A data write at `addr` (write-allocate). Returns the latency in
    /// cycles for the line to be owned by the L1.
    pub fn write_data(&mut self, addr: u64) -> u64 {
        self.data_access(addr, true)
    }

    fn data_access(&mut self, addr: u64, write: bool) -> u64 {
        let l1 = self.l1d.access(addr, write);
        let lat = self.l1d.config().hit_latency;
        if l1.hit {
            lat
        } else {
            // A dirty L1 eviction is absorbed by the (write-back) L2:
            // mark the victim's line dirty there. The victim address is
            // not tracked; charging the writeback to the L2 occupancy
            // (not latency) matches SimpleScalar's approximation.
            lat + self.through_l2(addr, false)
        }
    }

    /// Statistics for one level.
    #[must_use]
    pub fn stats(&self, level: Level) -> &CacheStats {
        match level {
            Level::L1I => self.l1i.stats(),
            Level::L1D => self.l1d.stats(),
            Level::L2 => self.l2.stats(),
        }
    }

    /// Number of requests that reached main memory.
    #[must_use]
    pub fn mem_accesses(&self) -> u64 {
        self.mem_accesses
    }

    /// Invalidates all caches and clears statistics.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
        self.mem_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn cold_access_pays_full_path() {
        let mut h = h();
        // L1D (2) + L2 (8) + mem (50)
        assert_eq!(h.read_data(0x4000), 60);
        assert_eq!(h.read_data(0x4000), 2, "now an L1 hit");
        assert_eq!(h.mem_accesses(), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = h();
        h.read_data(0x4000);
        // Evict 0x4000 from the tiny 2-way L1 (16 sets x 32B): lines
        // 0x4000 + k*512 map to the same L1 set.
        h.read_data(0x4000 + 512);
        h.read_data(0x4000 + 1024);
        let lat = h.read_data(0x4000);
        assert_eq!(lat, 2 + 8, "L1 miss, L2 hit");
    }

    #[test]
    fn inst_and_data_paths_are_split() {
        let mut h = h();
        let inst_cold = h.fetch_inst(0x1000);
        assert_eq!(inst_cold, 1 + 8 + 50);
        // A data access to the same line misses L1D but hits unified L2.
        assert_eq!(h.read_data(0x1000), 2 + 8);
        assert_eq!(h.stats(Level::L1I).accesses, 1);
        assert_eq!(h.stats(Level::L1D).accesses, 1);
        assert_eq!(h.stats(Level::L2).accesses, 2);
    }

    #[test]
    fn writes_allocate() {
        let mut h = h();
        h.write_data(0x2000);
        assert_eq!(h.read_data(0x2000), 2);
    }

    #[test]
    fn paper_baseline_latencies() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_baseline());
        assert_eq!(h.read_data(0x10_0000), 2 + 12 + 100);
        assert_eq!(h.read_data(0x10_0000), 2);
        assert_eq!(h.fetch_inst(0x1000), 1 + 12 + 100);
        assert_eq!(h.fetch_inst(0x1000), 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = h();
        h.read_data(0x4000);
        h.reset();
        assert_eq!(h.read_data(0x4000), 60);
        assert_eq!(h.stats(Level::L1D).accesses, 1);
    }

    #[test]
    fn sequential_stream_amortizes_line_fills() {
        let mut h = h();
        let mut total = 0;
        for i in 0..64u64 {
            total += h.read_data(0x8000 + i * 8);
        }
        // 64 8-byte reads span 16 L1 lines (32B) and 8 L2 lines (64B):
        // 8 full misses, 8 L1-miss/L2-hits, 48 L1 hits.
        let expected = 8 * 60 + 8 * 10 + 48 * 2;
        assert_eq!(total, expected);
    }
}
