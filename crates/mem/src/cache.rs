//! Generic set-associative cache model.

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict ways in fill order.
    Fifo,
    /// Evict a pseudo-random way (xorshift, deterministic per cache).
    Random,
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u64,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Cycles for a hit in this cache.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.validate();
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// Checks the geometry: power-of-two line size and set count,
    /// capacity divisible by `line × assoc`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on an invalid geometry.
    pub fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.assoc),
            "capacity {} not divisible by line {} x assoc {}",
            self.size_bytes,
            self.line_bytes,
            self.assoc
        );
        let sets = self.size_bytes / (self.line_bytes * self.assoc);
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room (miss only).
    pub writeback: bool,
}

/// Hit/miss/writeback counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// LRU stamp or FIFO fill order, depending on policy.
    order: u64,
}

/// A set-associative, write-back/write-allocate cache.
///
/// # Examples
///
/// ```
/// use redsim_mem::{Cache, CacheConfig, Replacement};
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 1024,
///     line_bytes: 32,
///     assoc: 2,
///     replacement: Replacement::Lru,
///     hit_latency: 1,
/// });
/// assert!(!c.access(0x40, false).hit);
/// assert!(c.access(0x40, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    rng: redsim_util::SplitMix64,
    /// Geometry cached at construction — `set_index`/`tag` run on every
    /// access, and re-deriving (and re-validating) the set count there
    /// dominated the access cost.
    set_mask: u64,
    line_shift: u32,
    tag_shift: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid ([`CacheConfig::validate`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let sets = config.num_sets();
        let total = (sets * config.assoc) as usize;
        let line_shift = config.line_bytes.trailing_zeros();
        Cache {
            config,
            lines: vec![Line::default(); total],
            stats: CacheStats::default(),
            tick: 0,
            rng: redsim_util::SplitMix64::new(0x9e37_79b9_7f4a_7c15),
            set_mask: sets - 1,
            line_shift,
            tag_shift: line_shift + sets.trailing_zeros(),
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    fn next_random(&mut self) -> u64 {
        // Deterministic and seedless, so identical runs produce
        // identical timing.
        self.rng.next_u64()
    }

    /// Performs one access, allocating on miss.
    ///
    /// `write` marks the line dirty (write-allocate, write-back).
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let assoc = self.config.assoc as usize;
        let base = set * assoc;

        // Probe.
        for way in 0..assoc {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                self.stats.hits += 1;
                if write {
                    line.dirty = true;
                }
                if self.config.replacement == Replacement::Lru {
                    line.order = self.tick;
                }
                return AccessOutcome {
                    hit: true,
                    writeback: false,
                };
            }
        }

        // Miss: choose a victim.
        let victim = self.choose_victim(base, assoc);
        let line = &mut self.lines[base + victim];
        let writeback = line.valid && line.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *line = Line {
            valid: true,
            dirty: write,
            tag,
            order: self.tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    fn choose_victim(&mut self, base: usize, assoc: usize) -> usize {
        // Prefer an invalid way.
        for way in 0..assoc {
            if !self.lines[base + way].valid {
                return way;
            }
        }
        match self.config.replacement {
            Replacement::Lru | Replacement::Fifo => (0..assoc)
                .min_by_key(|&w| self.lines[base + w].order)
                .expect("assoc >= 1"),
            Replacement::Random => (self.next_random() % assoc as u64) as usize,
        }
    }

    /// Probes for a line without updating any state (for tests/debug).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let assoc = self.config.assoc as usize;
        (0..assoc).any(|w| {
            let l = &self.lines[set * assoc + w];
            l.valid && l.tag == tag
        })
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.stats = CacheStats::default();
        self.tick = 0;
        self.rng = redsim_util::SplitMix64::new(0x9e37_79b9_7f4a_7c15);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(assoc: u64, replacement: Replacement) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 64 * assoc,
            line_bytes: 32,
            assoc,
            replacement,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, Replacement::Lru);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x11f, false).hit, "same line");
        assert!(!c.access(0x120, false).hit, "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 sets x 2 ways; lines mapping to set 0: 0x00, 0x40, 0x80...
        let mut c = small(2, Replacement::Lru);
        c.access(0x00, false);
        c.access(0x40, false);
        c.access(0x00, false); // touch 0x00, making 0x40 the LRU
        c.access(0x80, false); // evicts 0x40
        assert!(c.contains(0x00));
        assert!(!c.contains(0x40));
        assert!(c.contains(0x80));
    }

    #[test]
    fn fifo_evicts_in_fill_order() {
        let mut c = small(2, Replacement::Fifo);
        c.access(0x00, false);
        c.access(0x40, false);
        c.access(0x00, false); // does not refresh FIFO order? it does not
        c.access(0x80, false); // evicts 0x00 (oldest fill)
        assert!(!c.contains(0x00));
        assert!(c.contains(0x40));
    }

    #[test]
    fn writeback_on_dirty_eviction_only() {
        let mut c = small(1, Replacement::Lru);
        c.access(0x00, true); // dirty fill
        let out = c.access(0x40, false); // evicts dirty 0x00
        assert!(out.writeback);
        let out = c.access(0x80, false); // evicts clean 0x40
        assert!(!out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small(1, Replacement::Lru);
        c.access(0x00, false); // clean fill
        c.access(0x00, true); // dirty it
        let out = c.access(0x40, false);
        assert!(out.writeback);
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let mut c = small(2, Replacement::Random);
                (0..64).map(|i| c.access(i * 0x40, false).hit).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = small(2, Replacement::Lru);
        for _ in 0..3 {
            c.access(0x0, false);
        }
        c.access(0x1000, false);
        assert_eq!(c.stats().misses(), 2);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = small(2, Replacement::Lru);
        c.access(0x0, true);
        c.reset();
        assert!(!c.contains(0x0));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 96,
            line_bytes: 24,
            assoc: 1,
            replacement: Replacement::Lru,
            hit_latency: 1,
        });
    }

    #[test]
    fn fully_associative_never_conflicts_within_capacity() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 32 * 8,
            line_bytes: 32,
            assoc: 8,
            replacement: Replacement::Lru,
            hit_latency: 1,
        });
        for i in 0..8u64 {
            c.access(i * 0x40, false);
        }
        for i in 0..8u64 {
            assert!(c.contains(i * 0x40), "line {i} was evicted prematurely");
        }
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_util::Rng;

    /// Re-accessing an address immediately after it was accessed
    /// always hits (no policy may evict the line it just touched).
    #[test]
    fn immediate_reaccess_hits() {
        let mut rng = Rng::new(0xCA_0001);
        for assoc in 1u64..=4 {
            for _ in 0..16 {
                let mut c = Cache::new(CacheConfig {
                    size_bytes: 4096 * assoc,
                    line_bytes: 64,
                    assoc,
                    replacement: Replacement::Lru,
                    hit_latency: 1,
                });
                for _ in 0..rng.range_u64(1, 200) {
                    let a = rng.below(0x10_0000);
                    c.access(a, false);
                    assert!(c.access(a, false).hit, "assoc={assoc} addr={a:#x}");
                }
            }
        }
    }

    /// hits + misses == accesses, for any access pattern.
    #[test]
    fn stats_are_consistent() {
        let mut rng = Rng::new(0xCA_0002);
        for _ in 0..64 {
            let ops: Vec<(u64, bool)> = (0..rng.index(300))
                .map(|_| (rng.below(0x4000), rng.flip()))
                .collect();
            let mut c = Cache::new(CacheConfig {
                size_bytes: 2048,
                line_bytes: 32,
                assoc: 2,
                replacement: Replacement::Fifo,
                hit_latency: 1,
            });
            for (a, w) in &ops {
                c.access(*a, *w);
            }
            assert_eq!(c.stats().hits + c.stats().misses(), ops.len() as u64);
            assert!(c.stats().writebacks <= c.stats().misses());
        }
    }

    /// A working set no larger than one set's associativity never
    /// conflict-misses after the cold fill.
    #[test]
    fn small_working_set_stays_resident() {
        let mut rng = Rng::new(0xCA_0003);
        for _ in 0..32 {
            let reps = rng.range_u64(1, 20);
            let mut c = Cache::new(CacheConfig {
                size_bytes: 1024,
                line_bytes: 32,
                assoc: 2,
                replacement: Replacement::Lru,
                hit_latency: 1,
            });
            // Two lines in the same set (set count = 16).
            let a = 0x0;
            let b = 32 * 16;
            c.access(a, false);
            c.access(b, false);
            for _ in 0..reps {
                assert!(c.access(a, false).hit);
                assert!(c.access(b, false).hit);
            }
        }
    }
}
