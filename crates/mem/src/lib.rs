#![warn(missing_docs)]

//! # redsim-mem
//!
//! Cache and memory-hierarchy timing models for the redsim stack.
//!
//! The paper's simulation platform (SimpleScalar `sim-outorder`) models a
//! two-level hierarchy: split L1 instruction/data caches over a unified
//! L2, over a fixed-latency DRAM. This crate reproduces that structure:
//!
//! * [`Cache`] — a generic set-associative, write-back/write-allocate
//!   cache with pluggable replacement ([`Replacement`]) and per-cache
//!   [`CacheStats`].
//! * [`Hierarchy`] — L1I + L1D + unified L2 + memory, returning an access
//!   *latency* per reference. Timing is compositional: an L1 miss pays
//!   the L1 latency plus the L2 access, and so on down to memory.
//!
//! The hierarchy is a timing model, not a data store — the functional
//! values live in the emulator's memory (`redsim-isa`). This mirrors
//! trace-driven simulator practice and is sufficient for the paper's
//! question, which is about ALU bandwidth rather than memory behaviour
//! (the DIE design accesses the data cache only *once* per duplicated
//! load/store pair, so the hierarchies seen by SIE and DIE are
//! identical).
//!
//! # Examples
//!
//! ```
//! use redsim_mem::{CacheConfig, Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::paper_baseline());
//! let cold = h.read_data(0x8000);
//! let warm = h.read_data(0x8000);
//! assert!(cold > warm, "second access must hit in L1");
//! ```

mod cache;
mod hierarchy;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats, Replacement};
pub use hierarchy::{Hierarchy, HierarchyConfig, Level};
