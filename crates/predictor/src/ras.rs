//! Return-address stack.

/// A fixed-depth return-address stack.
///
/// Calls push their return address; returns pop the predicted target.
/// On overflow the oldest entry is overwritten (circular), as in real
/// hardware.
///
/// # Examples
///
/// ```
/// use redsim_predictor::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x1008);
/// assert_eq!(ras.pop(), Some(0x1008));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    buf: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates an empty stack holding up to `capacity` addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "return-address stack needs capacity");
        ReturnAddressStack {
            buf: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        self.buf[self.top] = addr;
        self.top = (self.top + 1) % self.buf.len();
        self.depth = (self.depth + 1).min(self.buf.len());
    }

    /// Pops the predicted return target (on a return), or `None` if the
    /// stack has underflowed.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        self.depth -= 1;
        self.top = (self.top + self.buf.len() - 1) % self.buf.len();
        Some(self.buf[self.top])
    }

    /// Current number of live entries.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Empties the stack (e.g. on pipeline recovery in simple models).
    pub fn clear(&mut self) {
        self.depth = 0;
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn wraparound_is_circular() {
        let mut r = ReturnAddressStack::new(2);
        for round in 0..5u64 {
            r.push(round * 10);
            assert_eq!(r.pop(), Some(round * 10));
        }
    }

    #[test]
    fn clear_empties() {
        let mut r = ReturnAddressStack::new(4);
        r.push(7);
        r.clear();
        assert_eq!(r.depth(), 0);
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}
