#![warn(missing_docs)]

//! # redsim-predictor
//!
//! Branch-prediction structures for the redsim front end: direction
//! predictors (bimodal, gshare, two-level local, tournament), a branch
//! target buffer, and a return-address stack.
//!
//! The components are deliberately independent — the out-of-order core
//! composes them per the configured front end. All state updates are
//! explicit so a timing model can choose *when* to train (redsim trains
//! at branch resolution, like SimpleScalar).
//!
//! # Examples
//!
//! ```
//! use redsim_predictor::{Bimodal, DirectionPredictor};
//!
//! let mut p = Bimodal::new(1024);
//! let pc = 0x1000;
//! for _ in 0..4 {
//!     p.update(pc, true);
//! }
//! assert!(p.predict(pc), "a repeatedly taken branch predicts taken");
//! ```

mod btb;
mod counter;
mod direction;
mod ras;

pub use btb::{Btb, BtbConfig};
pub use counter::Counter2;
pub use direction::{
    build_direction, AlwaysTaken, Bimodal, DirectionConfig, DirectionPredictor, Gshare, NeverTaken,
    Tournament, TwoLevelLocal,
};
pub use ras::ReturnAddressStack;
