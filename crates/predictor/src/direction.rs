//! Branch direction predictors.

use crate::counter::Counter2;

/// A conditional-branch direction predictor.
///
/// `predict` is a pure query; `update` trains on the resolved outcome.
/// Timing models call `update` at branch resolution.
pub trait DirectionPredictor: std::fmt::Debug + Send {
    /// Predicts whether the branch at `pc` is taken.
    fn predict(&self, pc: u64) -> bool;
    /// Trains on a resolved outcome.
    fn update(&mut self, pc: u64, taken: bool);
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn index(pc: u64, entries: usize) -> usize {
    // Instruction addresses are 8-byte aligned; drop the low bits.
    ((pc >> 3) as usize) & (entries - 1)
}

fn assert_pow2(entries: usize) {
    assert!(
        entries.is_power_of_two() && entries > 0,
        "predictor table size {entries} must be a power of two"
    );
}

/// Static predict-taken (backward-taken-like upper bound for loops).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken;

impl DirectionPredictor for AlwaysTaken {
    fn predict(&self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _pc: u64, _taken: bool) {}
    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// Static predict-not-taken.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverTaken;

impl DirectionPredictor for NeverTaken {
    fn predict(&self, _pc: u64) -> bool {
        false
    }
    fn update(&mut self, _pc: u64, _taken: bool) {}
    fn name(&self) -> &'static str {
        "never-taken"
    }
}

/// Bimodal predictor: a PC-indexed table of two-bit counters.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert_pow2(entries);
        Bimodal {
            table: vec![Counter2::default(); entries],
        }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[index(pc, self.table.len())].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = index(pc, self.table.len());
        self.table[i].train(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// Gshare: global history XOR PC indexes a counter table.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    history: u64,
    hist_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two and
    /// `hist_bits <= log2(entries)`.
    #[must_use]
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        assert_pow2(entries);
        assert!(
            hist_bits <= entries.trailing_zeros(),
            "history bits {hist_bits} exceed index width"
        );
        Gshare {
            table: vec![Counter2::default(); entries],
            history: 0,
            hist_bits,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.hist_bits) - 1);
        (((pc >> 3) ^ h) as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.idx(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.idx(pc);
        self.table[i].train(taken);
        self.history = self.history << 1 | u64::from(taken);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// Two-level local predictor: per-branch history selects a pattern
/// counter (the Alpha 21264's local component).
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u64>,
    pattern: Vec<Counter2>,
    hist_bits: u32,
}

impl TwoLevelLocal {
    /// Creates a two-level local predictor with `hist_entries` local
    /// history registers of `hist_bits` bits and `2^hist_bits` pattern
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics unless `hist_entries` is a power of two and
    /// `hist_bits <= 20`.
    #[must_use]
    pub fn new(hist_entries: usize, hist_bits: u32) -> Self {
        assert_pow2(hist_entries);
        assert!(
            hist_bits <= 20,
            "local history of {hist_bits} bits is unreasonable"
        );
        TwoLevelLocal {
            histories: vec![0; hist_entries],
            pattern: vec![Counter2::default(); 1 << hist_bits],
            hist_bits,
        }
    }

    fn pattern_idx(&self, pc: u64) -> usize {
        let h = self.histories[index(pc, self.histories.len())];
        (h & ((1 << self.hist_bits) - 1)) as usize
    }
}

impl DirectionPredictor for TwoLevelLocal {
    fn predict(&self, pc: u64) -> bool {
        self.pattern[self.pattern_idx(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pi = self.pattern_idx(pc);
        self.pattern[pi].train(taken);
        let hi = index(pc, self.histories.len());
        self.histories[hi] = self.histories[hi] << 1 | u64::from(taken);
    }

    fn name(&self) -> &'static str {
        "two-level-local"
    }
}

/// Tournament predictor: a chooser table arbitrates between a bimodal
/// and a gshare component (the paper's baseline front end).
#[derive(Debug)]
pub struct Tournament {
    chooser: Vec<Counter2>,
    bimodal: Bimodal,
    gshare: Gshare,
}

impl Tournament {
    /// Creates a tournament predictor; each component gets `entries`
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    #[must_use]
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        assert_pow2(entries);
        Tournament {
            chooser: vec![Counter2::default(); entries],
            bimodal: Bimodal::new(entries),
            gshare: Gshare::new(entries, hist_bits),
        }
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&self, pc: u64) -> bool {
        // Chooser state >= 2 selects gshare.
        if self.chooser[index(pc, self.chooser.len())].predict() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let b = self.bimodal.predict(pc);
        let g = self.gshare.predict(pc);
        if b != g {
            // Train the chooser toward whichever component was right.
            let i = index(pc, self.chooser.len());
            self.chooser[i].train(g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

/// Declarative direction-predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectionConfig {
    /// Static taken.
    AlwaysTaken,
    /// Static not-taken.
    NeverTaken,
    /// Bimodal with the given table size.
    Bimodal {
        /// Counter-table entries (power of two).
        entries: usize,
    },
    /// Gshare with the given table size and history length.
    Gshare {
        /// Counter-table entries (power of two).
        entries: usize,
        /// Global history bits.
        hist_bits: u32,
    },
    /// Two-level local predictor.
    TwoLevelLocal {
        /// Local-history registers (power of two).
        hist_entries: usize,
        /// Local history bits (pattern table is `2^hist_bits`).
        hist_bits: u32,
    },
    /// Tournament of bimodal + gshare with a chooser.
    Tournament {
        /// Per-component table entries (power of two).
        entries: usize,
        /// Gshare history bits.
        hist_bits: u32,
    },
}

impl DirectionConfig {
    /// The paper's baseline: a 4K-entry tournament predictor with
    /// 12 bits of global history.
    #[must_use]
    pub fn paper_baseline() -> Self {
        DirectionConfig::Tournament {
            entries: 4096,
            hist_bits: 12,
        }
    }
}

/// Instantiates a predictor from its configuration.
///
/// # Examples
///
/// ```
/// use redsim_predictor::{build_direction, DirectionConfig};
///
/// let p = build_direction(DirectionConfig::Bimodal { entries: 256 });
/// assert_eq!(p.name(), "bimodal");
/// ```
#[must_use]
pub fn build_direction(config: DirectionConfig) -> Box<dyn DirectionPredictor> {
    match config {
        DirectionConfig::AlwaysTaken => Box::new(AlwaysTaken),
        DirectionConfig::NeverTaken => Box::new(NeverTaken),
        DirectionConfig::Bimodal { entries } => Box::new(Bimodal::new(entries)),
        DirectionConfig::Gshare { entries, hist_bits } => Box::new(Gshare::new(entries, hist_bits)),
        DirectionConfig::TwoLevelLocal {
            hist_entries,
            hist_bits,
        } => Box::new(TwoLevelLocal::new(hist_entries, hist_bits)),
        DirectionConfig::Tournament { entries, hist_bits } => {
            Box::new(Tournament::new(entries, hist_bits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(p: &mut dyn DirectionPredictor, stream: &[(u64, bool)]) -> f64 {
        let mut right = 0usize;
        for &(pc, taken) in stream {
            if p.predict(pc) == taken {
                right += 1;
            }
            p.update(pc, taken);
        }
        right as f64 / stream.len() as f64
    }

    /// A loop branch: taken 15 times, then not taken, repeated.
    fn loop_stream(pc: u64, trips: usize, iters: usize) -> Vec<(u64, bool)> {
        let mut v = Vec::new();
        for _ in 0..iters {
            for i in 0..trips {
                v.push((pc, i != trips - 1));
            }
        }
        v
    }

    /// Two branches with perfectly correlated outcomes (second equals
    /// the first) — global history should nail the second branch.
    fn correlated_stream(iters: usize) -> Vec<(u64, bool)> {
        let mut v = Vec::new();
        let mut flip = false;
        for _ in 0..iters {
            flip = !flip;
            v.push((0x1000, flip));
            v.push((0x2000, flip));
        }
        v
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(256);
        let acc = accuracy(&mut p, &loop_stream(0x1000, 16, 100));
        assert!(acc > 0.9, "bimodal on a 16-trip loop: {acc}");
    }

    #[test]
    fn gshare_beats_bimodal_on_correlated_branches() {
        let stream = correlated_stream(500);
        let mut bim = Bimodal::new(1024);
        let mut gsh = Gshare::new(1024, 8);
        let acc_b = accuracy(&mut bim, &stream);
        let acc_g = accuracy(&mut gsh, &stream);
        assert!(
            acc_g > acc_b + 0.2,
            "gshare {acc_g} should beat bimodal {acc_b} by a wide margin"
        );
        assert!(acc_g > 0.9);
    }

    #[test]
    fn local_predictor_learns_short_periodic_patterns() {
        // Period-4 pattern T T T N.
        let mut stream = Vec::new();
        for i in 0..2000usize {
            stream.push((0x3000u64, i % 4 != 3));
        }
        let mut local = TwoLevelLocal::new(256, 10);
        let acc = accuracy(&mut local, &stream);
        assert!(acc > 0.95, "local on period-4 pattern: {acc}");
    }

    #[test]
    fn tournament_tracks_the_better_component() {
        let stream = correlated_stream(500);
        let mut t = Tournament::new(1024, 8);
        let acc = accuracy(&mut t, &stream);
        assert!(acc > 0.85, "tournament on correlated stream: {acc}");
    }

    #[test]
    fn statics_do_what_they_say() {
        assert!(AlwaysTaken.predict(0));
        assert!(!NeverTaken.predict(0));
    }

    #[test]
    fn build_direction_constructs_each_variant() {
        for (cfg, name) in [
            (DirectionConfig::AlwaysTaken, "always-taken"),
            (DirectionConfig::NeverTaken, "never-taken"),
            (DirectionConfig::Bimodal { entries: 64 }, "bimodal"),
            (
                DirectionConfig::Gshare {
                    entries: 64,
                    hist_bits: 4,
                },
                "gshare",
            ),
            (
                DirectionConfig::TwoLevelLocal {
                    hist_entries: 64,
                    hist_bits: 6,
                },
                "two-level-local",
            ),
            (
                DirectionConfig::Tournament {
                    entries: 64,
                    hist_bits: 4,
                },
                "tournament",
            ),
        ] {
            assert_eq!(build_direction(cfg).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_table_panics() {
        let _ = Bimodal::new(100);
    }

    #[test]
    fn aliasing_distinct_pcs_share_counters() {
        let mut p = Bimodal::new(4);
        // PCs 8 bytes apart with a 4-entry table: pc>>3 mod 4 collides
        // every 4 instructions.
        p.update(0x1000, true);
        p.update(0x1000, true);
        assert!(
            p.predict(0x1000 + 4 * 8),
            "aliased pc shares the trained counter"
        );
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_util::Rng;

    const CONFIGS: [DirectionConfig; 6] = [
        DirectionConfig::AlwaysTaken,
        DirectionConfig::NeverTaken,
        DirectionConfig::Bimodal { entries: 64 },
        DirectionConfig::Gshare {
            entries: 64,
            hist_bits: 5,
        },
        DirectionConfig::TwoLevelLocal {
            hist_entries: 32,
            hist_bits: 6,
        },
        DirectionConfig::Tournament {
            entries: 64,
            hist_bits: 5,
        },
    ];

    /// Any predictor, fed any branch stream, stays deterministic:
    /// the same stream yields the same prediction sequence.
    #[test]
    fn predictors_are_deterministic() {
        let mut rng = Rng::new(0xD1_0001);
        for cfg in CONFIGS {
            for _ in 0..8 {
                let stream: Vec<(u64, bool)> = (0..rng.range_u64(1, 200))
                    .map(|_| (rng.below(1 << 16) & !7, rng.flip()))
                    .collect();
                let run = || {
                    let mut p = build_direction(cfg);
                    stream
                        .iter()
                        .map(|&(pc, t)| {
                            let pred = p.predict(pc);
                            p.update(pc, t);
                            pred
                        })
                        .collect::<Vec<bool>>()
                };
                assert_eq!(run(), run(), "{cfg:?}");
            }
        }
    }

    /// A perfectly biased branch converges: after a burst of
    /// training, every dynamic predictor agrees with the bias.
    #[test]
    fn biased_branch_converges() {
        let mut rng = Rng::new(0xD1_0002);
        for cfg in CONFIGS {
            for taken in [false, true] {
                for _ in 0..8 {
                    let pc = rng.below(1 << 12) << 3;
                    let mut p = build_direction(cfg);
                    for _ in 0..8 {
                        p.update(pc, taken);
                    }
                    match cfg {
                        DirectionConfig::AlwaysTaken => assert!(p.predict(pc)),
                        DirectionConfig::NeverTaken => assert!(!p.predict(pc)),
                        _ => assert_eq!(p.predict(pc), taken, "{cfg:?} pc={pc:#x}"),
                    }
                }
            }
        }
    }
}
