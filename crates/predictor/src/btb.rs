//! Branch target buffer.

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub assoc: usize,
}

impl BtbConfig {
    /// The paper's baseline: 2K entries, 4-way (512 sets × 4).
    #[must_use]
    pub fn paper_baseline() -> Self {
        BtbConfig {
            sets: 512,
            assoc: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    target: u64,
    lru: u64,
}

/// A set-associative branch target buffer mapping branch PCs to their
/// most recent taken targets.
///
/// # Examples
///
/// ```
/// use redsim_predictor::{Btb, BtbConfig};
///
/// let mut btb = Btb::new(BtbConfig { sets: 16, assoc: 2 });
/// assert_eq!(btb.lookup(0x1000), None);
/// btb.update(0x1000, 0x2000);
/// assert_eq!(btb.lookup(0x1000), Some(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    entries: Vec<Entry>,
    tick: u64,
    hits: u64,
    lookups: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and `assoc >= 1`.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        assert!(
            config.sets.is_power_of_two(),
            "BTB sets must be a power of two"
        );
        assert!(config.assoc >= 1, "BTB associativity must be at least 1");
        Btb {
            entries: vec![Entry::default(); config.sets * config.assoc],
            config,
            tick: 0,
            hits: 0,
            lookups: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 3) as usize) & (self.config.sets - 1)
    }

    /// Looks up the predicted target for the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        self.tick += 1;
        let base = self.set_of(pc) * self.config.assoc;
        for way in 0..self.config.assoc {
            let e = &mut self.entries[base + way];
            if e.valid && e.tag == pc {
                e.lru = self.tick;
                self.hits += 1;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or refreshes the target for `pc` (called at resolution
    /// of a taken control instruction).
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let base = self.set_of(pc) * self.config.assoc;
        // Update in place if present.
        for way in 0..self.config.assoc {
            let e = &mut self.entries[base + way];
            if e.valid && e.tag == pc {
                e.target = target;
                e.lru = self.tick;
                return;
            }
        }
        // Fill an invalid way, else evict LRU.
        let victim = (0..self.config.assoc)
            .find(|&w| !self.entries[base + w].valid)
            .unwrap_or_else(|| {
                (0..self.config.assoc)
                    .min_by_key(|&w| self.entries[base + w].lru)
                    .expect("assoc >= 1")
            });
        self.entries[base + victim] = Entry {
            valid: true,
            tag: pc,
            target,
            lru: self.tick,
        };
    }

    /// Fraction of lookups that hit; zero before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb() -> Btb {
        Btb::new(BtbConfig { sets: 4, assoc: 2 })
    }

    #[test]
    fn miss_then_hit() {
        let mut b = btb();
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0xdead0);
        assert_eq!(b.lookup(0x1000), Some(0xdead0));
        assert!((b.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_replaces_target() {
        let mut b = btb();
        b.update(0x1000, 0x2000);
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn lru_within_set() {
        let mut b = btb();
        // Three PCs mapping to the same set (4 sets, stride 4*8=32 bytes).
        let (p1, p2, p3) = (0x1000, 0x1000 + 32, 0x1000 + 64);
        b.update(p1, 1);
        b.update(p2, 2);
        b.lookup(p1); // refresh p1
        b.update(p3, 3); // evicts p2
        assert_eq!(b.lookup(p1), Some(1));
        assert_eq!(b.lookup(p2), None);
        assert_eq!(b.lookup(p3), Some(3));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut b = btb();
        for i in 0..4u64 {
            b.update(0x1000 + i * 8, i);
        }
        for i in 0..4u64 {
            assert_eq!(b.lookup(0x1000 + i * 8), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Btb::new(BtbConfig { sets: 3, assoc: 1 });
    }
}
