//! Saturating two-bit counters, the workhorse of dynamic prediction.

/// A two-bit saturating counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. [`Counter2::default`]
/// starts at weakly-not-taken (1), SimpleScalar's initialization.
///
/// # Examples
///
/// ```
/// use redsim_predictor::Counter2;
///
/// let mut c = Counter2::default();
/// assert!(!c.predict());
/// c.train(true);
/// c.train(true);
/// assert!(c.predict());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Counter2(u8);

impl Counter2 {
    /// Creates a counter in the given state.
    ///
    /// # Panics
    ///
    /// Panics if `state > 3`.
    #[must_use]
    pub fn new(state: u8) -> Self {
        assert!(state <= 3, "two-bit counter state must be 0..=3");
        Counter2(state)
    }

    /// The prediction this counter currently makes.
    #[must_use]
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter toward the observed outcome.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// The raw state, `0..=3`.
    #[must_use]
    pub fn state(self) -> u8 {
        self.0
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Counter2(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = Counter2::new(3);
        c.train(true);
        assert_eq!(c.state(), 3);
        let mut c = Counter2::new(0);
        c.train(false);
        assert_eq!(c.state(), 0);
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = Counter2::new(3);
        c.train(false);
        assert!(c.predict(), "strongly-taken survives one not-taken");
        c.train(false);
        assert!(!c.predict());
    }

    #[test]
    #[should_panic(expected = "0..=3")]
    fn bad_state_panics() {
        let _ = Counter2::new(4);
    }
}
