//! HTTP observability-API tests: the `/jobs` results routes, the
//! error surface (404 unknown routes, 405 non-GET methods, the
//! bounded request line), the scrape shape of the request-type and
//! uptime metrics, and an HTTP round-trip of a stored result against
//! a killed-and-restarted server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use redsim_core::ExecMode;
use redsim_serve::engine::{Engine, EngineOptions};
use redsim_serve::net::{serve_tcp, Client, MAX_REQUEST_LINE};
use redsim_serve::spec::JobSpec;
use redsim_util::io::RealIo;
use redsim_util::Json;
use redsim_workloads::Workload;

fn test_dir(tag: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let d = base.join(format!("http-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn options() -> EngineOptions {
    EngineOptions {
        workers: 2,
        trace_budget: 20_000_000,
        ..EngineOptions::default()
    }
}

fn open(dir: &Path) -> Arc<Engine> {
    Arc::new(Engine::open(Arc::new(RealIo), dir, options()).expect("open engine"))
}

/// Binds an ephemeral port and serves `engine` on it until shutdown.
fn spawn_server(engine: &Arc<Engine>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let engine = Arc::clone(engine);
    let handle = std::thread::spawn(move || serve_tcp(&engine, &listener).expect("accept loop"));
    (addr, handle)
}

/// One raw HTTP exchange; returns the full response (headers + body).
fn http(addr: SocketAddr, request: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("http connect");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    s.write_all(request.as_bytes()).expect("http request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("http response");
    resp
}

fn get(addr: SocketAddr, path: &str) -> String {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn body_of(resp: &str) -> &str {
    resp.split_once("\r\n\r\n").expect("header/body split").1
}

/// Submits a spec over the native protocol and waits for its result.
fn submit_and_wait(client: &mut Client, spec: &JobSpec) -> u64 {
    let spec_json = Json::parse(&spec.canonical()).expect("spec json");
    let resp = client
        .request(&Json::obj().field("op", "submit").field("spec", spec_json))
        .expect("submit");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    let id = resp.get("id").and_then(Json::as_u64).expect("id");
    let done = client
        .request(
            &Json::obj()
                .field("op", "wait")
                .field("id", id)
                .field("timeout_ms", 300_000u64),
        )
        .expect("wait");
    assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true), "{done}");
    id
}

/// Reads the value of a single-valued metric line from an exposition.
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
        .trim()
        .parse()
        .expect("metric value parses")
}

#[test]
fn jobs_routes_serve_stored_results_and_attribution() {
    let dir = test_dir("routes");
    let engine = open(&dir);
    let (addr, server) = spawn_server(&engine);
    let mut client = Client::connect(&format!("tcp {addr}")).expect("connect");

    let mut with_attr = JobSpec::new(Workload::Gzip, ExecMode::SieIrb);
    with_attr.attribution = true;
    let plain = JobSpec::new(Workload::Gzip, ExecMode::Sie);
    let attr_id = submit_and_wait(&mut client, &with_attr);
    let plain_id = submit_and_wait(&mut client, &plain);

    // The listing: one entry per journaled job, in id order, done.
    let resp = get(addr, "/jobs");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(resp.contains("Content-Type: application/json"), "{resp}");
    let listing = Json::parse(body_of(&resp)).expect("listing is JSON");
    let Json::Arr(entries) = &listing else {
        panic!("listing is an array: {listing}");
    };
    assert_eq!(entries.len(), 2);
    for (entry, id) in entries.iter().zip([attr_id, plain_id]) {
        assert_eq!(entry.get("id").and_then(Json::as_u64), Some(id));
        assert_eq!(entry.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(entry.get("workload").and_then(Json::as_str), Some("gzip"));
    }

    // `/jobs/<id>` serves the stored payload verbatim.
    let resp = get(addr, &format!("/jobs/{attr_id}"));
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert_eq!(
        body_of(&resp),
        engine.result(attr_id).expect("stored result"),
        "the route must not re-render the stored payload"
    );
    let payload = Json::parse(body_of(&resp)).expect("payload is JSON");
    assert_eq!(payload.get("ok").and_then(Json::as_bool), Some(true));

    // `/jobs/<id>/attribution` extracts just the attribution section,
    // with the full class taxonomy present.
    let resp = get(addr, &format!("/jobs/{attr_id}/attribution"));
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    let attr = Json::parse(body_of(&resp)).expect("attribution is JSON");
    let classes = attr.get("classes").expect("classes section");
    for name in ["alu", "mul", "div", "mem", "branch"] {
        let c = classes
            .get(name)
            .unwrap_or_else(|| panic!("class {name} present"));
        assert!(c.get("lookups").and_then(Json::as_u64).is_some());
    }
    assert!(attr.get("loops").is_some(), "loop breakdown present");
    assert!(attr.get("hot_pcs").is_some(), "hot-PC table present");

    // A job that ran without attribution answers `null`.
    let resp = get(addr, &format!("/jobs/{plain_id}/attribution"));
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert_eq!(body_of(&resp).trim(), "null");

    // Unknown ids and unknown routes are 404; non-GET is 405.
    assert!(get(addr, "/jobs/999").starts_with("HTTP/1.1 404"), "id 999");
    assert!(get(addr, "/jobs/zzz").starts_with("HTTP/1.1 404"), "bad id");
    assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"), "bad path");
    let resp = http(addr, "POST /jobs HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    let resp = http(addr, "DELETE /jobs/0 HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

    client
        .request(&Json::obj().field("op", "shutdown"))
        .expect("shutdown");
    server.join().expect("server thread");
    engine.close().expect("close");
}

#[test]
fn oversized_request_lines_are_rejected_without_buffering_them() {
    let dir = test_dir("oversize");
    let engine = open(&dir);
    let (addr, server) = spawn_server(&engine);

    // A request line far past the cap, never newline-terminated: the
    // server must drop the connection once the cap is crossed rather
    // than buffer the stream indefinitely.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let flood = vec![b'A'; MAX_REQUEST_LINE + 8192];
        // The server may reset mid-write once it gives up reading.
        let _ = s.write_all(&flood);
        let mut resp = String::new();
        let n = s.read_to_string(&mut resp).unwrap_or(0);
        assert_eq!(n, 0, "no response to an oversized request: {resp}");
    }

    // The server survives and still answers well-formed requests.
    let resp = get(addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");

    let mut client = Client::connect(&format!("tcp {addr}")).expect("connect");
    client
        .request(&Json::obj().field("op", "shutdown"))
        .expect("shutdown");
    server.join().expect("server thread");
    engine.close().expect("close");
}

#[test]
fn metrics_expose_uptime_and_per_request_type_counters() {
    let dir = test_dir("scrape");
    let engine = open(&dir);
    let (addr, server) = spawn_server(&engine);
    let mut client = Client::connect(&format!("tcp {addr}")).expect("connect");

    client
        .request(&Json::obj().field("op", "ping"))
        .expect("ping");
    client
        .request(&Json::obj().field("op", "status"))
        .expect("status");
    get(addr, "/jobs");

    let resp = get(addr, "/metrics");
    let text = body_of(&resp);
    // Scrape-shape regression: the new families are typed and present.
    assert!(
        text.contains("# TYPE redsim_serve_uptime_seconds gauge"),
        "{text}"
    );
    for kind in [
        "ping", "submit", "wait", "status", "metrics", "shutdown", "http",
    ] {
        assert!(
            text.contains(&format!("# TYPE serve_requests_{kind}_total counter")),
            "missing serve_requests_{kind}_total:\n{text}"
        );
    }
    assert!(metric_value(text, "redsim_serve_uptime_seconds") >= 0.0);
    assert_eq!(metric_value(text, "serve_requests_ping_total"), 1.0);
    assert_eq!(metric_value(text, "serve_requests_status_total"), 1.0);
    assert_eq!(metric_value(text, "serve_requests_submit_total"), 0.0);
    // /jobs, then this very scrape: the counter includes the request
    // being answered.
    assert!(metric_value(text, "serve_requests_http_total") >= 2.0);

    client
        .request(&Json::obj().field("op", "shutdown"))
        .expect("shutdown");
    server.join().expect("server thread");
    engine.close().expect("close");
}

#[test]
fn stored_results_round_trip_over_http_after_kill_and_restart() {
    let dir = test_dir("restart");

    // Session 1: run one attribution job to completion, then die
    // without the graceful close/compaction (a stand-in for kill -9
    // after the done record hit the journal).
    let mut spec = JobSpec::new(Workload::Gzip, ExecMode::DieIrb);
    spec.attribution = true;
    let (id, reference) = {
        let engine = open(&dir);
        let (id, _cached) = engine.submit(&spec).expect("submit");
        engine.drain().expect("drain");
        let res = engine.result(id).expect("result");
        drop(engine); // no close(): the journal stays in appended form
        (id, res)
    };
    assert!(reference.starts_with("{\"ok\":true"), "{reference}");
    assert!(reference.contains("\"attribution\""), "{reference}");

    // Session 2: a restarted server must serve the byte-identical
    // stored payload over HTTP without re-running anything.
    let engine = open(&dir);
    let (addr, server) = spawn_server(&engine);
    let resp = get(addr, &format!("/jobs/{id}"));
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert_eq!(body_of(&resp), reference, "restart changed a stored result");

    let listing = get(addr, "/jobs");
    assert!(
        body_of(&listing).contains("\"state\":\"done\""),
        "{listing}"
    );

    let mut client = Client::connect(&format!("tcp {addr}")).expect("connect");
    client
        .request(&Json::obj().field("op", "shutdown"))
        .expect("shutdown");
    server.join().expect("server thread");
    engine.close().expect("close");
}
