//! Crash-consistency and cache-effectiveness tests for the serve
//! daemon.
//!
//! The central property: the compacted journal of a fully drained
//! server is a pure function of the submitted specs — independent of
//! worker count, and independent of any `kill -9` schedule, provided
//! the client replays its submissions after a crash (which is safe
//! because submission is idempotent on the spec fingerprint). The
//! kill sweep drives a [`ChaosIo`] kill boundary across *every*
//! journal/store write operation of a run and requires the restarted
//! server to drain to the byte-identical reference journal.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use redsim_core::ExecMode;
use redsim_serve::engine::{Engine, EngineOptions};
use redsim_serve::net::{serve_tcp, Client};
use redsim_serve::spec::JobSpec;
use redsim_util::io::{ChaosConfig, ChaosIo, Io, RealIo};
use redsim_util::Json;
use redsim_workloads::Workload;

fn test_dir(tag: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let d = base.join(format!("serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The submission workload of the recovery tests: distinct specs,
/// two of which share one committed-path trace (same workload and
/// sizing, different mode).
fn specs() -> Vec<JobSpec> {
    let mut watchdogged = JobSpec::new(Workload::Mcf, ExecMode::Die);
    watchdogged.watchdog = Some(50_000_000);
    vec![
        JobSpec::new(Workload::Gzip, ExecMode::Sie),
        JobSpec::new(Workload::Gzip, ExecMode::DieIrb),
        watchdogged,
        JobSpec::new(Workload::Parser, ExecMode::SieIrb),
    ]
}

fn options(workers: usize) -> EngineOptions {
    EngineOptions {
        workers,
        trace_budget: 20_000_000,
        ..EngineOptions::default()
    }
}

/// Submits every spec (ignoring failures — under a chaos kill the
/// tail of the submissions is refused), drains, and closes. Returns
/// whether every step succeeded.
fn run_session(io: Arc<dyn Io>, dir: &Path, workers: usize, specs: &[JobSpec]) -> bool {
    let engine = match Engine::open(io, dir, options(workers)) {
        Ok(e) => e,
        Err(_) => return false,
    };
    let mut clean = true;
    for spec in specs {
        clean &= engine.submit(spec).is_ok();
    }
    clean &= engine.drain().is_ok();
    clean &= engine.close().is_ok();
    clean
}

fn journal_bytes(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("jobs.progress.jsonl")).expect("journal exists")
}

#[test]
fn drained_journal_is_byte_identical_across_worker_counts() {
    let specs = specs();
    let d1 = test_dir("workers-1");
    let d4 = test_dir("workers-4");
    assert!(run_session(Arc::new(RealIo), &d1, 1, &specs));
    assert!(run_session(Arc::new(RealIo), &d4, 4, &specs));
    let reference = journal_bytes(&d1);
    assert_eq!(reference, journal_bytes(&d4));
    assert!(
        reference.lines().count() == 1 + 2 * specs.len(),
        "header + one job and one done record per spec"
    );
    // Every result is a success.
    assert!(reference.matches("\"ok\":true").count() == specs.len());
}

#[test]
fn kill_at_every_write_boundary_then_restart_drains_byte_identical() {
    let specs = specs();

    // Reference: an uninterrupted run.
    let ref_dir = test_dir("kill-ref");
    assert!(run_session(Arc::new(RealIo), &ref_dir, 2, &specs));
    let reference = journal_bytes(&ref_dir);

    // Probe: count the write-path operations of a clean run.
    let probe_dir = test_dir("kill-probe");
    let probe = ChaosIo::new(Arc::new(RealIo), ChaosConfig::quiet(0));
    assert!(run_session(Arc::new(probe.clone()), &probe_dir, 2, &specs));
    let ops = probe.ops();
    assert!(ops > 10, "the run must cross many write boundaries: {ops}");

    // Sweep a hard kill across every boundary. After each kill the
    // "restarted process" (RealIo on the same dir) replays the full
    // submission list — idempotent — and must converge on the
    // reference journal exactly.
    for kill_at in 0..=ops {
        let dir = test_dir(&format!("kill-{kill_at}"));
        let chaos = ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                kill_after_ops: Some(kill_at),
                ..ChaosConfig::quiet(0)
            },
        );
        let clean = run_session(Arc::new(chaos.clone()), &dir, 2, &specs);
        assert!(
            !clean || !chaos.killed(),
            "a killed run must report a failure (kill_at={kill_at})"
        );
        assert!(
            run_session(Arc::new(RealIo), &dir, 2, &specs),
            "restart after kill_at={kill_at} must recover"
        );
        assert_eq!(
            journal_bytes(&dir),
            reference,
            "kill_at={kill_at}: restarted drain diverged from the reference journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn repeat_submissions_never_reassemble_or_reemulate() {
    let dir = test_dir("cache");
    let io: Arc<dyn Io> = Arc::new(RealIo);
    let sie = JobSpec::new(Workload::Gzip, ExecMode::Sie);
    let die_irb = JobSpec::new(Workload::Gzip, ExecMode::DieIrb);
    let die = JobSpec::new(Workload::Gzip, ExecMode::Die);

    let engine = Engine::open(Arc::clone(&io), &dir, options(1)).expect("open");
    let (id0, cached) = engine.submit(&sie).expect("submit");
    assert!(!cached);
    engine.drain().expect("drain");
    assert_eq!(engine.store_stats().builds, 1, "first job builds the trace");

    // Identical re-submission: same id, result already in hand, no
    // queue work at all.
    let (id0_again, cached) = engine.submit(&sie).expect("resubmit");
    assert!(cached, "identical spec deduplicates");
    assert_eq!(id0_again, id0);
    assert!(engine.result(id0).is_some());

    // A different mode over the same workload reuses the in-memory
    // trace: no new build.
    engine.submit(&die_irb).expect("submit");
    engine.drain().expect("drain");
    let stats = engine.store_stats();
    assert_eq!(stats.builds, 1, "the trace is mode-independent");
    assert_eq!(stats.mem_hits, 1);
    engine.close().expect("close");

    // A fresh process finds both the persisted trace and the journaled
    // results: a third mode deserializes the trace instead of
    // re-emulating, and replayed submissions are answered instantly.
    let engine = Engine::open(io, &dir, options(1)).expect("reopen");
    let (_, cached) = engine.submit(&sie).expect("replay");
    assert!(cached, "journaled results survive restart");
    engine.submit(&die).expect("submit");
    engine.drain().expect("drain");
    let stats = engine.store_stats();
    assert_eq!(stats.builds, 0, "no re-assembly, no re-emulation");
    assert_eq!(
        stats.disk_hits, 1,
        "served from the content-addressed store"
    );
    engine.close().expect("close");
}

#[test]
fn tcp_protocol_round_trip_and_http_metrics() {
    let dir = test_dir("tcp");
    let engine = Arc::new(Engine::open(Arc::new(RealIo), &dir, options(2)).expect("open"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_tcp(&engine, &listener).expect("accept loop"))
    };

    let mut client = Client::connect(&format!("tcp {addr}")).expect("connect");
    let pong = client
        .request(&Json::obj().field("op", "ping"))
        .expect("ping");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    let spec = Json::parse(&JobSpec::new(Workload::Gzip, ExecMode::DieIrb).canonical())
        .expect("spec json");
    let submitted = client
        .request(&Json::obj().field("op", "submit").field("spec", spec))
        .expect("submit");
    assert_eq!(submitted.get("ok").and_then(Json::as_bool), Some(true));
    let id = submitted.get("id").and_then(Json::as_u64).expect("id");

    let done = client
        .request(
            &Json::obj()
                .field("op", "wait")
                .field("id", id)
                .field("timeout_ms", 120_000u64),
        )
        .expect("wait");
    assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));
    let res = done.get("res").expect("result payload");
    assert_eq!(res.get("ok").and_then(Json::as_bool), Some(true));
    assert!(res.get("cycles").and_then(Json::as_u64).unwrap_or(0) > 0);

    // Malformed requests keep the connection usable.
    let err = client
        .request(&Json::obj().field("op", "wait"))
        .expect("error response");
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));

    let metrics = client
        .request(&Json::obj().field("op", "metrics"))
        .expect("metrics");
    let text = metrics
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("exposition");
    assert!(text.contains("serve_jobs_submitted_total 1"), "{text}");
    assert!(text.contains("serve_trace_cache_builds_total 1"), "{text}");

    // A plain HTTP scrape gets the same exposition.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).expect("http connect");
        raw.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("http request");
        let mut body = String::new();
        raw.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        raw.read_to_string(&mut body).expect("http response");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(
            body.contains("# TYPE serve_job_latency_ms histogram"),
            "{body}"
        );
    }

    let stopping = client
        .request(&Json::obj().field("op", "shutdown"))
        .expect("shutdown");
    assert_eq!(stopping.get("stopping").and_then(Json::as_bool), Some(true));
    server.join().expect("server thread");
    engine.close().expect("close");
}
