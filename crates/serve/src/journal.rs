//! The durable job journal.
//!
//! One append-only JSONL file per state directory, reusing the
//! campaign manifest's CRC framing ([`frame_record`] /
//! [`unframe_record`]) so every record carries its own checksum:
//!
//! ```text
//! {"kind":"serve-journal","version":1}
//! {"crc":"…","rec":{"kind":"job","id":0,"spec":{…}}}
//! {"crc":"…","rec":{"kind":"done","id":0,"res":{…}}}
//! ```
//!
//! A `job` record is an *acknowledged* submission; a `done` record is
//! its result. The append discipline latches on the first write error
//! (see [`JournalSink`]), so — exactly as in the campaign manifest —
//! only the final line can ever be torn. [`load`] therefore tolerates
//! a defective *last* line (the job or result it carried simply was
//! never acknowledged / re-runs) but refuses interior damage with a
//! typed [`ServeError::Corrupt`].
//!
//! Every result payload is built from integers, bools and strings
//! only — no floats, no wall-clock — so `parse → to_string` is
//! byte-exact and a compacted journal ([`render`]) is a deterministic
//! function of the state it encodes.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use redsim_campaign::manifest::{frame_record, unframe_record};
use redsim_util::io::{write_all_retrying, Io, IoFile};
use redsim_util::Json;

use crate::spec::JobSpec;
use crate::ServeError;

/// Journal format version; a mismatch is a typed refusal, never a
/// half-parse.
pub const JOURNAL_VERSION: u64 = 1;

/// The journal's first line.
#[must_use]
pub fn header_line() -> String {
    Json::obj()
        .field("kind", "serve-journal")
        .field("version", JOURNAL_VERSION)
        .to_string()
}

/// The (unframed) payload of a job record.
#[must_use]
pub fn job_record(id: u64, spec: &JobSpec) -> String {
    format!(
        "{{\"kind\":\"job\",\"id\":{id},\"spec\":{}}}",
        spec.canonical()
    )
}

/// The (unframed) payload of a done record. `res` must be the
/// result's canonical JSON object.
#[must_use]
pub fn done_record(id: u64, res: &str) -> String {
    format!("{{\"kind\":\"done\",\"id\":{id},\"res\":{res}}}")
}

/// Everything a journal encodes: acknowledged jobs, their results,
/// and the next id to assign.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Acknowledged submissions, by id.
    pub specs: BTreeMap<u64, JobSpec>,
    /// Completed results (canonical JSON objects), by id.
    pub results: BTreeMap<u64, String>,
    /// The next job id to assign.
    pub next_id: u64,
}

/// The compacted rendering of a state: header, job records in id
/// order, done records in id order — a pure function of the state, so
/// two drained servers with the same history compact to identical
/// bytes regardless of worker count or append interleaving.
#[must_use]
pub fn render(state: &JournalState) -> String {
    let mut out = String::new();
    out.push_str(&header_line());
    out.push('\n');
    for (&id, spec) in &state.specs {
        out.push_str(&frame_record(&job_record(id, spec)));
        out.push('\n');
    }
    for (&id, res) in &state.results {
        out.push_str(&frame_record(&done_record(id, res)));
        out.push('\n');
    }
    out
}

/// Loads a journal, tolerating a torn tail and refusing interior
/// damage. A missing file is an empty state. A result without its job
/// record cannot occur under the append discipline (the job record is
/// acknowledged first), so it is reported as corruption.
///
/// # Errors
///
/// [`ServeError::Mismatch`] on a foreign header,
/// [`ServeError::Corrupt`] on interior damage, [`ServeError::Io`] when
/// the file exists but cannot be read.
pub fn load(io: &dyn Io, path: &Path) -> Result<JournalState, ServeError> {
    if !io.exists(path) {
        return Ok(JournalState::default());
    }
    let text = io.read_to_string(path)?;
    let mut lines = text.lines().enumerate().peekable();
    match lines.next() {
        None => return Ok(JournalState::default()),
        Some((_, h)) if h == header_line() => {}
        Some((_, h)) => {
            return Err(ServeError::Mismatch(format!(
                "header {h:?} is not a v{JOURNAL_VERSION} serve journal"
            )));
        }
    }
    let mut state = JournalState::default();
    while let Some((idx, line)) = lines.next() {
        let last = lines.peek().is_none();
        match parse_record(line, &mut state) {
            Ok(()) => {}
            Err(detail) if last => {
                // Torn tail: the record was never acknowledged.
                let _ = detail;
            }
            Err(detail) => {
                return Err(ServeError::Corrupt {
                    line: idx + 1,
                    detail,
                });
            }
        }
    }
    state.next_id = state.specs.keys().next_back().map_or(0, |&id| id + 1);
    Ok(state)
}

/// Validates one framed line and folds it into the state. Returns the
/// defect description on failure (the caller decides torn-tail vs
/// interior).
fn parse_record(line: &str, state: &mut JournalState) -> Result<(), String> {
    let payload = unframe_record(line)?;
    let j = Json::parse(payload).map_err(|e| format!("payload is not valid JSON: {e}"))?;
    let id = |j: &Json| -> Result<u64, String> {
        j.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "record has no id".to_owned())
    };
    match j.get("kind").and_then(Json::as_str) {
        Some("job") => {
            let id = id(&j)?;
            let spec = j.get("spec").ok_or("job record has no spec")?;
            let spec = JobSpec::parse(spec)?;
            state.specs.insert(id, spec);
            Ok(())
        }
        Some("done") => {
            let id = id(&j)?;
            if !state.specs.contains_key(&id) {
                return Err(format!("result for unknown job id {id}"));
            }
            let res = j.get("res").ok_or("done record has no res")?;
            // Result payloads are integer/bool/string only, so this
            // re-rendering is byte-exact.
            state.results.insert(id, res.to_string());
            Ok(())
        }
        // A checksummed record of an unknown kind is a format
        // extension written by a newer build, not damage.
        Some(_) => Ok(()),
        None => Err("record has no kind".to_owned()),
    }
}

struct SinkInner {
    file: Option<Box<dyn IoFile>>,
    error: Option<String>,
}

/// An error-latching journal appender: the first failed append (or
/// sync) poisons the sink, every later append fails fast, and the
/// engine stops accepting work — which is what guarantees only the
/// journal's final line can ever be torn.
pub struct JournalSink {
    sync: bool,
    inner: Mutex<SinkInner>,
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalSink").finish_non_exhaustive()
    }
}

impl JournalSink {
    /// Opens the journal for appending. `sync` adds a durability
    /// barrier after every record.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from opening the file.
    pub fn open(io: &dyn Io, path: &Path, sync: bool) -> io::Result<Self> {
        let file = io.open_append(path)?;
        Ok(JournalSink {
            sync,
            inner: Mutex::new(SinkInner {
                file: Some(file),
                error: None,
            }),
        })
    }

    /// Appends one unframed record payload (framing and the newline
    /// are added here). Returns `false` once the sink has latched an
    /// error; [`JournalSink::error`] reports it.
    ///
    /// # Panics
    ///
    /// Panics if the sink mutex was poisoned by a panicking thread.
    pub fn append(&self, payload: &str) -> bool {
        let mut inner = self.inner.lock().expect("journal sink lock");
        if inner.error.is_some() {
            return false;
        }
        let Some(file) = inner.file.as_mut() else {
            return false;
        };
        let line = format!("{}\n", frame_record(payload));
        let outcome = write_all_retrying(file.as_mut(), line.as_bytes()).and_then(|()| {
            if self.sync {
                file.sync()
            } else {
                Ok(())
            }
        });
        if let Err(e) = outcome {
            inner.error = Some(e.to_string());
            inner.file = None;
            return false;
        }
        true
    }

    /// The latched error, if any.
    ///
    /// # Panics
    ///
    /// Panics if the sink mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.inner.lock().expect("journal sink lock").error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_core::ExecMode;
    use redsim_util::io::RealIo;
    use redsim_workloads::Workload;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("redsim-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("test dir");
        d.join("jobs.progress.jsonl")
    }

    fn sample_state() -> JournalState {
        let mut state = JournalState::default();
        state
            .specs
            .insert(0, JobSpec::new(Workload::Gzip, ExecMode::Sie));
        state
            .specs
            .insert(1, JobSpec::new(Workload::Mcf, ExecMode::DieIrb));
        state.results.insert(
            0,
            r#"{"ok":true,"fp":"00000000000000aa","cycles":10}"#.to_owned(),
        );
        state.next_id = 2;
        state
    }

    #[test]
    fn render_load_round_trip_is_byte_exact() {
        let path = tmp("roundtrip");
        let text = render(&sample_state());
        std::fs::write(&path, &text).expect("write");
        let loaded = load(&RealIo, &path).expect("load");
        assert_eq!(loaded.next_id, 2);
        assert_eq!(render(&loaded), text);
    }

    #[test]
    fn torn_tail_is_tolerated_interior_damage_is_typed() {
        let path = tmp("torn");
        let text = render(&sample_state());
        // Tear the final line mid-frame.
        std::fs::write(&path, &text[..text.len() - 10]).expect("write");
        let loaded = load(&RealIo, &path).expect("torn tail tolerated");
        assert_eq!(loaded.specs.len(), 2);
        assert!(loaded.results.is_empty(), "the torn result re-runs");

        // The same damage on an interior line refuses with the line.
        let lines: Vec<&str> = text.lines().collect();
        let damaged = format!("{}\n{}\n{}\n", lines[0], &lines[1][..20], lines[2]);
        match load(&RealIo, &{
            std::fs::write(&path, damaged).expect("write");
            path.clone()
        }) {
            Err(ServeError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn foreign_headers_are_refused_and_missing_files_are_empty() {
        let path = tmp("header");
        assert!(load(&RealIo, &path).expect("missing file").specs.is_empty());
        std::fs::write(&path, "{\"kind\":\"header\",\"version\":2}\n").expect("write");
        assert!(matches!(load(&RealIo, &path), Err(ServeError::Mismatch(_))));
    }

    #[test]
    fn sink_latches_its_first_error() {
        use redsim_util::io::{ChaosConfig, ChaosIo};
        use std::sync::Arc;
        let path = tmp("latch");
        std::fs::write(&path, format!("{}\n", header_line())).expect("seed");
        let io = ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                kill_after_ops: Some(2), // open + first write survive
                ..ChaosConfig::quiet(0)
            },
        );
        let sink = JournalSink::open(&io, &path, false).expect("open");
        assert!(
            sink.append(r#"{"kind":"job","id":0}"#),
            "first append lands"
        );
        assert!(
            !sink.append(r#"{"kind":"job","id":1}"#),
            "killed append fails"
        );
        assert!(sink.error().is_some());
        assert!(
            !sink.append(r#"{"kind":"job","id":2}"#),
            "the sink stays latched"
        );
    }
}
