//! Simulation-as-a-service: a long-running daemon that accepts job
//! submissions over a line-delimited JSON protocol, runs them on a
//! pool of worker threads under the campaign shard supervisor
//! (retry, quarantine, host deadlines), and persists every accepted
//! job through a crash-consistent journal so a `kill -9` at any write
//! boundary loses nothing that was acknowledged.
//!
//! The crate is layered bottom-up:
//!
//! * [`spec`] — the canonical job description ([`spec::JobSpec`]) and
//!   its fx64 fingerprint. The fingerprint is the identity of a job:
//!   submissions are deduplicated on it, so re-submitting after a
//!   crash (or from an impatient client) is idempotent.
//! * [`store`] — a content-addressed trace store. Committed-path
//!   traces are keyed by a fingerprint of the workload *source text*,
//!   its parameters, the emulation budget and a store version standing
//!   in for the assembler/emulator revision; identical requests never
//!   re-assemble or re-emulate, in memory or across restarts.
//! * [`journal`] — the durable job log, reusing the campaign's
//!   CRC-framed manifest format (`{"crc":…,"rec":…}` frames). A torn
//!   tail from a kill mid-append is discarded and its job re-runs;
//!   interior damage is a typed refusal.
//! * [`engine`] — the work queue: submission, worker threads driving
//!   [`redsim_campaign::supervisor::execute_shard`], result
//!   memoization, and the metrics registry behind `/metrics`.
//! * [`net`] — the wire protocol: a blocking accept loop over
//!   `std::net` (TCP, or a unix socket on unix) speaking one JSON
//!   object per line, plus a minimal HTTP/1.1 GET observability API:
//!   `/metrics` for Prometheus scrapers and `/jobs`, `/jobs/<id>`,
//!   `/jobs/<id>/attribution` serving stored deterministic JSON
//!   results.
//!
//! Everything a job produces is a deterministic function of its spec,
//! so the journal a drained server compacts to is byte-identical at
//! any worker count and across any kill/restart schedule — the
//! property `tests/serve_recovery.rs` sweeps for.

pub mod engine;
pub mod journal;
pub mod net;
pub mod spec;
pub mod store;

use std::fmt;
use std::io;

/// A serve-layer failure: host IO on the durable path, journal damage,
/// or a request arriving after shutdown.
#[derive(Debug)]
pub enum ServeError {
    /// Host IO failed on the durable path (journal append, compaction).
    /// The engine latches the first such error and refuses further
    /// work, mirroring the campaign manifest discipline.
    Io(io::Error),
    /// The journal is damaged at rest: an interior record failed its
    /// checksum or does not parse. Restart refuses rather than
    /// silently re-running jobs whose results exist.
    Corrupt {
        /// 1-based journal line of the damaged record.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The journal belongs to a different format version.
    Mismatch(String),
    /// The engine is stopping (or stopped); the request was refused.
    Stopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "journal io error: {e}"),
            ServeError::Corrupt { line, detail } => {
                write!(f, "journal corrupt at line {line}: {detail}")
            }
            ServeError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
            ServeError::Stopped => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
