//! `redsim-serve` — the simulation-as-a-service daemon and its client.
//!
//! ```text
//! redsim-serve serve --state-dir <dir> [options]      run the daemon
//!   --listen <addr>        TCP listen address (default 127.0.0.1:0)
//!   --unix <path>          listen on a unix socket instead
//!   --workers <n>          worker threads (default 1)
//!   --fsync always|critical|never                     (default critical)
//!   --deadline-ms <n>      host wall-clock deadline per attempt
//!
//! redsim-serve submit --connect <ep> --workload <w> [options]
//!   --mode sie|die|die-irb|sie-irb|die-cluster        (default sie)
//!   --full                 default workload sizing (quick otherwise)
//!   --seed <n> --watchdog <n>
//!   --fault-fu <r> --fault-bus <r> --fault-irb <r> --fault-seed <n>
//!   --attribution          carry the reuse-attribution breakdown
//!   --wait                 block for and print the result
//!
//! redsim-serve status|metrics|shutdown --connect <ep>
//! ```
//!
//! `--connect` takes `tcp <addr>`, `unix <path>`, a bare `<host>:<port>`,
//! or `--state-dir <dir>` to read the daemon's `endpoint` file. The
//! daemon prints `listening tcp <addr>` (or `unix`) on stdout and
//! writes the same endpoint to `<state-dir>/endpoint` so scripts can
//! find an ephemeral port.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use redsim_cli::{die, usage, Args};
use redsim_core::FaultConfig;
use redsim_serve::engine::{Engine, EngineOptions};
use redsim_serve::net::{serve_tcp, Client};
use redsim_serve::spec::{mode_from_name, JobSpec};
use redsim_util::io::{FsyncPolicy, RealIo};
use redsim_util::Json;
use redsim_workloads::Workload;

const USAGE: &str = "usage: redsim-serve <serve|submit|status|metrics|shutdown> [options]\n\
     serve    --state-dir <dir> [--listen <addr> | --unix <path>] [--workers n] [--fsync p] [--deadline-ms n]\n\
     submit   --connect <ep> --workload <w> [--mode m] [--full] [--seed n] [--watchdog n] [--attribution] [--wait]\n\
     status | metrics | shutdown   --connect <ep>\n\
     <ep> is `tcp addr`, `unix path`, `addr`, or use --state-dir to read the endpoint file";

fn main() {
    let args = Args::from_env();
    match args.positional().first().map(String::as_str) {
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        Some("status") => cmd_request(&args, &Json::obj().field("op", "status")),
        Some("metrics") => cmd_metrics(&args),
        Some("shutdown") => cmd_request(&args, &Json::obj().field("op", "shutdown")),
        _ => usage(USAGE),
    }
}

fn state_dir(args: &Args) -> PathBuf {
    match args.value_of("--state-dir") {
        Some(d) => PathBuf::from(d),
        None => usage(USAGE),
    }
}

fn cmd_serve(args: &Args) {
    let dir = state_dir(args);
    let workers = args
        .parsed_or("--workers", 1usize)
        .unwrap_or_else(|e| die(&e));
    let fsync = match args.value_of("--fsync") {
        None => FsyncPolicy::default(),
        Some(p) => FsyncPolicy::parse(p).unwrap_or_else(|| die(&format!("bad --fsync `{p}`"))),
    };
    let host_deadline = args.value_of("--deadline-ms").map(|ms| {
        let ms: u64 = ms
            .parse()
            .unwrap_or_else(|_| die(&format!("bad --deadline-ms `{ms}`")));
        std::time::Duration::from_millis(ms)
    });
    let opts = EngineOptions {
        workers,
        fsync,
        host_deadline,
        ..EngineOptions::default()
    };
    let engine = Arc::new(
        Engine::open(Arc::new(RealIo), &dir, opts).unwrap_or_else(|e| die(&e.to_string())),
    );

    if let Some(path) = args.value_of("--unix") {
        serve_on_unix(&engine, &dir, path);
    } else {
        let addr = args.value_of("--listen").unwrap_or("127.0.0.1:0");
        let listener =
            TcpListener::bind(addr).unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
        let local = listener
            .local_addr()
            .unwrap_or_else(|e| die(&format!("local_addr: {e}")));
        announce(&dir, &format!("tcp {local}"));
        serve_tcp(&engine, &listener).unwrap_or_else(|e| die(&format!("accept loop: {e}")));
    }
    engine
        .close()
        .unwrap_or_else(|e| die(&format!("final journal compaction: {e}")));
}

#[cfg(unix)]
fn serve_on_unix(engine: &Arc<Engine>, dir: &Path, path: &str) {
    use redsim_serve::net::serve_unix;
    let _ = std::fs::remove_file(path); // stale socket from a previous run
    let listener = std::os::unix::net::UnixListener::bind(path)
        .unwrap_or_else(|e| die(&format!("bind {path}: {e}")));
    announce(dir, &format!("unix {path}"));
    serve_unix(engine, &listener).unwrap_or_else(|e| die(&format!("accept loop: {e}")));
    let _ = std::fs::remove_file(path);
}

#[cfg(not(unix))]
fn serve_on_unix(_engine: &Arc<Engine>, _dir: &Path, _path: &str) {
    die("--unix is not available on this platform");
}

/// Prints the endpoint and records it in `<state-dir>/endpoint` so
/// scripts can find an ephemeral port.
fn announce(dir: &Path, endpoint: &str) {
    println!("listening {endpoint}");
    if let Err(e) = std::fs::write(dir.join("endpoint"), format!("{endpoint}\n")) {
        eprintln!("warning: could not write endpoint file: {e}");
    }
}

fn connect(args: &Args) -> Client {
    let endpoint = match args.value_of("--connect") {
        Some(ep) => ep.to_owned(),
        None => {
            let dir = state_dir(args);
            let path = dir.join("endpoint");
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())))
        }
    };
    Client::connect(&endpoint).unwrap_or_else(|e| die(&format!("connect {}: {e}", endpoint.trim())))
}

fn cmd_request(args: &Args, req: &Json) {
    let mut client = connect(args);
    let resp = client.request(req).unwrap_or_else(|e| die(&e.to_string()));
    println!("{resp}");
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        std::process::exit(1);
    }
}

fn cmd_metrics(args: &Args) {
    let mut client = connect(args);
    let resp = client
        .request(&Json::obj().field("op", "metrics"))
        .unwrap_or_else(|e| die(&e.to_string()));
    match resp.get("prometheus").and_then(Json::as_str) {
        Some(text) => print!("{text}"),
        None => die(&format!("unexpected response: {resp}")),
    }
}

fn cmd_submit(args: &Args) {
    let workload = args.value_of("--workload").unwrap_or_else(|| usage(USAGE));
    let workload = Workload::from_name(workload)
        .unwrap_or_else(|| die(&format!("unknown workload `{workload}`")));
    let mode = args.value_of("--mode").unwrap_or("sie");
    let mode = mode_from_name(mode).unwrap_or_else(|| die(&format!("unknown mode `{mode}`")));
    let mut spec = JobSpec::new(workload, mode);
    spec.quick = !args.has("--full");
    if let Some(s) = args.value_of("--seed") {
        spec.input_seed = Some(
            s.parse()
                .unwrap_or_else(|_| die(&format!("bad --seed `{s}`"))),
        );
    }
    if let Some(w) = args.value_of("--watchdog") {
        spec.watchdog = Some(
            w.parse()
                .unwrap_or_else(|_| die(&format!("bad --watchdog `{w}`"))),
        );
    }
    let fu: f64 = args
        .parsed_or("--fault-fu", 0.0)
        .unwrap_or_else(|e| die(&e));
    let bus: f64 = args
        .parsed_or("--fault-bus", 0.0)
        .unwrap_or_else(|e| die(&e));
    let irb: f64 = args
        .parsed_or("--fault-irb", 0.0)
        .unwrap_or_else(|e| die(&e));
    if fu != 0.0 || bus != 0.0 || irb != 0.0 {
        spec.faults = Some(FaultConfig {
            fu_rate: fu,
            forward_rate: bus,
            irb_rate: irb,
            seed: args
                .parsed_or("--fault-seed", 0u64)
                .unwrap_or_else(|e| die(&e)),
        });
    }
    spec.attribution = args.has("--attribution");

    let mut client = connect(args);
    let spec_json = Json::parse(&spec.canonical()).expect("canonical spec is JSON");
    let resp = client
        .request(&Json::obj().field("op", "submit").field("spec", spec_json))
        .unwrap_or_else(|e| die(&e.to_string()));
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        die(&format!("submit refused: {resp}"));
    }
    let id = resp
        .get("id")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| die(&format!("unexpected response: {resp}")));
    println!("{resp}");
    if args.has("--wait") {
        let resp = client
            .request(&Json::obj().field("op", "wait").field("id", id))
            .unwrap_or_else(|e| die(&e.to_string()));
        println!("{resp}");
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            std::process::exit(1);
        }
    }
}
