//! A content-addressed trace store.
//!
//! This generalizes the bench harness's per-process `Arc<[DynInst]>`
//! trace cache into a store addressed by *content*, not identity: the
//! key is the fx64 fingerprint of the workload's generated assembly
//! source, its resolved parameters, the emulation budget and
//! [`TRACE_STORE_VERSION`] (standing in for the assembler/emulator
//! revision — bump it whenever their semantics change and every old
//! entry silently misses). Two requests that would emulate the same
//! instruction stream therefore share one trace, within a process via
//! an in-memory map and across processes via `.rtrc` files persisted
//! with [`redsim_util::io::atomic_write`].
//!
//! A disk entry that fails to read (torn by a crash mid-persist, or a
//! foreign format version) is treated as a miss and rebuilt over — the
//! store is a cache, never an authority.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use redsim_isa::trace::DynInst;
use redsim_isa::trace_io;
use redsim_util::hash::fx64;
use redsim_util::io::{atomic_write, Io};
use redsim_workloads::WorkloadError;

use crate::spec::JobSpec;

/// Version of the key derivation *and* of the toolchain whose output
/// the store caches. Part of every key, so bumping it invalidates all
/// prior entries without touching them.
pub const TRACE_STORE_VERSION: u32 = 1;

/// Where a requested trace came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOrigin {
    /// Served from the in-process map.
    Memory,
    /// Deserialized from a persisted `.rtrc` entry.
    Disk,
    /// Assembled and emulated from source (then persisted).
    Built,
}

/// Cumulative store counters — the cache-effectiveness test asserts
/// on `builds` staying flat across repeat submissions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Hits served from the in-process map.
    pub mem_hits: u64,
    /// Hits deserialized from disk.
    pub disk_hits: u64,
    /// Full assemble-and-emulate builds.
    pub builds: u64,
    /// Best-effort persists that failed (the trace is still served).
    pub persist_failures: u64,
}

struct StoreState {
    mem: HashMap<u64, Arc<[DynInst]>>,
    stats: StoreStats,
}

/// The content-addressed trace store. Shared by the engine's worker
/// threads; all state sits behind one mutex, but the expensive build
/// path runs outside it so distinct traces build concurrently.
pub struct TraceStore {
    dir: PathBuf,
    io: Arc<dyn Io>,
    sync: bool,
    state: Mutex<StoreState>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl TraceStore {
    /// Opens (creating) the store directory. `sync` controls whether
    /// persisted entries get a durability barrier before their rename.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from creating the directory.
    pub fn open(io: Arc<dyn Io>, dir: PathBuf, sync: bool) -> io::Result<Self> {
        io.create_dir_all(&dir)?;
        Ok(TraceStore {
            dir,
            io,
            sync,
            state: Mutex::new(StoreState {
                mem: HashMap::new(),
                stats: StoreStats::default(),
            }),
        })
    }

    /// The content address of the trace a spec needs: a fingerprint of
    /// the generated assembly source, the resolved parameters, the
    /// budget and the store version. Execution mode and faults are
    /// deliberately absent — they shape the timing run, not the
    /// committed-path trace.
    #[must_use]
    pub fn trace_key(spec: &JobSpec, budget: u64) -> u64 {
        let params = spec.params();
        let pre_image = format!(
            "redsim-trace-store v{TRACE_STORE_VERSION}\nworkload={}\nscale={}\nseed={}\nbudget={budget}\n--- source ---\n{}",
            spec.workload.name(),
            params.scale,
            params.seed,
            spec.workload.source(params),
        );
        fx64(pre_image.as_bytes())
    }

    /// The on-disk path of a key's entry.
    #[must_use]
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.rtrc"))
    }

    /// Store counters so far.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.state.lock().expect("trace store lock").stats
    }

    /// The trace for a spec: in-memory map, then disk, then a full
    /// assemble-and-emulate build (persisted best-effort for the next
    /// process). Two workers racing on the same key both build; the
    /// first insert wins and both serve identical bytes, so the race
    /// costs time, never correctness.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when the workload fails to assemble or to
    /// halt within `budget` — a deterministic property of the spec.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned by a panicking thread.
    pub fn get(
        &self,
        spec: &JobSpec,
        budget: u64,
    ) -> Result<(Arc<[DynInst]>, TraceOrigin), WorkloadError> {
        let key = Self::trace_key(spec, budget);
        {
            let mut st = self.state.lock().expect("trace store lock");
            if let Some(t) = st.mem.get(&key) {
                let t = Arc::clone(t);
                st.stats.mem_hits += 1;
                return Ok((t, TraceOrigin::Memory));
            }
        }
        let path = self.path_for(key);
        if self.io.exists(&path) {
            if let Some(trace) = read_entry(&path) {
                let trace: Arc<[DynInst]> = trace.into();
                let mut st = self.state.lock().expect("trace store lock");
                st.mem.insert(key, Arc::clone(&trace));
                st.stats.disk_hits += 1;
                return Ok((trace, TraceOrigin::Disk));
            }
        }
        let trace: Arc<[DynInst]> = spec.workload.trace(spec.params(), budget)?.into();
        let persisted = self.persist(&path, &trace).is_ok();
        let mut st = self.state.lock().expect("trace store lock");
        st.mem.insert(key, Arc::clone(&trace));
        st.stats.builds += 1;
        if !persisted {
            st.stats.persist_failures += 1;
        }
        Ok((trace, TraceOrigin::Built))
    }

    fn persist(&self, path: &Path, trace: &[DynInst]) -> io::Result<()> {
        let mut bytes = Vec::new();
        trace_io::write_trace(&mut bytes, trace)
            .map_err(|e| io::Error::other(format!("trace serialization failed: {e}")))?;
        atomic_write(self.io.as_ref(), path, &bytes, self.sync)
    }
}

/// Reads a persisted entry, treating any failure — a torn file, a
/// foreign format version — as a miss. Reads go through `std::fs`
/// directly: the [`Io`] fault seam covers the durability path, and
/// chaos backends pass reads through untouched anyway.
fn read_entry(path: &Path) -> Option<Vec<DynInst>> {
    let file = std::fs::File::open(path).ok()?;
    trace_io::read_trace(std::io::BufReader::new(file)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_core::ExecMode;
    use redsim_util::io::RealIo;
    use redsim_workloads::Workload;

    fn store_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("redsim-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_depend_on_source_params_and_budget_but_not_mode() {
        let a = JobSpec::new(Workload::Gzip, ExecMode::Sie);
        let mut b = a.clone();
        b.mode = ExecMode::DieIrb;
        assert_eq!(
            TraceStore::trace_key(&a, 1000),
            TraceStore::trace_key(&b, 1000),
            "mode shapes the timing run, not the trace"
        );
        let mut c = a.clone();
        c.input_seed = Some(99);
        assert_ne!(
            TraceStore::trace_key(&a, 1000),
            TraceStore::trace_key(&c, 1000)
        );
        let mut d = a.clone();
        d.quick = false;
        assert_ne!(
            TraceStore::trace_key(&a, 1000),
            TraceStore::trace_key(&d, 1000)
        );
        assert_ne!(
            TraceStore::trace_key(&a, 1000),
            TraceStore::trace_key(&a, 2000)
        );
    }

    #[test]
    fn memory_then_disk_then_build_and_a_torn_entry_is_a_miss() {
        let dir = store_dir("tiers");
        let spec = JobSpec::new(Workload::Gzip, ExecMode::Sie);
        let io: Arc<dyn Io> = Arc::new(RealIo);

        let store = TraceStore::open(Arc::clone(&io), dir.clone(), false).expect("open");
        let (t1, o1) = store.get(&spec, 2_000_000).expect("build");
        assert_eq!(o1, TraceOrigin::Built);
        let (t2, o2) = store.get(&spec, 2_000_000).expect("mem hit");
        assert_eq!(o2, TraceOrigin::Memory);
        assert!(Arc::ptr_eq(&t1, &t2), "the in-memory entry is shared");
        assert_eq!(
            store.stats(),
            StoreStats {
                mem_hits: 1,
                builds: 1,
                ..StoreStats::default()
            }
        );

        // A fresh store (new process) finds the persisted entry.
        let store2 = TraceStore::open(Arc::clone(&io), dir.clone(), false).expect("reopen");
        let (t3, o3) = store2.get(&spec, 2_000_000).expect("disk hit");
        assert_eq!(o3, TraceOrigin::Disk);
        assert_eq!(t3.len(), t1.len());
        assert_eq!(store2.stats().builds, 0, "no re-emulation");

        // Tear the entry: the store rebuilds over it instead of failing.
        let path = store2.path_for(TraceStore::trace_key(&spec, 2_000_000));
        let full = std::fs::read(&path).expect("entry exists");
        std::fs::write(&path, &full[..full.len() / 2]).expect("tear");
        let store3 = TraceStore::open(io, dir, false).expect("reopen");
        let (_, o4) = store3.get(&spec, 2_000_000).expect("rebuild");
        assert_eq!(o4, TraceOrigin::Built);
        assert_eq!(
            std::fs::read(&path).expect("entry repaired"),
            full,
            "the rebuilt entry is byte-identical (deterministic emulation)"
        );
    }
}
