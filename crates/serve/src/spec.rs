//! The canonical job description and its fingerprint.
//!
//! A [`JobSpec`] is everything that determines a job's result:
//! workload, execution mode, sizing, input seed, watchdog and fault
//! schedule. Its [`JobSpec::canonical`] JSON rendering has a fixed
//! field order, so [`JobSpec::fingerprint`] — the fx64 hash of those
//! bytes — is a stable identity. The engine deduplicates submissions
//! on it, which is what makes blind re-submission after a crash
//! idempotent.

use redsim_bench::Job;
use redsim_core::{ExecMode, FaultConfig, MachineConfig};
use redsim_util::hash::fx64;
use redsim_util::Json;
use redsim_workloads::{Params, Workload};

/// Instruction budget handed to the functional emulator when a trace
/// is materialized — the same ceiling the bench harness uses.
pub const DEFAULT_TRACE_BUDGET: u64 = 200_000_000;

/// The wire spelling of an execution mode (matches `redsim-sim
/// --mode`).
#[must_use]
pub fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Sie => "sie",
        ExecMode::Die => "die",
        ExecMode::DieIrb => "die-irb",
        ExecMode::SieIrb => "sie-irb",
        ExecMode::DieCluster => "die-cluster",
    }
}

/// Parses the wire spelling of an execution mode.
#[must_use]
pub fn mode_from_name(s: &str) -> Option<ExecMode> {
    Some(match s {
        "sie" => ExecMode::Sie,
        "die" => ExecMode::Die,
        "die-irb" => ExecMode::DieIrb,
        "sie-irb" => ExecMode::SieIrb,
        "die-cluster" => ExecMode::DieCluster,
        _ => return None,
    })
}

/// A complete, deterministic description of one simulation job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The workload to simulate.
    pub workload: Workload,
    /// The execution mode.
    pub mode: ExecMode,
    /// Tiny (`true`) or default workload sizing.
    pub quick: bool,
    /// Input-seed override for the workload's data, if any.
    pub input_seed: Option<u64>,
    /// Simulated-cycle watchdog ceiling, if any.
    pub watchdog: Option<u64>,
    /// Deterministic fault-injection schedule, if any.
    pub faults: Option<FaultConfig>,
    /// Reuse attribution: when `true` the result payload carries the
    /// opcode-class × PC × loop breakdown. Rendered in the canonical
    /// form only when set, so pre-attribution fingerprints are
    /// unchanged.
    pub attribution: bool,
}

impl JobSpec {
    /// A quick job with no seed override, watchdog or faults.
    #[must_use]
    pub fn new(workload: Workload, mode: ExecMode) -> Self {
        JobSpec {
            workload,
            mode,
            quick: true,
            input_seed: None,
            watchdog: None,
            faults: None,
            attribution: false,
        }
    }

    /// The workload parameters this spec resolves to: tiny or default
    /// sizing, with the input seed applied.
    #[must_use]
    pub fn params(&self) -> Params {
        let mut p = if self.quick {
            self.workload.tiny_params()
        } else {
            self.workload.default_params()
        };
        if let Some(seed) = self.input_seed {
            p.seed = seed;
        }
        p
    }

    /// The canonical JSON rendering: fixed field order, optional
    /// fields omitted when absent. This is both the wire format and
    /// the fingerprint pre-image, so it must never change shape for
    /// an unchanged spec.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut j = Json::obj()
            .field("workload", self.workload.name())
            .field("mode", mode_name(self.mode))
            .field("quick", self.quick);
        if let Some(seed) = self.input_seed {
            j = j.field("seed", seed);
        }
        if let Some(w) = self.watchdog {
            j = j.field("watchdog", w);
        }
        if let Some(fc) = self.faults {
            j = j.field(
                "faults",
                Json::obj()
                    .field("fu", fc.fu_rate)
                    .field("bus", fc.forward_rate)
                    .field("irb", fc.irb_rate)
                    .field("seed", fc.seed),
            );
        }
        if self.attribution {
            j = j.field("attribution", true);
        }
        j.to_string()
    }

    /// The job's identity: the fx64 hash of its canonical rendering.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fx64(self.canonical().as_bytes())
    }

    /// The fingerprint as the 16-hex-digit spelling used in result
    /// payloads.
    #[must_use]
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Lowers the spec onto the bench harness [`Job`] the supervisor
    /// executes, against the paper-baseline machine.
    #[must_use]
    pub fn to_job(&self) -> Job {
        let cfg = MachineConfig::paper_baseline();
        let mut job = Job::new(self.workload, self.mode, &cfg);
        if let Some(seed) = self.input_seed {
            job = job.with_input_seed(seed);
        }
        if let Some(w) = self.watchdog {
            job = job.with_watchdog(w);
        }
        if let Some(fc) = self.faults {
            job = job.with_faults(fc);
        }
        if self.attribution {
            job = job.with_attribution();
        }
        job
    }

    /// Parses a spec from its JSON object form (the `"spec"` field of
    /// a submit request, or a journaled job record).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first defect: missing or
    /// unknown workload/mode, or a malformed optional field.
    pub fn parse(j: &Json) -> Result<JobSpec, String> {
        let workload = j
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("spec is missing \"workload\"")?;
        let workload = Workload::from_name(workload)
            .ok_or_else(|| format!("unknown workload {workload:?}"))?;
        let mode = j
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("spec is missing \"mode\"")?;
        let mode = mode_from_name(mode).ok_or_else(|| format!("unknown mode {mode:?}"))?;
        let quick = match j.get("quick") {
            None => true,
            Some(q) => q.as_bool().ok_or("\"quick\" must be a bool")?,
        };
        let input_seed = match j.get("seed") {
            None => None,
            Some(s) => Some(s.as_u64().ok_or("\"seed\" must be an unsigned integer")?),
        };
        let watchdog = match j.get("watchdog") {
            None => None,
            Some(w) => Some(
                w.as_u64()
                    .ok_or("\"watchdog\" must be an unsigned integer")?,
            ),
        };
        let faults = match j.get("faults") {
            None => None,
            Some(f) => {
                let rate = |key: &str| -> Result<f64, String> {
                    match f.get(key) {
                        None => Ok(0.0),
                        Some(v) => v
                            .as_f64()
                            .ok_or_else(|| format!("\"faults\".\"{key}\" must be a number")),
                    }
                };
                Some(FaultConfig {
                    fu_rate: rate("fu")?,
                    forward_rate: rate("bus")?,
                    irb_rate: rate("irb")?,
                    seed: match f.get("seed") {
                        None => 0,
                        Some(s) => s
                            .as_u64()
                            .ok_or("\"faults\".\"seed\" must be an unsigned integer")?,
                    },
                })
            }
        };
        let attribution = match j.get("attribution") {
            None => false,
            Some(a) => a.as_bool().ok_or("\"attribution\" must be a bool")?,
        };
        Ok(JobSpec {
            workload,
            mode,
            quick,
            input_seed,
            watchdog,
            faults,
            attribution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_round_trips_through_parse() {
        let spec = JobSpec {
            workload: Workload::Gzip,
            mode: ExecMode::DieIrb,
            quick: true,
            input_seed: Some(7),
            watchdog: Some(1_000_000),
            faults: Some(FaultConfig {
                fu_rate: 2e-4,
                forward_rate: 0.0,
                irb_rate: 1e-5,
                seed: 11,
            }),
            attribution: true,
        };
        let text = spec.canonical();
        let parsed = JobSpec::parse(&Json::parse(&text).expect("canonical form is JSON"))
            .expect("canonical form parses");
        assert_eq!(parsed.canonical(), text, "round trip is byte-identical");
        assert_eq!(parsed.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprints_separate_distinct_specs() {
        let a = JobSpec::new(Workload::Gzip, ExecMode::Sie);
        let mut b = a.clone();
        b.mode = ExecMode::Die;
        let mut c = a.clone();
        c.input_seed = Some(1);
        let mut d = a.clone();
        d.quick = false;
        let mut e = a.clone();
        e.attribution = true;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn attribution_off_keeps_pre_attribution_canonical_shape() {
        // The canonical form is the fingerprint pre-image: a spec that
        // never asked for attribution must render exactly as it did
        // before the field existed, or every stored fingerprint would
        // silently change.
        let spec = JobSpec::new(Workload::Gzip, ExecMode::Sie);
        assert!(!spec.canonical().contains("attribution"));
        let mut on = spec.clone();
        on.attribution = true;
        assert!(on.canonical().contains("\"attribution\":true"));
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [
            ExecMode::Sie,
            ExecMode::Die,
            ExecMode::DieIrb,
            ExecMode::SieIrb,
            ExecMode::DieCluster,
        ] {
            assert_eq!(mode_from_name(mode_name(mode)), Some(mode));
        }
        assert_eq!(mode_from_name("warp-speed"), None);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            r#"{"mode":"sie"}"#,
            r#"{"workload":"gzip"}"#,
            r#"{"workload":"nope","mode":"sie"}"#,
            r#"{"workload":"gzip","mode":"nope"}"#,
            r#"{"workload":"gzip","mode":"sie","quick":3}"#,
            r#"{"workload":"gzip","mode":"sie","seed":-1}"#,
            r#"{"workload":"gzip","mode":"sie","faults":{"fu":"x"}}"#,
        ] {
            let j = Json::parse(bad).expect("test input is JSON");
            assert!(JobSpec::parse(&j).is_err(), "{bad} must not parse");
        }
    }
}
