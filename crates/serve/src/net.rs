//! The wire layer: blocking `std::net` servers and a small client.
//!
//! The native protocol is one JSON object per line in each direction:
//!
//! ```text
//! → {"op":"submit","spec":{"workload":"gzip","mode":"die-irb"}}
//! ← {"ok":true,"id":0,"cached":false}
//! → {"op":"wait","id":0}
//! ← {"ok":true,"id":0,"res":{"ok":true,"fp":"…","cycles":…}}
//! ```
//!
//! Ops: `ping`, `submit`, `wait` (optional `timeout_ms`), `status`,
//! `metrics`, `shutdown`. Errors come back as
//! `{"ok":false,"error":"…"}` and keep the connection open; a
//! malformed line closes it.
//!
//! A connection whose first line is an HTTP request line is treated
//! as HTTP/1.1 with no HTTP stack in the tree: `GET /metrics` answers
//! with the Prometheus text exposition, `GET /jobs`,
//! `GET /jobs/<id>` and `GET /jobs/<id>/attribution` serve the stored
//! deterministic JSON results, non-GET methods get 405 and unknown
//! paths 404. Request lines are capped at [`MAX_REQUEST_LINE`] bytes,
//! so an oversized request cannot make the server buffer unbounded
//! input.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use redsim_util::Json;

use crate::engine::{Engine, RequestKind};
use crate::spec::JobSpec;
use crate::ServeError;

/// How often the accept loop polls the engine's stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Hard cap on one request line (native op or HTTP request/header
/// line). Longer lines are rejected and the connection closed before
/// the buffer can grow past this.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// How many HTTP header lines are drained before responding; anything
/// beyond is ignored (the connection closes after the response).
const MAX_HTTP_HEADERS: usize = 64;

/// Serves the native protocol (and `GET /metrics`) on a TCP listener
/// until the engine is stopped (e.g. by a `shutdown` op).
///
/// # Errors
///
/// Any `io::Error` from the listener itself; per-connection errors
/// only close that connection.
pub fn serve_tcp(engine: &Arc<Engine>, listener: &TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(500)))?;
                let engine = Arc::clone(engine);
                conns.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let reader = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    handle_conn(&engine, BufReader::new(reader), &mut stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if engine.stopped() {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

/// Unix-socket twin of [`serve_tcp`].
///
/// # Errors
///
/// Any `io::Error` from the listener itself.
#[cfg(unix)]
pub fn serve_unix(engine: &Arc<Engine>, listener: &UnixListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(500)))?;
                let engine = Arc::clone(engine);
                conns.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let reader = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    handle_conn(&engine, BufReader::new(reader), &mut stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if engine.stopped() {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

/// Reads a line of at most [`MAX_REQUEST_LINE`] bytes, treating a
/// read timeout as "check the stop flag and keep waiting" so idle
/// keep-alive connections don't pin the server. A timeout mid-line
/// keeps the partial bytes and resumes.
///
/// An overlong line fails with `InvalidData` *before* buffering past
/// the cap — a client streaming an unterminated line can never make
/// the server allocate unbounded memory.
fn read_line_polling<R: BufRead>(
    engine: &Engine,
    reader: &mut R,
    line: &mut String,
) -> io::Result<usize> {
    line.clear();
    let mut bytes = Vec::new();
    loop {
        let (used, done) = match reader.fill_buf() {
            Ok([]) => break, // EOF: hand back any partial line, like read_line.
            Ok(available) => match available.iter().position(|&b| b == b'\n') {
                Some(i) => ((i + 1).min(available.len()), true),
                None => (available.len(), false),
            },
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if engine.stopped() {
                    return Ok(0);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if bytes.len() + used > MAX_REQUEST_LINE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request line exceeds the 64 KiB cap",
            ));
        }
        bytes.extend_from_slice(&reader.fill_buf()?[..used]);
        reader.consume(used);
        if done {
            break;
        }
    }
    match String::from_utf8(bytes) {
        Ok(s) => {
            line.push_str(&s);
            Ok(line.len())
        }
        Err(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line is not UTF-8",
        )),
    }
}

/// Whether a first line spells an HTTP request line (any method);
/// native-protocol lines are JSON objects, which never do.
fn looks_like_http(line: &str) -> bool {
    let line = line.trim_end();
    line.ends_with("HTTP/1.1") || line.ends_with("HTTP/1.0")
}

/// Drives one connection: HTTP if it opens with a request line,
/// otherwise the line protocol until EOF, error, or a `shutdown` op.
fn handle_conn<R: BufRead>(engine: &Engine, mut reader: R, writer: &mut dyn Write) {
    let mut line = String::new();
    if read_line_polling(engine, &mut reader, &mut line).unwrap_or(0) == 0 {
        return;
    }
    if looks_like_http(&line) {
        let _ = respond_http(engine, &line, &mut reader, writer);
        return;
    }
    loop {
        let (response, shutdown) = dispatch(engine, line.trim_end());
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            return;
        }
        match read_line_polling(engine, &mut reader, &mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// Answers one HTTP request (already-read request line in `first`).
fn respond_http<R: BufRead>(
    engine: &Engine,
    first: &str,
    reader: &mut R,
    writer: &mut dyn Write,
) -> io::Result<()> {
    engine.count_request(RequestKind::Http);
    // Drain the request headers up to the blank line, each bounded by
    // the request-line cap and at most MAX_HTTP_HEADERS of them.
    let mut line = String::new();
    for _ in 0..MAX_HTTP_HEADERS {
        if read_line_polling(engine, reader, &mut line)? == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    let mut parts = first.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, content_type, body) = route(engine, method, path);
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Resolves one HTTP request to (status, content type, body).
fn route(engine: &Engine, method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n".to_owned(),
        );
    }
    if path == "/metrics" {
        return (
            "200 OK",
            "text/plain; version=0.0.4",
            engine.metrics_registry().to_prometheus(),
        );
    }
    if path == "/jobs" {
        return ("200 OK", "application/json", engine.jobs_json().to_string());
    }
    if let Some(rest) = path.strip_prefix("/jobs/") {
        let (id, attribution) = match rest.strip_suffix("/attribution") {
            Some(id) => (id, true),
            None => (rest, false),
        };
        if let Ok(id) = id.parse::<u64>() {
            return job_route(engine, id, attribution);
        }
    }
    (
        "404 Not Found",
        "text/plain",
        "not found; try /metrics, /jobs, /jobs/<id>, /jobs/<id>/attribution\n".to_owned(),
    )
}

/// `GET /jobs/<id>` serves the stored result payload verbatim;
/// `/jobs/<id>/attribution` extracts just its `"attribution"` section
/// (`null` when the job ran without attribution). A known job without
/// a result yet answers `{"id":…,"done":false}`; an id the engine
/// never acknowledged is 404.
fn job_route(engine: &Engine, id: u64, attribution: bool) -> (&'static str, &'static str, String) {
    match engine.result(id) {
        Some(res) if attribution => {
            let attr = Json::parse(&res)
                .ok()
                .and_then(|j| j.get("attribution").cloned())
                .unwrap_or(Json::Null);
            ("200 OK", "application/json", attr.to_string())
        }
        Some(res) => ("200 OK", "application/json", res),
        None if engine.knows(id) => (
            "200 OK",
            "application/json",
            Json::obj().field("id", id).field("done", false).to_string(),
        ),
        None => (
            "404 Not Found",
            "application/json",
            Json::obj()
                .field("error", "unknown job")
                .field("id", id)
                .to_string(),
        ),
    }
}

fn err_response(msg: &str) -> Json {
    Json::obj().field("ok", false).field("error", msg)
}

fn serve_error_response(e: &ServeError) -> Json {
    err_response(&e.to_string())
}

/// Executes one request line, returning the response and whether the
/// connection (and server) should shut down.
fn dispatch(engine: &Engine, line: &str) -> (Json, bool) {
    let j = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return (err_response(&format!("bad request: {e}")), false),
    };
    let op = j.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => engine.count_request(RequestKind::Ping),
        "submit" => engine.count_request(RequestKind::Submit),
        "wait" => engine.count_request(RequestKind::Wait),
        "status" => engine.count_request(RequestKind::Status),
        "metrics" => engine.count_request(RequestKind::Metrics),
        "shutdown" => engine.count_request(RequestKind::Shutdown),
        _ => {}
    }
    let response = match op {
        "ping" => Json::obj().field("ok", true).field("pong", true),
        "submit" => match j.get("spec").map(JobSpec::parse) {
            None => err_response("submit needs a \"spec\" object"),
            Some(Err(e)) => err_response(&e),
            Some(Ok(spec)) => match engine.submit(&spec) {
                Ok((id, cached)) => Json::obj()
                    .field("ok", true)
                    .field("id", id)
                    .field("cached", cached),
                Err(e) => serve_error_response(&e),
            },
        },
        "wait" => match j.get("id").and_then(Json::as_u64) {
            None => err_response("wait needs an \"id\""),
            Some(id) => {
                let timeout = j
                    .get("timeout_ms")
                    .and_then(Json::as_u64)
                    .map(Duration::from_millis);
                match engine.wait(id, timeout) {
                    Ok(Some(res)) => {
                        let res = Json::parse(&res).unwrap_or_else(|_| Json::Str(res.clone()));
                        Json::obj()
                            .field("ok", true)
                            .field("id", id)
                            .field("res", res)
                    }
                    Ok(None) => err_response("timeout"),
                    Err(e) => serve_error_response(&e),
                }
            }
        },
        "status" => {
            let s = engine.status();
            Json::obj()
                .field("ok", true)
                .field("queued", s.queued)
                .field("running", s.running)
                .field("done", s.done)
                .field("failed", s.failed)
                .field("next_id", s.next_id)
        }
        "metrics" => Json::obj()
            .field("ok", true)
            .field("prometheus", engine.metrics_registry().to_prometheus()),
        "shutdown" => {
            engine.stop();
            Json::obj().field("ok", true).field("stopping", true)
        }
        other => err_response(&format!("unknown op {other:?}")),
    };
    (response, op == "shutdown")
}

/// One end of a client connection (TCP or unix socket).
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking line-protocol client.
pub struct Client {
    reader: BufReader<ClientStream>,
    writer: ClientStream,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to an endpoint: `tcp <addr>`, `unix <path>`, or a
    /// bare `<host>:<port>`.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from connecting, or `InvalidInput` for an
    /// endpoint spelling this build cannot reach.
    pub fn connect(endpoint: &str) -> io::Result<Client> {
        let endpoint = endpoint.trim();
        if let Some(path) = endpoint.strip_prefix("unix ") {
            return Self::connect_unix(Path::new(path.trim()));
        }
        let addr = endpoint.strip_prefix("tcp ").unwrap_or(endpoint).trim();
        Self::connect_tcp(addr)
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from `TcpStream::connect`.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = ClientStream::Tcp(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(reader),
            writer: ClientStream::Tcp(stream),
        })
    }

    /// Connects over a unix socket.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from `UnixStream::connect`; `InvalidInput` on
    /// non-unix builds.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        #[cfg(unix)]
        {
            let stream = UnixStream::connect(path)?;
            let reader = ClientStream::Unix(stream.try_clone()?);
            Ok(Client {
                reader: BufReader::new(reader),
                writer: ClientStream::Unix(stream),
            })
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unix sockets are not available on this platform",
            ))
        }
    }

    /// Sends one request and reads one response line.
    ///
    /// # Errors
    ///
    /// Any transport `io::Error`, or `InvalidData` when the response
    /// is not a JSON object.
    pub fn request(&mut self, req: &Json) -> io::Result<Json> {
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}
