//! The wire layer: blocking `std::net` servers and a small client.
//!
//! The native protocol is one JSON object per line in each direction:
//!
//! ```text
//! → {"op":"submit","spec":{"workload":"gzip","mode":"die-irb"}}
//! ← {"ok":true,"id":0,"cached":false}
//! → {"op":"wait","id":0}
//! ← {"ok":true,"id":0,"res":{"ok":true,"fp":"…","cycles":…}}
//! ```
//!
//! Ops: `ping`, `submit`, `wait` (optional `timeout_ms`), `status`,
//! `metrics`, `shutdown`. Errors come back as
//! `{"ok":false,"error":"…"}` and keep the connection open; a
//! malformed line closes it.
//!
//! A connection whose first bytes spell `GET ` is treated as HTTP:
//! `GET /metrics` answers with the Prometheus text exposition from
//! the engine's registry, anything else with 404 — enough for a
//! scraper, with no HTTP stack in the tree.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use redsim_util::Json;

use crate::engine::Engine;
use crate::spec::JobSpec;
use crate::ServeError;

/// How often the accept loop polls the engine's stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serves the native protocol (and `GET /metrics`) on a TCP listener
/// until the engine is stopped (e.g. by a `shutdown` op).
///
/// # Errors
///
/// Any `io::Error` from the listener itself; per-connection errors
/// only close that connection.
pub fn serve_tcp(engine: &Arc<Engine>, listener: &TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(500)))?;
                let engine = Arc::clone(engine);
                conns.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let reader = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    handle_conn(&engine, BufReader::new(reader), &mut stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if engine.stopped() {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

/// Unix-socket twin of [`serve_tcp`].
///
/// # Errors
///
/// Any `io::Error` from the listener itself.
#[cfg(unix)]
pub fn serve_unix(engine: &Arc<Engine>, listener: &UnixListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(500)))?;
                let engine = Arc::clone(engine);
                conns.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let reader = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    handle_conn(&engine, BufReader::new(reader), &mut stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if engine.stopped() {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

/// Reads a line, treating a read timeout as "check the stop flag and
/// keep waiting" so idle keep-alive connections don't pin the server.
/// A timeout mid-line keeps the partial bytes and resumes.
fn read_line_polling<R: BufRead>(
    engine: &Engine,
    reader: &mut R,
    line: &mut String,
) -> io::Result<usize> {
    line.clear();
    loop {
        match reader.read_line(line) {
            Ok(0) => return Ok(0),
            Ok(_) => return Ok(line.len()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if engine.stopped() {
                    return Ok(0);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Drives one connection: HTTP if it opens with `GET `, otherwise the
/// line protocol until EOF, error, or a `shutdown` op.
fn handle_conn<R: BufRead>(engine: &Engine, mut reader: R, writer: &mut dyn Write) {
    let mut line = String::new();
    if read_line_polling(engine, &mut reader, &mut line).unwrap_or(0) == 0 {
        return;
    }
    if line.starts_with("GET ") {
        let _ = respond_http(engine, &line, &mut reader, writer);
        return;
    }
    loop {
        let (response, shutdown) = dispatch(engine, line.trim_end());
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            return;
        }
        match read_line_polling(engine, &mut reader, &mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// Answers one HTTP request (already-read request line in `first`).
fn respond_http<R: BufRead>(
    engine: &Engine,
    first: &str,
    reader: &mut R,
    writer: &mut dyn Write,
) -> io::Result<()> {
    // Drain the request headers up to the blank line.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    let path = first.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/metrics" {
        ("200 OK", engine.metrics_registry().to_prometheus())
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_owned())
    };
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

fn err_response(msg: &str) -> Json {
    Json::obj().field("ok", false).field("error", msg)
}

fn serve_error_response(e: &ServeError) -> Json {
    err_response(&e.to_string())
}

/// Executes one request line, returning the response and whether the
/// connection (and server) should shut down.
fn dispatch(engine: &Engine, line: &str) -> (Json, bool) {
    let j = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return (err_response(&format!("bad request: {e}")), false),
    };
    let op = j.get("op").and_then(Json::as_str).unwrap_or("");
    let response = match op {
        "ping" => Json::obj().field("ok", true).field("pong", true),
        "submit" => match j.get("spec").map(JobSpec::parse) {
            None => err_response("submit needs a \"spec\" object"),
            Some(Err(e)) => err_response(&e),
            Some(Ok(spec)) => match engine.submit(&spec) {
                Ok((id, cached)) => Json::obj()
                    .field("ok", true)
                    .field("id", id)
                    .field("cached", cached),
                Err(e) => serve_error_response(&e),
            },
        },
        "wait" => match j.get("id").and_then(Json::as_u64) {
            None => err_response("wait needs an \"id\""),
            Some(id) => {
                let timeout = j
                    .get("timeout_ms")
                    .and_then(Json::as_u64)
                    .map(Duration::from_millis);
                match engine.wait(id, timeout) {
                    Ok(Some(res)) => {
                        let res = Json::parse(&res).unwrap_or_else(|_| Json::Str(res.clone()));
                        Json::obj()
                            .field("ok", true)
                            .field("id", id)
                            .field("res", res)
                    }
                    Ok(None) => err_response("timeout"),
                    Err(e) => serve_error_response(&e),
                }
            }
        },
        "status" => {
            let s = engine.status();
            Json::obj()
                .field("ok", true)
                .field("queued", s.queued)
                .field("running", s.running)
                .field("done", s.done)
                .field("failed", s.failed)
                .field("next_id", s.next_id)
        }
        "metrics" => Json::obj()
            .field("ok", true)
            .field("prometheus", engine.metrics_registry().to_prometheus()),
        "shutdown" => {
            engine.stop();
            Json::obj().field("ok", true).field("stopping", true)
        }
        other => err_response(&format!("unknown op {other:?}")),
    };
    (response, op == "shutdown")
}

/// One end of a client connection (TCP or unix socket).
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking line-protocol client.
pub struct Client {
    reader: BufReader<ClientStream>,
    writer: ClientStream,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to an endpoint: `tcp <addr>`, `unix <path>`, or a
    /// bare `<host>:<port>`.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from connecting, or `InvalidInput` for an
    /// endpoint spelling this build cannot reach.
    pub fn connect(endpoint: &str) -> io::Result<Client> {
        let endpoint = endpoint.trim();
        if let Some(path) = endpoint.strip_prefix("unix ") {
            return Self::connect_unix(Path::new(path.trim()));
        }
        let addr = endpoint.strip_prefix("tcp ").unwrap_or(endpoint).trim();
        Self::connect_tcp(addr)
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from `TcpStream::connect`.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = ClientStream::Tcp(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(reader),
            writer: ClientStream::Tcp(stream),
        })
    }

    /// Connects over a unix socket.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from `UnixStream::connect`; `InvalidInput` on
    /// non-unix builds.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        #[cfg(unix)]
        {
            let stream = UnixStream::connect(path)?;
            let reader = ClientStream::Unix(stream.try_clone()?);
            Ok(Client {
                reader: BufReader::new(reader),
                writer: ClientStream::Unix(stream),
            })
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unix sockets are not available on this platform",
            ))
        }
    }

    /// Sends one request and reads one response line.
    ///
    /// # Errors
    ///
    /// Any transport `io::Error`, or `InvalidData` when the response
    /// is not a JSON object.
    pub fn request(&mut self, req: &Json) -> io::Result<Json> {
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}
