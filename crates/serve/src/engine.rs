//! The job engine: a durable work queue over the campaign shard
//! supervisor.
//!
//! Submissions are deduplicated on the spec fingerprint and journaled
//! before they are acknowledged, so the engine's durable state is
//! exactly the set of acknowledged jobs plus their results. Worker
//! threads pull from a condvar-fronted queue and run each job through
//! [`execute_shard`] — the same retry/backoff/quarantine/host-deadline
//! discipline campaign shards get. Results are integers, bools and
//! strings only, a pure function of the spec, which is what makes the
//! compacted journal byte-identical at any worker count and across
//! any kill/restart schedule.
//!
//! The first journal-append failure latches the engine into an
//! aborted state (mirroring the campaign manifest sink): no further
//! submissions are acknowledged and workers stop, so only the
//! journal's final line can ever be torn.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use redsim_campaign::supervisor::{execute_shard, DeadlineMonitor, RetryPolicy};
use redsim_core::{attribution_to_json, Histogram, MetricsRegistry, SimStats};
use redsim_util::io::{atomic_write, FsyncPolicy, Io};
use redsim_util::Json;

use crate::journal::{self, JournalSink, JournalState};
use crate::spec::{JobSpec, DEFAULT_TRACE_BUDGET};
use crate::store::TraceStore;
use crate::ServeError;

/// Engine tuning: worker-pool width, durability, and the supervision
/// discipline handed to [`execute_shard`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Where the durability barriers sit on the journal write path.
    pub fsync: FsyncPolicy,
    /// Retry discipline for transient job failures.
    pub retry: RetryPolicy,
    /// Host wall-clock deadline per attempt, if any.
    pub host_deadline: Option<Duration>,
    /// Instruction budget for trace materialization.
    pub trace_budget: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            workers: 1,
            fsync: FsyncPolicy::default(),
            retry: RetryPolicy::default(),
            host_deadline: None,
            trace_budget: DEFAULT_TRACE_BUDGET,
        }
    }
}

/// A counted client-request category: the native protocol ops plus
/// raw HTTP GETs. Every request the daemon answers increments exactly
/// one of these, so the `/metrics` counters partition the request
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Native `ping` op.
    Ping,
    /// Native `submit` op.
    Submit,
    /// Native `wait` op.
    Wait,
    /// Native `status` op.
    Status,
    /// Native `metrics` op.
    Metrics,
    /// Native `shutdown` op.
    Shutdown,
    /// Raw HTTP GET (the observability API, including `/metrics`).
    Http,
}

impl RequestKind {
    /// All kinds, in exposition order.
    pub const ALL: [RequestKind; 7] = [
        RequestKind::Ping,
        RequestKind::Submit,
        RequestKind::Wait,
        RequestKind::Status,
        RequestKind::Metrics,
        RequestKind::Shutdown,
        RequestKind::Http,
    ];

    /// The kind's wire spelling (used in metric names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Ping => "ping",
            RequestKind::Submit => "submit",
            RequestKind::Wait => "wait",
            RequestKind::Status => "status",
            RequestKind::Metrics => "metrics",
            RequestKind::Shutdown => "shutdown",
            RequestKind::Http => "http",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestKind::Ping => 0,
            RequestKind::Submit => 1,
            RequestKind::Wait => 2,
            RequestKind::Status => 3,
            RequestKind::Metrics => 4,
            RequestKind::Shutdown => 5,
            RequestKind::Http => 6,
        }
    }
}

/// A point-in-time queue summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs with a result (successes and failures).
    pub done: usize,
    /// Done jobs whose result is a failure.
    pub failed: usize,
    /// The next id a submission would get.
    pub next_id: u64,
}

struct QState {
    queue: VecDeque<u64>,
    specs: BTreeMap<u64, JobSpec>,
    results: BTreeMap<u64, String>,
    /// fingerprint → id of the first submission with that spec.
    by_fp: HashMap<u64, u64>,
    running: BTreeSet<u64>,
    next_id: u64,
    stop: bool,
    io_error: Option<String>,
}

struct EngineMetrics {
    submitted: u64,
    dedup_hits: u64,
    failed: u64,
    latency_ms: Histogram,
}

struct Shared {
    io: Arc<dyn Io>,
    journal_path: PathBuf,
    opts: EngineOptions,
    store: TraceStore,
    sink: JournalSink,
    monitor: Option<DeadlineMonitor>,
    q: Mutex<QState>,
    work_cv: Condvar,
    done_cv: Condvar,
    metrics: Mutex<EngineMetrics>,
    started: Instant,
    requests: [AtomicU64; 7],
}

/// The durable job engine. Cheap to share behind an `Arc`; all
/// methods take `&self`.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("journal", &self.shared.journal_path)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Opens (or resumes) an engine over `state_dir`: loads the
    /// journal, compacts it atomically (dropping any torn tail from
    /// disk), re-queues every acknowledged job without a result, and
    /// spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corrupt`]/[`ServeError::Mismatch`] on a damaged
    /// or foreign journal, [`ServeError::Io`] when the state directory
    /// or journal cannot be prepared.
    pub fn open(
        io: Arc<dyn Io>,
        state_dir: &Path,
        opts: EngineOptions,
    ) -> Result<Self, ServeError> {
        io.create_dir_all(state_dir)?;
        let journal_path = state_dir.join("jobs.progress.jsonl");
        let state = journal::load(io.as_ref(), &journal_path)?;
        // Compact on open: the on-disk journal starts every run clean
        // (no torn tail, records in id order).
        atomic_write(
            io.as_ref(),
            &journal_path,
            journal::render(&state).as_bytes(),
            opts.fsync.sync_barriers(),
        )?;
        let store = TraceStore::open(
            Arc::clone(&io),
            state_dir.join("traces"),
            opts.fsync.sync_barriers(),
        )?;
        let sink = JournalSink::open(io.as_ref(), &journal_path, opts.fsync.sync_records())?;

        let JournalState {
            specs,
            results,
            next_id,
        } = state;
        let by_fp: HashMap<u64, u64> = specs.iter().map(|(&id, s)| (s.fingerprint(), id)).collect();
        let queue: VecDeque<u64> = specs
            .keys()
            .filter(|id| !results.contains_key(id))
            .copied()
            .collect();
        let failed = results.values().filter(|r| !result_is_ok(r)).count() as u64;
        let submitted = specs.len() as u64;

        let shared = Arc::new(Shared {
            io,
            journal_path,
            monitor: opts.host_deadline.is_some().then(DeadlineMonitor::new),
            store,
            sink,
            q: Mutex::new(QState {
                queue,
                specs,
                results,
                by_fp,
                running: BTreeSet::new(),
                next_id,
                stop: false,
                io_error: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics: Mutex::new(EngineMetrics {
                submitted,
                dedup_hits: 0,
                failed,
                latency_ms: Histogram::new(),
            }),
            started: Instant::now(),
            requests: Default::default(),
            opts,
        });
        let workers = (0..shared.opts.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Engine {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Submits a job. Returns its id and whether the submission was
    /// deduplicated against an identical earlier one (in which case
    /// the id is the earlier job's — re-submission is idempotent, so
    /// a client can blindly replay its submissions after a crash).
    ///
    /// The job record is journaled *before* the submission is
    /// acknowledged: an id returned from here survives `kill -9`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stopped`] after shutdown, [`ServeError::Io`] when
    /// the journal append failed (the submission is NOT acknowledged
    /// and the engine latches).
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn submit(&self, spec: &JobSpec) -> Result<(u64, bool), ServeError> {
        let fp = spec.fingerprint();
        let mut q = self.shared.q.lock().expect("engine queue lock");
        if q.stop {
            return Err(ServeError::Stopped);
        }
        if let Some(e) = &q.io_error {
            return Err(ServeError::Io(std::io::Error::other(e.clone())));
        }
        if let Some(&id) = q.by_fp.get(&fp) {
            self.shared.metrics.lock().expect("metrics lock").dedup_hits += 1;
            return Ok((id, true));
        }
        let id = q.next_id;
        if !self.shared.sink.append(&journal::job_record(id, spec)) {
            let e = self
                .shared
                .sink
                .error()
                .unwrap_or_else(|| "journal append failed".to_owned());
            q.io_error = Some(e.clone());
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
            return Err(ServeError::Io(std::io::Error::other(e)));
        }
        q.next_id = id + 1;
        q.specs.insert(id, spec.clone());
        q.by_fp.insert(fp, id);
        q.queue.push_back(id);
        self.shared.metrics.lock().expect("metrics lock").submitted += 1;
        drop(q);
        self.shared.work_cv.notify_one();
        Ok((id, false))
    }

    /// The result of a job, if it has one: the canonical result JSON.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn result(&self, id: u64) -> Option<String> {
        self.shared
            .q
            .lock()
            .expect("engine queue lock")
            .results
            .get(&id)
            .cloned()
    }

    /// Blocks until job `id` has a result, the timeout expires
    /// (`Ok(None)`), or the engine stops/aborts.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stopped`] when the engine shut down before the
    /// job completed, [`ServeError::Io`] when the journal latched.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn wait(&self, id: u64, timeout: Option<Duration>) -> Result<Option<String>, ServeError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut q = self.shared.q.lock().expect("engine queue lock");
        loop {
            if let Some(res) = q.results.get(&id) {
                return Ok(Some(res.clone()));
            }
            if let Some(e) = &q.io_error {
                return Err(ServeError::Io(std::io::Error::other(e.clone())));
            }
            if q.stop {
                return Err(ServeError::Stopped);
            }
            q = match deadline {
                None => self.shared.done_cv.wait(q).expect("engine queue lock"),
                Some(at) => {
                    let left = at.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(None);
                    }
                    self.shared
                        .done_cv
                        .wait_timeout(q, left)
                        .expect("engine queue lock")
                        .0
                }
            };
        }
    }

    /// Blocks until every queued and running job has a result.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the journal latched mid-drain (the
    /// remaining jobs will re-run on restart).
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn drain(&self) -> Result<(), ServeError> {
        let mut q = self.shared.q.lock().expect("engine queue lock");
        loop {
            if let Some(e) = &q.io_error {
                return Err(ServeError::Io(std::io::Error::other(e.clone())));
            }
            if q.queue.is_empty() && q.running.is_empty() {
                return Ok(());
            }
            if q.stop {
                return Err(ServeError::Stopped);
            }
            q = self.shared.done_cv.wait(q).expect("engine queue lock");
        }
    }

    /// A point-in-time queue summary.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn status(&self) -> StatusSnapshot {
        let q = self.shared.q.lock().expect("engine queue lock");
        StatusSnapshot {
            queued: q.queue.len(),
            running: q.running.len(),
            done: q.results.len(),
            failed: q.results.values().filter(|r| !result_is_ok(r)).count(),
            next_id: q.next_id,
        }
    }

    /// Whether shutdown has been requested.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn stopped(&self) -> bool {
        self.shared.q.lock().expect("engine queue lock").stop
    }

    /// Requests shutdown: workers finish their in-flight job and
    /// exit; queued jobs stay journaled and re-run on the next open.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn stop(&self) {
        self.shared.q.lock().expect("engine queue lock").stop = true;
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
    }

    /// Stops the engine, joins the workers, and compacts the journal
    /// to its canonical rendering (header + records in id order).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the compaction write fails (e.g. the
    /// chaos backend was killed); the appended journal on disk is
    /// still recoverable.
    pub fn close(&self) -> Result<(), ServeError> {
        self.stop();
        self.join_workers();
        let q = self.shared.q.lock().expect("engine queue lock");
        let state = JournalState {
            specs: q.specs.clone(),
            results: q.results.clone(),
            next_id: q.next_id,
        };
        drop(q);
        atomic_write(
            self.shared.io.as_ref(),
            &self.shared.journal_path,
            journal::render(&state).as_bytes(),
            self.shared.opts.fsync.sync_barriers(),
        )?;
        Ok(())
    }

    /// Counts one answered client request of the given kind. Called
    /// by the transport layer; a relaxed atomic so the hot native
    /// dispatch path takes no lock.
    pub fn count_request(&self, kind: RequestKind) {
        self.shared.requests[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// One line per journaled job, in id order: id, lifecycle state
    /// (`queued`/`running`/`done`/`failed`) and the spec fingerprint.
    /// This is the `/jobs` listing — derived purely from queue state,
    /// so it is deterministic for a drained engine.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn jobs_json(&self) -> Json {
        let q = self.shared.q.lock().expect("engine queue lock");
        q.specs
            .iter()
            .map(|(&id, spec)| {
                let state = match q.results.get(&id) {
                    Some(res) if result_is_ok(res) => "done",
                    Some(_) => "failed",
                    None if q.running.contains(&id) => "running",
                    None => "queued",
                };
                Json::obj()
                    .field("id", id)
                    .field("state", state)
                    .field("fp", spec.fingerprint_hex())
                    .field("workload", spec.workload.name())
                    .field("mode", crate::spec::mode_name(spec.mode))
            })
            .collect()
    }

    /// Whether job `id` has been acknowledged (journaled) by this
    /// engine — distinguishes "not finished yet" from "never existed"
    /// for the HTTP results API.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn knows(&self, id: u64) -> bool {
        self.shared
            .q
            .lock()
            .expect("engine queue lock")
            .specs
            .contains_key(&id)
    }

    /// Trace-store counters (for the cache-effectiveness tests and
    /// the metrics endpoint).
    #[must_use]
    pub fn store_stats(&self) -> crate::store::StoreStats {
        self.shared.store.stats()
    }

    /// The metrics registry behind `/metrics`: queue gauges, cache
    /// counters and the per-job latency histogram.
    ///
    /// # Panics
    ///
    /// Panics if an engine mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let status = self.status();
        let store = self.shared.store.stats();
        let m = self.shared.metrics.lock().expect("metrics lock");
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "serve_jobs_submitted_total",
            "Acknowledged job submissions (deduplicated re-submissions excluded)",
            m.submitted,
        );
        reg.counter(
            "serve_jobs_dedup_hits_total",
            "Submissions answered by an identical earlier job",
            m.dedup_hits,
        );
        reg.gauge(
            "serve_jobs_queued",
            "Jobs waiting for a worker",
            status.queued as f64,
        );
        reg.gauge(
            "serve_jobs_running",
            "Jobs currently executing",
            status.running as f64,
        );
        reg.gauge("serve_jobs_done", "Jobs with a result", status.done as f64);
        reg.gauge(
            "serve_jobs_failed",
            "Done jobs whose result is a failure",
            status.failed as f64,
        );
        reg.counter(
            "serve_trace_cache_mem_hits_total",
            "Traces served from the in-process map",
            store.mem_hits,
        );
        reg.counter(
            "serve_trace_cache_disk_hits_total",
            "Traces deserialized from the content-addressed store",
            store.disk_hits,
        );
        reg.counter(
            "serve_trace_cache_builds_total",
            "Traces assembled and emulated from source",
            store.builds,
        );
        let lookups = store.mem_hits + store.disk_hits + store.builds;
        reg.gauge(
            "serve_trace_cache_hit_ratio",
            "Fraction of trace lookups served without re-emulation",
            if lookups == 0 {
                0.0
            } else {
                (store.mem_hits + store.disk_hits) as f64 / lookups as f64
            },
        );
        reg.histogram(
            "serve_job_latency_ms",
            "Wall-clock milliseconds per completed job (trace + simulation + retries)",
            m.latency_ms.clone(),
        );
        drop(m);
        reg.gauge(
            "redsim_serve_uptime_seconds",
            "Seconds since this engine was opened",
            self.shared.started.elapsed().as_secs_f64(),
        );
        for kind in RequestKind::ALL {
            reg.counter(
                match kind {
                    RequestKind::Ping => "serve_requests_ping_total",
                    RequestKind::Submit => "serve_requests_submit_total",
                    RequestKind::Wait => "serve_requests_wait_total",
                    RequestKind::Status => "serve_requests_status_total",
                    RequestKind::Metrics => "serve_requests_metrics_total",
                    RequestKind::Shutdown => "serve_requests_shutdown_total",
                    RequestKind::Http => "serve_requests_http_total",
                },
                "Client requests answered, by request kind",
                self.shared.requests[kind.index()].load(Ordering::Relaxed),
            );
        }
        reg
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handle lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop();
        self.join_workers();
    }
}

/// Whether a result payload is a success (`"ok":true`). Results are
/// engine-written, so string matching on the canonical prefix is
/// exact.
fn result_is_ok(res: &str) -> bool {
    res.starts_with("{\"ok\":true")
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec) = {
            let mut q = shared.q.lock().expect("engine queue lock");
            loop {
                if q.stop || q.io_error.is_some() {
                    return;
                }
                if let Some(id) = q.queue.pop_front() {
                    let spec = q.specs.get(&id).expect("queued id has a spec").clone();
                    q.running.insert(id);
                    break (id, spec);
                }
                q = shared.work_cv.wait(q).expect("engine queue lock");
            }
        };
        let t0 = Instant::now();
        let (res, ok) = run_spec(shared, &spec);
        let latency_ms = t0.elapsed().as_millis() as u64;

        let mut q = shared.q.lock().expect("engine queue lock");
        q.running.remove(&id);
        if shared.sink.append(&journal::done_record(id, &res)) {
            q.results.insert(id, res);
            let mut m = shared.metrics.lock().expect("metrics lock");
            m.latency_ms.record(latency_ms);
            if !ok {
                m.failed += 1;
            }
        } else {
            // Latch: the result is lost from this process, the job
            // stays journaled without a result and re-runs on the
            // next open — identical bytes, nothing diverges.
            q.io_error = Some(
                shared
                    .sink
                    .error()
                    .unwrap_or_else(|| "journal append failed".to_owned()),
            );
            shared.work_cv.notify_all();
        }
        drop(q);
        shared.done_cv.notify_all();
    }
}

/// Runs one spec to its canonical result payload. Every field is an
/// integer, bool or string, and every value is a deterministic
/// function of the spec — the byte-identity property rests here.
fn run_spec(shared: &Shared, spec: &JobSpec) -> (String, bool) {
    let fp = spec.fingerprint_hex();
    let trace = match shared.store.get(spec, shared.opts.trace_budget) {
        Ok((trace, _origin)) => trace,
        Err(e) => {
            let res = Json::obj()
                .field("ok", false)
                .field("fp", fp.as_str())
                .field("stage", "trace")
                .field("error", e.to_string())
                .to_string();
            return (res, false);
        }
    };
    let job = spec.to_job();
    match execute_shard(
        &trace,
        &job,
        &shared.opts.retry,
        shared.monitor.as_ref(),
        shared.opts.host_deadline,
        0,
    ) {
        Ok((stats, _windows)) => (ok_payload(&fp, &stats), true),
        Err(sf) => {
            let res = Json::obj()
                .field("ok", false)
                .field("fp", fp.as_str())
                .field("stage", "sim")
                .field("error", sf.failure.message.as_str())
                .field("kind", sf.failure.kind.as_str())
                .field("attempts", sf.attempts)
                .field("quarantined", sf.quarantined)
                .to_string();
            (res, false)
        }
    }
}

/// The success payload. `"ok":true` must stay the first field — it is
/// the prefix [`result_is_ok`] matches on. The `"attribution"` section
/// appears only when the spec asked for it, so pre-attribution stored
/// results stay byte-identical.
fn ok_payload(fp: &str, stats: &SimStats) -> String {
    let j = Json::obj()
        .field("ok", true)
        .field("fp", fp)
        .field("cycles", stats.cycles)
        .field("insts", stats.committed_insts)
        .field("milli_ipc", stats.milli_ipc())
        .field("watchdog", stats.watchdog_fired);
    match &stats.attribution {
        Some(a) => j
            .field("reuse_pass_permille", stats.irb.reuse_pass_permille())
            .field("attribution", attribution_to_json(a))
            .to_string(),
        None => j.to_string(),
    }
}
