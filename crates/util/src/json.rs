//! A minimal JSON value model and writer.
//!
//! The bench harness emits machine-readable results with `--json`; this
//! module is the in-tree replacement for a serde stack. Output is
//! strictly valid: strings are escaped per RFC 8259, non-finite floats
//! serialize as `null`, and object key order is the insertion order (so
//! output is deterministic). A small recursive-descent [`Json::parse`]
//! reads values back — the campaign runner's `--resume` path consumes
//! its own checkpoint manifest with it.
//!
//! # Examples
//!
//! ```
//! use redsim_util::Json;
//!
//! let j = Json::obj()
//!     .field("app", "gzip")
//!     .field("ipc", 1.25)
//!     .field("modes", Json::from_iter(["sie", "die"]));
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"app":"gzip","ipc":1.25,"modes":["sie","die"]}"#
//! );
//! ```

use std::fmt;

/// A structural misuse of the [`Json`] mutation API: writing a field
/// on a non-object or appending to a non-array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonTypeError {
    /// [`Json::set`] was called on a value that is not [`Json::Obj`].
    NotAnObject,
    /// [`Json::push`] was called on a value that is not [`Json::Arr`].
    NotAnArray,
}

impl fmt::Display for JsonTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonTypeError::NotAnObject => write!(f, "Json::set on a non-object"),
            JsonTypeError::NotAnArray => write!(f, "Json::push on a non-array"),
        }
    }
}

impl std::error::Error for JsonTypeError {}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A double. Non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array, ready for [`Json::item`] chaining.
    #[must_use]
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Adds (or replaces) a field on an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object; use [`Json::set`] for the
    /// fallible form.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Err(e) = self.set(key, value) {
            panic!("{e}");
        }
        self
    }

    /// Adds (or replaces) a field on an object, in place.
    ///
    /// # Errors
    ///
    /// Returns [`JsonTypeError::NotAnObject`] if `self` is not an
    /// object; the value is unchanged.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> Result<(), JsonTypeError> {
        let Json::Obj(fields) = self else {
            return Err(JsonTypeError::NotAnObject);
        };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_owned(), value));
        }
        Ok(())
    }

    /// Appends an element to an array, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array; use [`Json::push`] for the
    /// fallible form.
    #[must_use]
    pub fn item(mut self, value: impl Into<Json>) -> Json {
        if let Err(e) = self.push(value) {
            panic!("{e}");
        }
        self
    }

    /// Appends an element to an array, in place.
    ///
    /// # Errors
    ///
    /// Returns [`JsonTypeError::NotAnArray`] if `self` is not an
    /// array; the value is unchanged.
    pub fn push(&mut self, value: impl Into<Json>) -> Result<(), JsonTypeError> {
        let Json::Arr(items) = self else {
            return Err(JsonTypeError::NotAnArray);
        };
        items.push(value.into());
        Ok(())
    }

    /// Looks a field up on an object (test convenience).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (or a
    /// non-negative signed integer).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a double (integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of an array, if the value is one.
    #[must_use]
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// Integers without a fraction or exponent parse to
    /// [`Json::UInt`]/[`Json::Int`] so counter values round-trip
    /// exactly; everything else numeric becomes [`Json::Num`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] locating the first offending byte.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes `.0` for whole
                    // numbers — both valid JSON.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A malformed JSON document: what was wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What the parser expected or found.
    pub msg: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonParseError {
        JsonParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 (no escapes, no quote).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired up — the writer
                            // never emits them; reject rather than
                            // corrupt.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !fractional {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<i32> for Json {
    fn from(i: i32) -> Json {
        Json::Int(i64::from(i))
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(-3i64).to_string(), "-3");
        assert_eq!(
            Json::from(18_446_744_073_709_551_615u64).to_string(),
            "18446744073709551615"
        );
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from(2.0).to_string(), "2.0");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn object_preserves_insertion_order_and_replaces() {
        let j = Json::obj()
            .field("b", 1i64)
            .field("a", 2i64)
            .field("b", 3i64);
        assert_eq!(j.to_string(), r#"{"b":3,"a":2}"#);
        assert_eq!(j.get("a"), Some(&Json::Int(2)));
        assert_eq!(j.get("zz"), None);
    }

    #[test]
    fn arrays_nest() {
        let j = Json::arr()
            .item(Json::from_iter([1i64, 2]))
            .item(Json::obj().field("k", "v"));
        assert_eq!(j.to_string(), r#"[[1,2],{"k":"v"}]"#);
    }

    #[test]
    fn set_on_a_non_object_is_a_typed_error() {
        let mut j = Json::arr();
        assert_eq!(j.set("k", 1i64), Err(JsonTypeError::NotAnObject));
        assert_eq!(j, Json::arr(), "failed set leaves the value unchanged");
        assert_eq!(
            JsonTypeError::NotAnObject.to_string(),
            "Json::set on a non-object"
        );
    }

    #[test]
    fn push_on_a_non_array_is_a_typed_error() {
        let mut j = Json::obj();
        assert_eq!(j.push(1i64), Err(JsonTypeError::NotAnArray));
        assert_eq!(j, Json::obj(), "failed push leaves the value unchanged");
        assert_eq!(
            JsonTypeError::NotAnArray.to_string(),
            "Json::push on a non-array"
        );
    }

    #[test]
    fn round_trip_shape_is_parseable() {
        // A light structural check: balanced braces, valid escapes.
        let j = Json::obj()
            .field("name", "fig \"x\"")
            .field("vals", Json::from_iter([0.5, 1.0, f64::NAN]));
        let s = j.to_string();
        assert_eq!(s, r#"{"name":"fig \"x\"","vals":[0.5,1.0,null]}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj()
            .field("title", "coverage \"x\"\n")
            .field("quick", true)
            .field("count", 18_446_744_073_709_551_615u64)
            .field("delta", -3i64)
            .field("ipc", 1.25)
            .field("none", Json::Null)
            .field("rows", Json::from_iter([1u64, 2, 3]))
            .field("nested", Json::obj().field("k", "v"));
        let parsed = Json::parse(&j.to_string()).expect("writer output parses");
        assert_eq!(parsed, j);
        // And the text round-trips byte-identically.
        assert_eq!(parsed.to_string(), j.to_string());
    }

    #[test]
    fn parse_accessors_expose_scalars() {
        let j = Json::parse(r#"{"a": 7, "b": -2, "c": 1.5, "d": "s", "e": [true]}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("b").and_then(Json::as_u64), None);
        assert_eq!(j.get("b").and_then(Json::as_f64), Some(-2.0));
        assert_eq!(j.get("c").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("d").and_then(Json::as_str), Some("s"));
        let items = j.get("e").and_then(Json::items).unwrap();
        assert_eq!(items[0].as_bool(), Some(true));
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let j = Json::parse(" { \"k\\n\\u0041\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            j.get("k\nA").and_then(Json::items).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nulll",
            "\"bad \\x escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let e = Json::parse("[1, oops]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn parse_keeps_integer_fidelity() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-9").unwrap(), Json::Int(-9));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Num(0.5));
    }
}
