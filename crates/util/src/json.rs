//! A minimal JSON value model and writer.
//!
//! The bench harness emits machine-readable results with `--json`; this
//! module is the in-tree replacement for a serde stack. It only
//! *writes* JSON — nothing in the workspace needs to parse it — and it
//! writes strictly valid output: strings are escaped per RFC 8259,
//! non-finite floats serialize as `null`, and object key order is the
//! insertion order (so output is deterministic).
//!
//! # Examples
//!
//! ```
//! use redsim_util::Json;
//!
//! let j = Json::obj()
//!     .field("app", "gzip")
//!     .field("ipc", 1.25)
//!     .field("modes", Json::from_iter(["sie", "die"]));
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"app":"gzip","ipc":1.25,"modes":["sie","die"]}"#
//! );
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A double. Non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array, ready for [`Json::push`] chaining.
    #[must_use]
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Adds (or replaces) a field on an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Adds (or replaces) a field on an object, in place.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_owned(), value));
        }
    }

    /// Appends an element to an array, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    #[must_use]
    pub fn push(mut self, value: impl Into<Json>) -> Json {
        let Json::Arr(items) = &mut self else {
            panic!("Json::push on a non-array");
        };
        items.push(value.into());
        self
    }

    /// Looks a field up on an object (test convenience).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes `.0` for whole
                    // numbers — both valid JSON.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<i32> for Json {
    fn from(i: i32) -> Json {
        Json::Int(i64::from(i))
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(-3i64).to_string(), "-3");
        assert_eq!(
            Json::from(18_446_744_073_709_551_615u64).to_string(),
            "18446744073709551615"
        );
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from(2.0).to_string(), "2.0");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn object_preserves_insertion_order_and_replaces() {
        let j = Json::obj()
            .field("b", 1i64)
            .field("a", 2i64)
            .field("b", 3i64);
        assert_eq!(j.to_string(), r#"{"b":3,"a":2}"#);
        assert_eq!(j.get("a"), Some(&Json::Int(2)));
        assert_eq!(j.get("zz"), None);
    }

    #[test]
    fn arrays_nest() {
        let j = Json::arr()
            .push(Json::from_iter([1i64, 2]))
            .push(Json::obj().field("k", "v"));
        assert_eq!(j.to_string(), r#"[[1,2],{"k":"v"}]"#);
    }

    #[test]
    fn round_trip_shape_is_parseable() {
        // A light structural check: balanced braces, valid escapes.
        let j = Json::obj()
            .field("name", "fig \"x\"")
            .field("vals", Json::from_iter([0.5, 1.0, f64::NAN]));
        let s = j.to_string();
        assert_eq!(s, r#"{"name":"fig \"x\"","vals":[0.5,1.0,null]}"#);
    }
}
