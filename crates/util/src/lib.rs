#![warn(missing_docs)]

//! # redsim-util
//!
//! The zero-dependency support library every other redsim crate leans
//! on. The workspace builds fully offline — no registry, no network —
//! so the small pieces usually imported from `rand`, `serde_json` and
//! `criterion` live here instead:
//!
//! * [`rng`] — seedable, deterministic PRNGs: [`SplitMix64`] (the
//!   workload-input generator stream) and [`Rng`] (xoshiro256**, the
//!   general-purpose generator used for fault injection, cache
//!   replacement and generative tests).
//! * [`json`] — a minimal JSON value model and writer ([`Json`]) for the
//!   machine-readable output of the bench harness (`--json`).
//! * [`hash`] — a deterministic non-cryptographic hasher
//!   ([`FxHashMap`]) for integer-keyed maps probed per simulated
//!   instruction.
//! * [`timer`] — a wall-clock micro-benchmark timer ([`fn@bench`]) backing
//!   the `cargo bench` targets.
//! * [`io`] — the fallible filesystem shim ([`Io`]/[`RealIo`]) durable
//!   campaign state flows through, with a deterministic fault-injecting
//!   [`ChaosIo`] (EINTR, short/torn writes, ENOSPC, fsync failure,
//!   kill-after-N-ops) for chaos testing the recovery paths.
//!
//! Everything in this crate is deterministic given its inputs; nothing
//! except the explicit [`io`] backends touches the filesystem or the
//! environment.

pub mod hash;
pub mod io;
pub mod json;
pub mod rng;
pub mod timer;

pub use hash::FxHashMap;
pub use io::{ChaosConfig, ChaosIo, FsyncPolicy, Io, IoFile, RealIo};
pub use json::{Json, JsonParseError, JsonTypeError};
pub use rng::{Rng, SplitMix64};
pub use timer::{bench, BenchResult};
