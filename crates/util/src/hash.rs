//! A fast, deterministic hasher for integer-keyed hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash) is keyed and
//! DoS-resistant, which costs tens of nanoseconds per operation — far
//! too much for simulator-internal maps that are probed per dynamic
//! instruction (for example the pipeline's store-address map). Those
//! maps never hold attacker-controlled keys, so this module provides
//! the classic Fx multiply-xor hash (the rustc-internal `FxHasher`
//! design) as a drop-in `BuildHasher`.
//!
//! The hash is fully deterministic: no per-process random state, so
//! simulation results never depend on map iteration order differing
//! between runs (hot-path code must still never iterate these maps —
//! determinism of *results* comes from keying lookups, not ordering).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash family: a 64-bit odd constant derived
/// from the golden ratio, spreading low-entropy integer keys across
/// the full word.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A non-cryptographic multiply-xor hasher for small keys.
///
/// # Examples
///
/// ```
/// use redsim_util::hash::FxHashMap;
///
/// let mut last_store: FxHashMap<u64, u64> = FxHashMap::default();
/// last_store.insert(0x1000, 42);
/// assert_eq!(last_store.get(&0x1000), Some(&42));
/// ```
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail keeps arbitrary keys correct;
        // integer keys take the dedicated paths below.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`]; deterministic and fast for
/// integer keys.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hashes a byte string to a deterministic 64-bit checksum.
///
/// This is the record checksum used by the campaign manifest framing:
/// stable across processes and platforms (no per-process key), cheap
/// enough to run on every appended record, and strong enough to catch
/// torn or bit-flipped JSONL lines. Not cryptographic.
///
/// # Examples
///
/// ```
/// use redsim_util::hash::fx64;
///
/// assert_eq!(fx64(b"record"), fx64(b"record"));
/// assert_ne!(fx64(b"record"), fx64(b"recore"));
/// ```
pub fn fx64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_keys_hash_equal_and_nearby_keys_differ() {
        assert_eq!(hash_of(&0x1000u64), hash_of(&0x1000u64));
        assert_ne!(hash_of(&0x1000u64), hash_of(&0x1008u64));
        // 8-byte-aligned addresses differ only in high-ish bits; the
        // multiply must still spread them into distinct buckets.
        let hashes: Vec<u64> = (0..1024u64).map(|i| hash_of(&(i * 8))).collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len(), "no collisions on aligned keys");
    }

    #[test]
    fn byte_slices_hash_consistently_across_chunk_boundaries() {
        let a = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]);
        let b = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]);
        assert_eq!(a, b);
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100u64 {
            m.insert(i * 8, i);
        }
        for i in 0..100u64 {
            assert_eq!(m.get(&(i * 8)), Some(&i));
        }
        m.remove(&0);
        assert_eq!(m.get(&0), None);
    }
}
