//! Seedable, deterministic pseudo-random number generators.
//!
//! Two streams cover every need in the workspace:
//!
//! * [`SplitMix64`] — the tiny stream used for workload input
//!   generation. Its output for a given seed is part of the workload
//!   contract: the kernels' data blocks (and therefore every golden
//!   checksum) derive from it, so its algorithm must never change.
//! * [`Rng`] — xoshiro256\*\*, the general-purpose generator for fault
//!   injection, random cache replacement and generative tests. Seeded
//!   from a single `u64` through a SplitMix64 expansion, per the
//!   xoshiro authors' recommendation.
//!
//! Both are plain value types: `Clone` them to fork a stream, compare
//! with `==` to assert stream positions in tests.

/// The splitmix64 generator (Steele, Lea & Flood): one 64-bit state
/// word, an additive Weyl sequence and a two-round finalizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ z >> 30).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ z >> 27).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ z >> 31
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses plain modulo reduction — workload input streams were
    /// generated this way and the byte-for-byte sequence is part of the
    /// golden-checksum contract.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The xoshiro256\*\* generator (Blackman & Vigna): 256 bits of state,
/// fast, and robust in every statistical test that matters at simulator
/// scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a single seed word, expanding it to the
    /// full 256-bit state with [`SplitMix64`] (so nearby seeds still
    /// yield uncorrelated streams).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) has no value to draw");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected (bias zone) — redraw.
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform signed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniformly random `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A double in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 != 0
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// An arbitrary `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// An arbitrary `i32` (full range).
    pub fn any_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// An arbitrary `i16` (full range).
    pub fn any_i16(&mut self) -> i16 {
        (self.next_u64() >> 48) as u16 as i16
    }

    /// An arbitrary `u8`.
    pub fn any_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Published splitmix64 test vector for seed 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut r = SplitMix64::new(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut r = Rng::new(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }

    #[test]
    fn below_is_unbiased_bounded_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [0u32; 17];
        for _ in 0..17_000 {
            let v = r.below(17);
            assert!(v < 17);
            seen[v as usize] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 500, "value {i} drawn only {c} times");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.range_i64(-50, 50);
            assert!((-50..50).contains(&v));
            let u = r.range_u64(100, 200);
            assert!((100..200).contains(&u));
        }
        // Signed extremes must not overflow.
        let v = r.range_i64(i64::MIN, i64::MAX);
        assert!(v < i64::MAX);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_handles_edges_and_rates() {
        let mut r = Rng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.1)).count();
        assert!(
            (8_000..12_000).contains(&hits),
            "0.1 rate drew {hits}/100000"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::new(9);
        let mut a = [0u8; 13];
        r.fill_bytes(&mut a);
        assert!(a.iter().any(|&b| b != 0));
    }

    #[test]
    fn pick_draws_every_element() {
        let mut r = Rng::new(2);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&xs) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
