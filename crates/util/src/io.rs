//! A fallible-IO shim: the host-filesystem surface the campaign layer
//! writes durable state through, abstracted behind the [`Io`] trait so
//! tests can inject host faults deterministically.
//!
//! Two implementations ship here:
//!
//! * [`RealIo`] — a thin veneer over `std::fs`, used in production.
//! * [`ChaosIo`] — wraps another [`Io`] and injects the host faults a
//!   long-running sweep actually meets: `EINTR`, short writes, torn
//!   writes followed by `ENOSPC`, `fsync` failures, and a hard "kill"
//!   after a chosen operation count (every later operation fails, and
//!   the in-flight write lands torn — exactly the on-disk state a
//!   `SIGKILL` at that boundary leaves behind). The schedule is a pure
//!   function of the [`ChaosConfig`] seed and the operation sequence,
//!   so a failing fault schedule replays exactly.
//!
//! The helpers encode the durability discipline the campaign manifest
//! relies on:
//!
//! * [`write_all_retrying`] — absorbs the *transient* faults (`EINTR`,
//!   short writes) with a bounded retry loop; anything else bubbles up
//!   as a typed `io::Error`.
//! * [`atomic_write`] — full-file replacement via temp file + optional
//!   `fsync` + rename, so readers observe either the old bytes or the
//!   new bytes, never a mix.
//! * [`FsyncPolicy`] — where the durability barriers sit: every record,
//!   only at atomic-replace barriers, or nowhere.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::rng::Rng;

/// An open file handle the shim hands out: sequential writes plus an
/// explicit durability barrier. Deliberately narrower than
/// `std::io::Write` — the campaign writers only ever append and sync.
pub trait IoFile: Send {
    /// Writes a prefix of `buf`, returning how many bytes landed.
    /// Short writes and `EINTR` are legal outcomes; callers that need
    /// the whole buffer durable go through [`write_all_retrying`].
    ///
    /// # Errors
    ///
    /// Any `io::Error` of the underlying filesystem (or the injected
    /// fault of a chaos backend).
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Durability barrier (`fsync`): on `Ok`, every byte written so far
    /// is on stable storage.
    ///
    /// # Errors
    ///
    /// Any `io::Error` of the underlying filesystem (or the injected
    /// fault of a chaos backend).
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem surface durable campaign state flows through. Every
/// method mirrors its `std::fs` namesake; implementations may fail any
/// of them, so callers must treat each call as fallible and recover
/// through typed errors, never `unwrap`.
pub trait Io: fmt::Debug + Send + Sync {
    /// Reads a whole file as UTF-8.
    ///
    /// # Errors
    ///
    /// As `std::fs::read_to_string`.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Creates a directory and its ancestors.
    ///
    /// # Errors
    ///
    /// As `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Creates (truncating) a file for writing.
    ///
    /// # Errors
    ///
    /// As `std::fs::File::create`.
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;

    /// Opens a file for appending.
    ///
    /// # Errors
    ///
    /// As `std::fs::OpenOptions::append`.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;

    /// Atomically replaces `to` with `from`.
    ///
    /// # Errors
    ///
    /// As `std::fs::rename`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Whether `path` exists (best-effort, infallible by design).
    fn exists(&self, path: &Path) -> bool;
}

/// Where the durability barriers (`fsync`) sit on the write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Barrier after every appended record *and* at every atomic
    /// replace. Maximum durability, one `fsync` per shard.
    Always,
    /// Barrier only at atomic-replace boundaries (manifest rewrite,
    /// final report). A crash can lose the most recent appended
    /// records — they simply re-run on resume — but a renamed file is
    /// never observed partially written. The default.
    #[default]
    Critical,
    /// No explicit barriers; durability is whatever the OS page cache
    /// provides. For throughput experiments only.
    Never,
}

impl FsyncPolicy {
    /// Whether each appended record gets its own barrier.
    #[must_use]
    pub fn sync_records(self) -> bool {
        matches!(self, FsyncPolicy::Always)
    }

    /// Whether atomic full-file replacements get a barrier before the
    /// rename.
    #[must_use]
    pub fn sync_barriers(self) -> bool {
        matches!(self, FsyncPolicy::Always | FsyncPolicy::Critical)
    }

    /// Parses the `--fsync` spelling (`always` / `critical` / `never`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "critical" => Some(FsyncPolicy::Critical),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// The production [`Io`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

struct RealFile(fs::File);

impl IoFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Io for RealIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let mut s = String::new();
        fs::File::open(path)?.read_to_string(&mut s)?;
        Ok(s)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        Ok(Box::new(RealFile(fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        Ok(Box::new(RealFile(
            fs::OpenOptions::new().append(true).open(path)?,
        )))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Raw `errno` values for the injected faults, chosen so
/// `io::Error::kind` classifies them the way the real syscalls would.
const EINTR: i32 = 4;
const ENOSPC: i32 = 28;
const EIO: i32 = 5;

/// The fault schedule of a [`ChaosIo`]: independent per-operation
/// rates for each fault family plus an optional hard kill point. All
/// rates are probabilities in `[0, 1]` drawn from a PRNG seeded by
/// `seed`, so the schedule is deterministic given the operation
/// sequence.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// PRNG seed for the fault draws.
    pub seed: u64,
    /// Per-write probability of `EINTR` with no bytes written
    /// (transient: callers retry).
    pub eintr_rate: f64,
    /// Per-write probability of a short write — a strict prefix lands,
    /// `Ok(k < len)` returns (transient: callers continue the loop).
    pub short_write_rate: f64,
    /// Per-operation probability of `ENOSPC`. On a write the failure is
    /// *torn*: a deterministic prefix lands before the error, the
    /// on-disk state a full disk really leaves.
    pub enospc_rate: f64,
    /// Per-`sync` probability of an `EIO` fsync failure.
    pub sync_fail_rate: f64,
    /// Hard kill: after this many counted operations every further
    /// operation fails, and the operation at the boundary lands torn.
    /// Sweeping this over `0..ops` simulates a `SIGKILL` at every write
    /// boundary of a run.
    pub kill_after_ops: Option<u64>,
}

impl ChaosConfig {
    /// A schedule that injects nothing — useful for counting the
    /// operations of a run before sweeping kill points over them.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            eintr_rate: 0.0,
            short_write_rate: 0.0,
            enospc_rate: 0.0,
            sync_fail_rate: 0.0,
            kill_after_ops: None,
        }
    }

    /// Every fault family at the same per-operation rate.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        ChaosConfig {
            seed,
            eintr_rate: rate,
            short_write_rate: rate,
            enospc_rate: rate,
            sync_fail_rate: rate,
            kill_after_ops: None,
        }
    }

    /// Only the transient families (`EINTR`, short writes) — a schedule
    /// a correct retry loop must absorb completely.
    #[must_use]
    pub fn transient_only(seed: u64, rate: f64) -> Self {
        ChaosConfig {
            seed,
            eintr_rate: rate,
            short_write_rate: rate,
            enospc_rate: 0.0,
            sync_fail_rate: 0.0,
            kill_after_ops: None,
        }
    }
}

#[derive(Debug)]
struct ChaosState {
    rng: Rng,
    ops: u64,
    killed: bool,
}

#[derive(Debug)]
struct ChaosShared {
    cfg: ChaosConfig,
    state: Mutex<ChaosState>,
}

/// What the schedule decided for one write of `len` bytes.
enum WritePlan {
    Clean,
    Eintr,
    Short(usize),
    /// Write this prefix, then fail with the error.
    Torn(usize, io::Error),
}

impl ChaosShared {
    fn kill_err() -> io::Error {
        io::Error::other("chaos: process killed at this operation")
    }

    /// Counts one operation and applies the kill schedule. Returns the
    /// kill error once the boundary is passed.
    fn tick(state: &mut ChaosState, cfg: &ChaosConfig) -> Option<io::Error> {
        if state.killed {
            return Some(Self::kill_err());
        }
        state.ops += 1;
        if cfg.kill_after_ops.is_some_and(|k| state.ops > k) {
            state.killed = true;
            return Some(Self::kill_err());
        }
        None
    }

    /// Schedule decision for a non-write operation (`open`, `rename`,
    /// `create_dir_all`): kill, then `ENOSPC`.
    fn plain_op(&self) -> io::Result<()> {
        let mut st = self.state.lock().expect("chaos state lock");
        if let Some(e) = Self::tick(&mut st, &self.cfg) {
            return Err(e);
        }
        if st.rng.chance(self.cfg.enospc_rate) {
            return Err(io::Error::from_raw_os_error(ENOSPC));
        }
        Ok(())
    }

    fn sync_op(&self) -> io::Result<()> {
        let mut st = self.state.lock().expect("chaos state lock");
        if let Some(e) = Self::tick(&mut st, &self.cfg) {
            return Err(e);
        }
        if st.rng.chance(self.cfg.sync_fail_rate) {
            return Err(io::Error::from_raw_os_error(EIO));
        }
        Ok(())
    }

    fn write_op(&self, len: usize) -> WritePlan {
        let mut st = self.state.lock().expect("chaos state lock");
        if st.killed {
            return WritePlan::Torn(len / 2, Self::kill_err());
        }
        st.ops += 1;
        if self.cfg.kill_after_ops.is_some_and(|k| st.ops > k) {
            st.killed = true;
            // The kill boundary tears the in-flight write: a prefix is
            // durable, the rest is gone — like SIGKILL mid-`write(2)`.
            return WritePlan::Torn(len / 2, Self::kill_err());
        }
        if st.rng.chance(self.cfg.eintr_rate) {
            return WritePlan::Eintr;
        }
        if len > 1 && st.rng.chance(self.cfg.short_write_rate) {
            return WritePlan::Short(st.rng.range_u64(1, len as u64) as usize);
        }
        if st.rng.chance(self.cfg.enospc_rate) {
            let torn = st.rng.below(len as u64 + 1) as usize;
            return WritePlan::Torn(torn, io::Error::from_raw_os_error(ENOSPC));
        }
        WritePlan::Clean
    }
}

/// A fault-injecting [`Io`] wrapper. See the module docs for the fault
/// families; [`ChaosIo::ops`] exposes the operation counter so tests
/// can measure a run and then sweep [`ChaosConfig::kill_after_ops`]
/// across every boundary.
#[derive(Debug, Clone)]
pub struct ChaosIo {
    inner: Arc<dyn Io>,
    shared: Arc<ChaosShared>,
}

impl ChaosIo {
    /// Wraps `inner` with the fault schedule `cfg`.
    #[must_use]
    pub fn new(inner: Arc<dyn Io>, cfg: ChaosConfig) -> Self {
        ChaosIo {
            inner,
            shared: Arc::new(ChaosShared {
                state: Mutex::new(ChaosState {
                    rng: Rng::new(cfg.seed),
                    ops: 0,
                    killed: false,
                }),
                cfg,
            }),
        }
    }

    /// Operations counted so far (writes, syncs, opens, renames).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.shared.state.lock().expect("chaos state lock").ops
    }

    /// Whether the kill boundary has been crossed.
    #[must_use]
    pub fn killed(&self) -> bool {
        self.shared.state.lock().expect("chaos state lock").killed
    }
}

struct ChaosFile {
    inner: Box<dyn IoFile>,
    shared: Arc<ChaosShared>,
}

impl IoFile for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.shared.write_op(buf.len()) {
            WritePlan::Clean => self.inner.write(buf),
            WritePlan::Eintr => Err(io::Error::from_raw_os_error(EINTR)),
            WritePlan::Short(k) => self.inner.write(&buf[..k]),
            WritePlan::Torn(k, e) => {
                // Best-effort prefix: the torn bytes really land, so a
                // resumed reader must cope with a half-written record.
                let _ = write_plain(self.inner.as_mut(), &buf[..k]);
                Err(e)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.shared.sync_op()?;
        self.inner.sync()
    }
}

/// Writes `buf` fully through raw `write` calls, retrying only genuine
/// `EINTR` (used for the torn-prefix path where the prefix itself must
/// not be chaos-faulted again).
fn write_plain(f: &mut dyn IoFile, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match f.write(buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote 0 bytes")),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl Io for ChaosIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        // Reads are not faulted: the interesting failures are on the
        // durability path, and a kill "during a read" is
        // indistinguishable from a kill before the next write.
        self.inner.read_to_string(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.shared.plain_op()?;
        self.inner.create_dir_all(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        self.shared.plain_op()?;
        Ok(Box::new(ChaosFile {
            inner: self.inner.create(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        self.shared.plain_op()?;
        Ok(Box::new(ChaosFile {
            inner: self.inner.open_append(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.shared.plain_op()?;
        self.inner.rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Upper bound on consecutive `EINTR` retries before the error is
/// surfaced — purely a safety net against a pathological schedule
/// (`eintr_rate == 1.0`) spinning forever.
const MAX_EINTR_RETRIES: u32 = 4096;

/// Writes all of `buf`, absorbing the transient fault families: short
/// writes continue the loop, `EINTR` retries (bounded). Every other
/// error — `ENOSPC`, a failed sync, a chaos kill — is returned for the
/// caller's typed recovery path.
///
/// # Errors
///
/// The first non-transient `io::Error`, or `EINTR` after
/// `MAX_EINTR_RETRIES` (4096) consecutive interruptions.
pub fn write_all_retrying(f: &mut dyn IoFile, mut buf: &[u8]) -> io::Result<()> {
    let mut interrupted = 0;
    while !buf.is_empty() {
        match f.write(buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote 0 bytes")),
            Ok(n) => {
                interrupted = 0;
                buf = &buf[n.min(buf.len())..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                interrupted += 1;
                if interrupted > MAX_EINTR_RETRIES {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The sidecar temp path `atomic_write` stages through: the target path
/// with `.tmp` appended (appended, not substituted, so multi-extension
/// names like `a.progress.jsonl` and `a.report.json` never collide).
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.tmp", path.display()))
}

/// Replaces `path` atomically: the bytes land in [`tmp_path`], are
/// optionally fsynced, then renamed over `path`. A crash at any point
/// leaves either the old file or the new file, never a mix; a stale
/// temp file from an earlier crash is simply overwritten.
///
/// # Errors
///
/// Any `io::Error` from the create/write/sync/rename sequence. On
/// error the target `path` is untouched.
pub fn atomic_write(io: &dyn Io, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
    let tmp = tmp_path(path);
    let mut f = io.create(&tmp)?;
    write_all_retrying(f.as_mut(), bytes)?;
    if sync {
        f.sync()?;
    }
    drop(f);
    io.rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "redsim-io-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).expect("test dir");
        d
    }

    #[test]
    fn real_io_roundtrip_append_and_atomic_write() {
        let d = tmp_dir("real");
        let io = RealIo;
        let p = d.join("f.txt");
        let mut f = io.create(&p).expect("create");
        write_all_retrying(f.as_mut(), b"one\n").expect("write");
        f.sync().expect("sync");
        drop(f);
        let mut a = io.open_append(&p).expect("append");
        write_all_retrying(a.as_mut(), b"two\n").expect("append write");
        drop(a);
        assert_eq!(io.read_to_string(&p).expect("read"), "one\ntwo\n");

        atomic_write(&io, &p, b"replaced\n", true).expect("atomic");
        assert_eq!(io.read_to_string(&p).expect("read"), "replaced\n");
        assert!(!io.exists(&tmp_path(&p)), "temp staging file renamed away");
    }

    /// Runs a fixed op sequence under one chaos schedule, returning the
    /// outcome fingerprint of every operation.
    fn chaos_fingerprint(dir: &Path, cfg: ChaosConfig) -> Vec<String> {
        let io = ChaosIo::new(Arc::new(RealIo), cfg);
        let mut out = Vec::new();
        let p = dir.join("probe.txt");
        for i in 0..40 {
            let r = io.create(&p).and_then(|mut f| {
                f.write(format!("record {i} with some padding bytes\n").as_bytes())
            });
            out.push(match r {
                Ok(n) => format!("ok:{n}"),
                Err(e) => format!("err:{:?}", e.kind()),
            });
        }
        out
    }

    #[test]
    fn chaos_schedule_is_deterministic_in_the_seed() {
        let d1 = tmp_dir("det1");
        let d2 = tmp_dir("det2");
        let cfg = ChaosConfig::uniform(42, 0.3);
        assert_eq!(chaos_fingerprint(&d1, cfg), chaos_fingerprint(&d2, cfg));
        let other = ChaosConfig::uniform(43, 0.3);
        assert_ne!(
            chaos_fingerprint(&d1, cfg),
            chaos_fingerprint(&d2, other),
            "a different seed draws a different schedule"
        );
    }

    #[test]
    fn kill_boundary_tears_the_inflight_write_and_fails_everything_after() {
        let d = tmp_dir("kill");
        let io = ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                kill_after_ops: Some(1), // op 1 = create, op 2 = the write
                ..ChaosConfig::quiet(0)
            },
        );
        let p = d.join("killed.txt");
        let mut f = io.create(&p).expect("create precedes the boundary");
        let err = write_all_retrying(f.as_mut(), b"0123456789").expect_err("write is killed");
        assert!(err.to_string().contains("chaos"), "typed kill error: {err}");
        assert!(io.killed());
        drop(f);
        // The torn prefix (half the buffer) is on disk.
        assert_eq!(RealIo.read_to_string(&p).expect("read"), "01234");
        // Every subsequent operation fails too.
        assert!(io.create(&d.join("other.txt")).is_err());
        assert!(io.rename(&p, &d.join("x")).is_err());
    }

    #[test]
    fn transient_only_schedules_are_fully_absorbed_by_the_retry_loop() {
        let d = tmp_dir("transient");
        let io = ChaosIo::new(Arc::new(RealIo), ChaosConfig::transient_only(7, 0.4));
        let p = d.join("t.txt");
        let mut f = io.create(&p).expect("create");
        let payload = "x".repeat(1000);
        write_all_retrying(f.as_mut(), payload.as_bytes())
            .expect("EINTR and short writes are transient");
        drop(f);
        assert_eq!(RealIo.read_to_string(&p).expect("read"), payload);
    }

    #[test]
    fn enospc_and_sync_failures_surface_as_typed_errors() {
        let d = tmp_dir("enospc");
        let io = ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                enospc_rate: 1.0,
                ..ChaosConfig::quiet(1)
            },
        );
        let err = match io.create(&d.join("full.txt")) {
            Err(e) => e,
            Ok(_) => panic!("disk is full"),
        };
        assert_eq!(err.raw_os_error(), Some(ENOSPC));

        let io = ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                sync_fail_rate: 1.0,
                ..ChaosConfig::quiet(1)
            },
        );
        let p = d.join("sync.txt");
        let mut f = io.create(&p).expect("create");
        write_all_retrying(f.as_mut(), b"abc").expect("write");
        let err = f.sync().expect_err("fsync fails");
        assert_eq!(err.raw_os_error(), Some(EIO));
    }

    #[test]
    fn atomic_write_failure_leaves_the_target_untouched() {
        let d = tmp_dir("atomic");
        let p = d.join("state.json");
        atomic_write(&RealIo, &p, b"v1", false).expect("seed the file");
        let io = ChaosIo::new(
            Arc::new(RealIo),
            ChaosConfig {
                kill_after_ops: Some(1), // create ok, write killed
                ..ChaosConfig::quiet(0)
            },
        );
        atomic_write(&io, &p, b"v2 that never lands", true).expect_err("killed mid-replace");
        assert_eq!(RealIo.read_to_string(&p).expect("read"), "v1");
    }

    #[test]
    fn fsync_policy_barriers() {
        assert!(FsyncPolicy::Always.sync_records());
        assert!(FsyncPolicy::Always.sync_barriers());
        assert!(!FsyncPolicy::Critical.sync_records());
        assert!(FsyncPolicy::Critical.sync_barriers());
        assert!(!FsyncPolicy::Never.sync_records());
        assert!(!FsyncPolicy::Never.sync_barriers());
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("critical"), Some(FsyncPolicy::Critical));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
