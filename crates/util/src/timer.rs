//! A wall-clock micro-benchmark timer.
//!
//! The in-tree replacement for criterion: the `cargo bench` targets of
//! `redsim-bench` are plain binaries that call [`fn@bench`] per case and
//! print one aligned line each. No statistics beyond min/mean/max are
//! attempted — the simulator's benches run millions of simulated cycles
//! per iteration, so run-to-run noise is small relative to the effects
//! the benches guard against.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Iterations timed (after warmup).
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl BenchResult {
    /// Throughput in elements per second, given the per-iteration
    /// element count (0.0 when the mean rounds to zero time).
    #[must_use]
    pub fn throughput(&self, elements_per_iter: u64) -> f64 {
        let s = self.mean.as_secs_f64();
        if s > 0.0 {
            elements_per_iter as f64 / s
        } else {
            0.0
        }
    }

    /// One aligned report line: `name  min  mean  max [ throughput]`.
    #[must_use]
    pub fn report(&self, name: &str, elements_per_iter: Option<u64>) -> String {
        let mut line = format!(
            "{name:<40} min {:>12}  mean {:>12}  max {:>12}",
            fmt_duration(self.min),
            fmt_duration(self.mean),
            fmt_duration(self.max),
        );
        if let Some(n) = elements_per_iter {
            line.push_str(&format!("  {:>10.2} Melem/s", self.throughput(n) / 1e6));
        }
        line
    }
}

/// Formats a duration with an adaptive unit (ns / µs / ms / s).
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times `f`: `warmup` untimed iterations, then `iters` timed ones.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the optimizer cannot delete the measured work.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench<T>(warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    assert!(iters > 0, "bench needs at least one timed iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        min = min.min(dt);
        max = max.max(dt);
        total += dt;
    }
    BenchResult {
        iters,
        min,
        mean: total / iters,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_iterations_and_orders_min_mean_max() {
        let mut calls = 0u32;
        let r = bench(2, 5, || {
            calls += 1;
            std::thread::sleep(Duration::from_micros(50));
            calls
        });
        assert_eq!(calls, 7, "warmup + timed iterations");
        assert_eq!(r.iters, 5);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.min >= Duration::from_micros(50));
    }

    #[test]
    fn throughput_scales_with_elements() {
        let r = BenchResult {
            iters: 1,
            min: Duration::from_millis(10),
            mean: Duration::from_millis(10),
            max: Duration::from_millis(10),
        };
        let t = r.throughput(1_000_000);
        assert!((t - 1e8).abs() / 1e8 < 1e-9);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }

    #[test]
    fn report_lines_are_stable_shape() {
        let r = bench(0, 1, || 1 + 1);
        let line = r.report("case", Some(100));
        assert!(line.starts_with("case"));
        assert!(line.contains("Melem/s"));
    }
}
